"""Guarded NumPy access and array-backend selection.

The hot paths of the simulator (mobility trajectory evaluation, grid
snapshot rebuilds, per-link propagation filtering) have two implementations:
the scalar reference code, which works on a bare Python install, and an
array-native path over contiguous NumPy arrays keyed by node index.  Both
produce byte-identical results — the scalar code is the oracle the array
path is tested against — so which one runs is purely a performance choice.

This module is the single place that imports NumPy.  Everything else asks
:func:`resolve_array_backend` which path to take:

``"auto"`` (default)
    NumPy when importable, scalar otherwise.  Silent either way — an
    environment without NumPy is a supported configuration, not an error.
``"numpy"``
    The array path.  When NumPy is *not* importable this degrades to
    scalar with a single :class:`RuntimeWarning` (warned once per process,
    however many mediums are built), so a mis-provisioned environment is
    loud but not fatal.
``"scalar"``
    The reference path, always available.  Used by the equivalence tests
    as the oracle side of every array-vs-scalar assertion.

NumPy is an *optional* dependency (``pip install dapes-repro[perf]``);
importing :mod:`repro` must never require it.
"""

from __future__ import annotations

import warnings
from typing import Optional

try:  # NumPy is optional: every scalar path works without it.
    import numpy as _numpy
except ImportError:  # pragma: no cover - exercised via monkeypatching in tests
    _numpy = None

#: Accepted values of ``ChannelConfig.array_backend``.
ARRAY_BACKENDS = ("auto", "numpy", "scalar")

_warned_missing_numpy = False


def numpy_or_none():
    """The :mod:`numpy` module, or ``None`` when it is not installed."""
    return _numpy


def numpy_available() -> bool:
    """Whether the array-native hot path can run in this environment."""
    return _numpy is not None


def numpy_version() -> Optional[str]:
    """The active NumPy version string, or ``None`` without NumPy.

    Recorded in :class:`~repro.experiments.store.ResultStore` metadata and
    the committed ``BENCH_*.json`` artifacts so cross-backend comparisons
    are visible in ``repro-experiments diff``.
    """
    return None if _numpy is None else str(_numpy.__version__)


def resolve_array_backend(choice: str = "auto") -> str:
    """Resolve an ``array_backend`` selection to ``"numpy"`` or ``"scalar"``.

    An explicit ``"numpy"`` request without NumPy installed falls back to
    ``"scalar"`` and warns once per process; ``"auto"`` falls back silently.
    """
    global _warned_missing_numpy
    if choice not in ARRAY_BACKENDS:
        raise ValueError(
            f"array_backend must be one of {ARRAY_BACKENDS}, got {choice!r}"
        )
    if choice == "scalar":
        return "scalar"
    if _numpy is not None:
        return "numpy"
    if choice == "numpy" and not _warned_missing_numpy:
        _warned_missing_numpy = True
        warnings.warn(
            "array_backend='numpy' requested but NumPy is not importable; "
            "falling back to the scalar reference path (results are "
            "identical, only slower). Install the 'perf' extra to enable "
            "the array-native hot path.",
            RuntimeWarning,
            stacklevel=2,
        )
    return "scalar"
