"""Local trust anchors.

The paper assumes peers share "local" trust anchors (e.g. established among
the residents of the rural area) and use them to decide whether the producer
of a file collection can be trusted.  The trust model here is deliberately
simple: an anchor store holds the public keys of trusted identities; a
signature is trusted if its public key matches the stored anchor for the
claimed signer (or if the signer was endorsed by an already-trusted anchor).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.crypto.keys import KeyPair
from repro.crypto.signing import Signature, verify


class TrustAnchorStore:
    """A peer's set of trusted identities and their public keys."""

    def __init__(self):
        self._anchors: Dict[str, str] = {}
        self._endorsements: Dict[str, str] = {}

    # ---------------------------------------------------------------- anchors
    def add_anchor(self, owner: str, public_key: str) -> None:
        """Trust ``owner`` with the given public key."""
        self._anchors[owner] = public_key

    def add_anchor_key(self, key: KeyPair) -> None:
        """Trust the owner of ``key`` (convenience for scenario setup)."""
        self.add_anchor(key.owner, key.public_key)

    def endorse(self, endorser: str, subject: str, subject_public_key: str) -> bool:
        """Record that a trusted ``endorser`` vouches for ``subject``.

        Returns ``False`` (and records nothing) when the endorser itself is
        not trusted.
        """
        if endorser not in self._anchors:
            return False
        self._endorsements[subject] = subject_public_key
        return True

    def is_trusted(self, owner: str) -> bool:
        return owner in self._anchors or owner in self._endorsements

    def public_key_of(self, owner: str) -> Optional[str]:
        return self._anchors.get(owner) or self._endorsements.get(owner)

    # ------------------------------------------------------------ verification
    def authenticate(self, name: str, content: bytes, signature: Signature) -> bool:
        """Full authentication: the signer is trusted, the key matches and the signature verifies."""
        expected_key = self.public_key_of(signature.signer)
        if expected_key is None or expected_key != signature.public_key:
            return False
        return verify(name, content, signature)

    def __len__(self) -> int:
        return len(self._anchors) + len(self._endorsements)
