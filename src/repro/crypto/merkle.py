"""Merkle tree over packet digests.

The Merkle-tree-based metadata format (Section IV-C of the paper) carries one
root hash per file instead of a digest per packet, keeping the metadata small
enough to fit in a single network-layer packet.  The trade-off is that a
receiver can only verify packet integrity once it holds every packet of the
tree (or an explicit inclusion proof, which this implementation also
provides as an extension).
"""

from __future__ import annotations

import hashlib
from typing import List, Sequence, Tuple


def _hash_leaf(data: bytes) -> str:
    return hashlib.sha256(b"leaf:" + data).hexdigest()


def _hash_node(left: str, right: str) -> str:
    return hashlib.sha256(b"node:" + left.encode("ascii") + right.encode("ascii")).hexdigest()


class MerkleTree:
    """A binary Merkle tree built over a sequence of leaf payloads.

    Odd nodes at any level are promoted unchanged (no duplication), which
    keeps proofs unambiguous.
    """

    def __init__(self, leaves: Sequence[bytes]):
        if not leaves:
            raise ValueError("a Merkle tree needs at least one leaf")
        self._levels: List[List[str]] = [[_hash_leaf(bytes(leaf)) for leaf in leaves]]
        while len(self._levels[-1]) > 1:
            current = self._levels[-1]
            parents: List[str] = []
            for index in range(0, len(current), 2):
                if index + 1 < len(current):
                    parents.append(_hash_node(current[index], current[index + 1]))
                else:
                    parents.append(current[index])
            self._levels.append(parents)

    # ----------------------------------------------------------------- basics
    @property
    def root(self) -> str:
        """The root hash."""
        return self._levels[-1][0]

    @property
    def leaf_count(self) -> int:
        return len(self._levels[0])

    def leaf_hash(self, index: int) -> str:
        return self._levels[0][index]

    # ----------------------------------------------------------------- proofs
    def proof(self, index: int) -> List[Tuple[str, str]]:
        """Inclusion proof for leaf ``index``: a list of (side, hash) pairs.

        ``side`` is ``"left"`` if the sibling hash is to the left of the
        running hash, ``"right"`` otherwise.
        """
        if not 0 <= index < self.leaf_count:
            raise IndexError(f"leaf index {index} out of range (0..{self.leaf_count - 1})")
        proof: List[Tuple[str, str]] = []
        position = index
        for level in self._levels[:-1]:
            sibling = position ^ 1
            if sibling < len(level):
                side = "left" if sibling < position else "right"
                proof.append((side, level[sibling]))
            position //= 2
        return proof

    @staticmethod
    def verify_proof(leaf_data: bytes, proof: Sequence[Tuple[str, str]], root: str) -> bool:
        """Verify an inclusion proof for ``leaf_data`` against ``root``."""
        running = _hash_leaf(bytes(leaf_data))
        for side, sibling in proof:
            if side == "left":
                running = _hash_node(sibling, running)
            elif side == "right":
                running = _hash_node(running, sibling)
            else:
                raise ValueError(f"invalid proof side {side!r}")
        return running == root

    @classmethod
    def root_of(cls, leaves: Sequence[bytes]) -> str:
        """Convenience: the root hash of ``leaves`` without keeping the tree."""
        return cls(leaves).root
