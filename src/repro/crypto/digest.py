"""Content digests used for packet integrity verification."""

from __future__ import annotations

import hashlib


def sha256_hex(data: bytes) -> str:
    """Hex-encoded SHA-256 digest of ``data``."""
    if not isinstance(data, (bytes, bytearray)):
        raise TypeError(f"expected bytes, got {type(data).__name__}")
    return hashlib.sha256(bytes(data)).hexdigest()


def short_digest(data: bytes, length: int = 8) -> str:
    """Truncated hex digest, used in compact metadata displays."""
    if length <= 0:
        raise ValueError("length must be positive")
    return sha256_hex(data)[:length]
