"""Key pairs and the key registry.

Each participant (resident) owns a public/private key pair used to sign the
packets it produces.  Key material is random bytes; the "public key" is a
digest of the private key, which is all the simulated signature scheme in
:mod:`repro.crypto.signing` needs.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass, field
from typing import Dict, Optional


@dataclass(frozen=True)
class KeyPair:
    """A named key pair.

    Attributes
    ----------
    owner:
        Identity of the key owner (e.g. ``"/residents/alice"``).
    private_key:
        Secret bytes, held only by the owner.
    public_key:
        Publicly shared identifier derived from the private key.
    """

    owner: str
    private_key: bytes
    public_key: str = field(default="")

    def __post_init__(self) -> None:
        if not self.private_key:
            raise ValueError("private_key must be non-empty")
        if not self.public_key:
            object.__setattr__(self, "public_key", derive_public_key(self.private_key))

    @classmethod
    def generate(cls, owner: str, seed: Optional[bytes] = None) -> "KeyPair":
        """Generate a fresh key pair for ``owner``.

        Passing ``seed`` makes generation deterministic (used by tests and by
        deterministic simulation scenarios).
        """
        if seed is None:
            private = os.urandom(32)
        else:
            private = hashlib.sha256(b"key:" + seed).digest()
        return cls(owner=owner, private_key=private)


def derive_public_key(private_key: bytes) -> str:
    """Derive the public identifier for a private key."""
    return hashlib.sha256(b"public:" + private_key).hexdigest()


class KeyStore:
    """Registry mapping identities to key pairs (the producer's key chain)."""

    def __init__(self):
        self._keys: Dict[str, KeyPair] = {}

    def create(self, owner: str, seed: Optional[bytes] = None) -> KeyPair:
        """Create and store a key pair for ``owner``; returns the pair."""
        key = KeyPair.generate(owner, seed=seed)
        self._keys[owner] = key
        return key

    def add(self, key: KeyPair) -> None:
        self._keys[key.owner] = key

    def get(self, owner: str) -> KeyPair:
        try:
            return self._keys[owner]
        except KeyError:
            raise KeyError(f"no key pair for owner {owner!r}") from None

    def __contains__(self, owner: str) -> bool:
        return owner in self._keys

    def owners(self) -> list[str]:
        return list(self._keys)
