"""Simulated signatures.

The scheme is HMAC-SHA256 keyed with a value derived from the signer's
private key.  Verification recomputes the tag from the claimed public key,
which works because the public key is itself derived from the private key —
this is *not* a real asymmetric scheme, but it provides exactly the behaviour
the protocol logic depends on: a signature binds content to a name and to a
producer identity, verification fails if any of the three change, and
verification requires knowing (and trusting) the producer's public key.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass
from functools import lru_cache

from repro.crypto.keys import KeyPair, derive_public_key


@dataclass(frozen=True)
class Signature:
    """A signature over a (name, content) pair.

    Attributes
    ----------
    signer:
        Identity of the producer that signed the packet.
    public_key:
        Producer public key used for verification.
    value:
        Hex-encoded signature tag.
    """

    signer: str
    public_key: str
    value: str

    @property
    def size_bytes(self) -> int:
        """Approximate wire size of the signature block."""
        return len(self.value) // 2 + len(self.signer) + len(self.public_key) // 2


@lru_cache(maxsize=4096)
def _signing_key(public_key: str) -> bytes:
    # Pure derivation; cached because every sign/verify re-derives the same
    # few producer keys.
    return hashlib.sha256(b"signing:" + public_key.encode("ascii")).digest()


def sign(name: str, content: bytes, key: KeyPair) -> Signature:
    """Sign ``(name, content)`` with ``key``; binds the content to its name."""
    tag = hmac.new(_signing_key(key.public_key), _message(name, content), hashlib.sha256)
    return Signature(signer=key.owner, public_key=key.public_key, value=tag.hexdigest())


def verify(name: str, content: bytes, signature: Signature) -> bool:
    """Verify that ``signature`` covers ``(name, content)``."""
    expected = hmac.new(
        _signing_key(signature.public_key), _message(name, content), hashlib.sha256
    ).hexdigest()
    return hmac.compare_digest(expected, signature.value)


def public_key_matches(key: KeyPair, signature: Signature) -> bool:
    """Whether ``signature`` was produced with ``key``."""
    return derive_public_key(key.private_key) == signature.public_key


def _message(name: str, content: bytes) -> bytes:
    name_bytes = name.encode("utf-8")
    return len(name_bytes).to_bytes(4, "big") + name_bytes + bytes(content)
