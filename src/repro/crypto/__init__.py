"""Simulated cryptographic primitives.

DAPES relies on NDN's data-centric security: every Data packet is signed by
its producer, the collection metadata is signed so peers can authenticate the
collection producer through common local trust anchors, and packet integrity
is verified either via per-packet digests listed in the metadata or via a
Merkle tree whose root hash is carried in the metadata.

The paper uses real RSA signatures via ndn-cxx; this reproduction substitutes
an HMAC-SHA256 based scheme (documented in DESIGN.md).  The substitution
preserves the semantics the protocol needs — sign/verify, digests, Merkle
proofs, trust decisions — without external dependencies.
"""

from repro.crypto.digest import sha256_hex
from repro.crypto.keys import KeyPair, KeyStore
from repro.crypto.merkle import MerkleTree
from repro.crypto.signing import Signature, sign, verify
from repro.crypto.trust import TrustAnchorStore

__all__ = [
    "KeyPair",
    "KeyStore",
    "MerkleTree",
    "Signature",
    "TrustAnchorStore",
    "sha256_hex",
    "sign",
    "verify",
]
