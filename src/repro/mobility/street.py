"""Street-graph mobility: random walks constrained to a Manhattan grid.

Urban scenarios confine movement to streets: nodes walk along the grid of
street centrelines, turning (or going straight) at intersections, never
cutting through the blocks between them.  Rather than inventing a new
trajectory engine, :class:`StreetGridMobility` *precomputes* each node's
walk as a timed waypoint trace and delegates position queries to the
piecewise-linear interpolation of :class:`~repro.mobility.scripted.ScriptedMobility`
— reusing the machinery that already serves the paper's Fig. 8 scenarios.

Determinism and query-order independence come for free: every trace is
generated once, at :meth:`add_node` time, from the shared RNG stream (node
registration order is fixed by the topology builder), so position queries
never draw randomness and cannot influence each other.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from repro.mobility.base import MobilityModel, Position
from repro.mobility.scripted import ScriptedMobility, Waypoint


class StreetGridMobility(MobilityModel):
    """Random walk over the intersections of a Manhattan street grid.

    Parameters
    ----------
    xs, ys:
        Street centreline coordinates (vertical streets at each ``x`` of
        ``xs``, horizontal streets at each ``y`` of ``ys``).  Intersections
        are the cross product; each must have at least two entries so every
        intersection has a neighbour.
    min_speed, max_speed:
        Per-leg speed range in m/s (drawn uniformly per street segment).
    rng:
        The random stream traces are drawn from (e.g.
        ``sim.rng("mobility.street")``).
    duration:
        How much simulated time each trace must cover.  Past the end of its
        trace a node rests at its final intersection (scripted semantics),
        so pass at least the experiment's ``max_duration``.
    """

    def __init__(
        self,
        xs: Sequence[float],
        ys: Sequence[float],
        min_speed: float,
        max_speed: float,
        rng: random.Random,
        duration: float,
    ):
        if len(xs) < 2 or len(ys) < 2:
            raise ValueError("a street grid needs at least two streets per direction")
        if not 0 < min_speed <= max_speed:
            raise ValueError("speeds must satisfy 0 < min_speed <= max_speed")
        if duration <= 0:
            raise ValueError("duration must be positive")
        self.xs = tuple(sorted(xs))
        self.ys = tuple(sorted(ys))
        self.min_speed = min_speed
        self.max_speed = max_speed
        self.duration = duration
        self._rng = rng
        self._scripted = ScriptedMobility()

    # ------------------------------------------------------------ membership
    @property
    def node_ids(self) -> List[str]:
        return self._scripted.node_ids

    def intersections(self) -> List[Tuple[float, float]]:
        """Every street intersection, row-major."""
        return [(x, y) for y in self.ys for x in self.xs]

    def add_node(self, node_id: str, start: Optional[Tuple[int, int]] = None) -> None:
        """Register a node and draw its whole walk.

        ``start`` optionally pins the starting intersection as ``(column,
        row)`` indices into ``xs``/``ys``; by default it is drawn from the
        trace RNG.
        """
        rng = self._rng
        columns, rows = len(self.xs), len(self.ys)
        if start is None:
            column, row = rng.randrange(columns), rng.randrange(rows)
        else:
            column, row = start
        previous: Optional[Tuple[int, int]] = None
        now = 0.0
        waypoints = [Waypoint(now, self.xs[column], self.ys[row])]
        while now < self.duration:
            choices = [
                (column + dc, row + dr)
                for dc, dr in ((1, 0), (-1, 0), (0, 1), (0, -1))
                if 0 <= column + dc < columns and 0 <= row + dr < rows
            ]
            # Avoid immediate backtracking when any other street continues —
            # walks sweep the city instead of oscillating on one segment.
            forward = [cell for cell in choices if cell != previous]
            next_column, next_row = rng.choice(forward or choices)
            speed = rng.uniform(self.min_speed, self.max_speed)
            distance = abs(self.xs[next_column] - self.xs[column]) + abs(
                self.ys[next_row] - self.ys[row]
            )
            now += distance / speed
            waypoints.append(Waypoint(now, self.xs[next_column], self.ys[next_row]))
            previous = (column, row)
            column, row = next_column, next_row
        self._scripted.add_node(node_id, waypoints)

    # --------------------------------------------------------------- queries
    def position(self, node_id: str, time: float) -> Position:
        return self._scripted.position(node_id, time)

    def position_xy(self, node_id: str, time: float) -> Tuple[float, float]:
        return self._scripted.position_xy(node_id, time)

    def positions_array(self, node_ids, time: float):
        return self._scripted.positions_array(node_ids, time)

    def mobility_version(self) -> int:
        return self._scripted.mobility_version()

    def speed_bound(self) -> float:
        # The exact bound over the generated traces (not max_speed: rounding
        # in waypoint timing can only make legs slower, never faster).
        return self._scripted.speed_bound()
