"""Composite mobility: different models for different nodes in one scenario.

The paper's topology mixes 4 stationary repositories with 40 mobile nodes;
the composite model dispatches position queries to the model each node was
registered with.
"""

from __future__ import annotations

from typing import Dict

from repro.mobility.base import MobilityModel, Position


class CompositeMobility(MobilityModel):
    """Routes position queries to the mobility model owning each node."""

    def __init__(self):
        self._owners: Dict[str, MobilityModel] = {}
        self._models: Dict[int, MobilityModel] = {}
        self._version = 0

    def assign(self, node_id: str, model: MobilityModel) -> None:
        """Declare that ``node_id``'s positions come from ``model``."""
        self._owners[node_id] = model
        self._models[id(model)] = model
        self._version += 1

    def position(self, node_id: str, time: float) -> Position:
        try:
            model = self._owners[node_id]
        except KeyError:
            raise KeyError(f"node {node_id!r} is not assigned to any mobility model") from None
        return model.position(node_id, time)

    def speed_bound(self) -> float:
        return max(
            (model.speed_bound() for model in self._models.values()), default=0.0
        )

    def mobility_version(self) -> int:
        return self._version + sum(
            model.mobility_version() for model in self._models.values()
        )

    @property
    def node_ids(self) -> list[str]:
        return list(self._owners)
