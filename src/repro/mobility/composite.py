"""Composite mobility: different models for different nodes in one scenario.

The paper's topology mixes 4 stationary repositories with 40 mobile nodes;
the composite model dispatches position queries to the model each node was
registered with.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.arrays import numpy_or_none
from repro.mobility.base import MobilityModel, Position


class CompositeMobility(MobilityModel):
    """Routes position queries to the mobility model owning each node."""

    def __init__(self):
        self._owners: Dict[str, MobilityModel] = {}
        self._models: Dict[int, MobilityModel] = {}
        # Flat list of child models: mobility_version() is polled on every
        # cached position lookup, so the aggregation below must stay a plain
        # loop over a list (no dict-view or generator machinery).
        self._model_list: List[MobilityModel] = []
        self._version = 0
        # Owner grouping for positions_array, keyed by (node-order tuple,
        # assignment version): [(model, sub_order, row_indices), ...].  The
        # sub-order tuples stay identical across queries for a stable caller
        # order, so each child's own array cache keeps hitting.
        self._group_cache: Optional[tuple] = None

    def assign(self, node_id: str, model: MobilityModel) -> None:
        """Declare that ``node_id``'s positions come from ``model``."""
        self._owners[node_id] = model
        if id(model) not in self._models:
            self._models[id(model)] = model
            self._model_list.append(model)
        self._version += 1

    def position(self, node_id: str, time: float) -> Position:
        try:
            model = self._owners[node_id]
        except KeyError:
            raise KeyError(f"node {node_id!r} is not assigned to any mobility model") from None
        return model.position(node_id, time)

    def position_xy(self, node_id: str, time: float) -> Tuple[float, float]:
        try:
            model = self._owners[node_id]
        except KeyError:
            raise KeyError(f"node {node_id!r} is not assigned to any mobility model") from None
        return model.position_xy(node_id, time)

    def positions_at(self, node_ids, time: float) -> List[Tuple[float, float]]:
        position_xy = self.position_xy  # owner dispatch + descriptive KeyError
        return [position_xy(node_id, time) for node_id in node_ids]

    def positions_array(self, node_ids, time: float):
        np = numpy_or_none()
        if np is None:
            return super().positions_array(node_ids, time)
        order = tuple(node_ids)
        cached = self._group_cache
        if cached is None or cached[0] != order or cached[1] != self._version:
            by_model: Dict[int, Tuple[MobilityModel, List[str], List[int]]] = {}
            for index, node_id in enumerate(order):
                try:
                    model = self._owners[node_id]
                except KeyError:
                    raise KeyError(
                        f"node {node_id!r} is not assigned to any mobility model"
                    ) from None
                entry = by_model.get(id(model))
                if entry is None:
                    entry = by_model[id(model)] = (model, [], [])
                entry[1].append(node_id)
                entry[2].append(index)
            groups = [
                (model, tuple(sub_ids), np.asarray(indices, dtype=np.intp))
                for model, sub_ids, indices in by_model.values()
            ]
            cached = self._group_cache = (order, self._version, groups)
        out = np.empty((len(order), 2), dtype=np.float64)
        for model, sub_ids, indices in cached[2]:
            out[indices] = model.positions_array(sub_ids, time)
        return out

    def speed_bound(self) -> float:
        return max(
            (model.speed_bound() for model in self._model_list), default=0.0
        )

    def mobility_version(self) -> int:
        version = self._version
        for model in self._model_list:
            version += model.mobility_version()
        return version

    @property
    def node_ids(self) -> list[str]:
        return list(self._owners)
