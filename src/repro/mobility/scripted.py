"""Scripted (trace-driven) mobility.

Used to reproduce the real-world scenarios of Fig. 8, where the movement of
the participants is known: a data carrier fetching a collection and walking
to other network segments (scenario 1), peers downloading from a stationary
repository (scenario 2), and peers moving across an area, sometimes
disconnected and sometimes in range of each other (scenario 3).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.arrays import numpy_or_none
from repro.mobility.base import LegArrayCache, MobilityModel, Position


@dataclass(frozen=True)
class Waypoint:
    """A timed waypoint: the node is at ``(x, y)`` exactly at ``time``."""

    time: float
    x: float
    y: float

    @property
    def position(self) -> Position:
        return Position(self.x, self.y)


class ScriptedMobility(MobilityModel):
    """Piecewise-linear movement through explicit, timed waypoints.

    Before the first waypoint the node sits at the first waypoint's position;
    after the last it sits at the last waypoint's position.  Between
    waypoints the position is linearly interpolated.
    """

    def __init__(self):
        self._waypoints: Dict[str, List[Waypoint]] = {}
        self._version = 0
        # Vectorized leg rows for positions_array: one row of
        # (valid_from, valid_to, t0, span, x0, y0, dx, dy) per node, where
        # position = (x0, y0) + (dx, dy) * (time - t0) / span.
        self._leg_rows = LegArrayCache(8)

    def add_node(self, node_id: str, waypoints: Iterable[Waypoint | Tuple[float, float, float]]) -> None:
        """Register a node with its waypoint trace (must be non-empty)."""
        parsed: List[Waypoint] = []
        for waypoint in waypoints:
            if not isinstance(waypoint, Waypoint):
                waypoint = Waypoint(*waypoint)
            parsed.append(waypoint)
        if not parsed:
            raise ValueError(f"node {node_id!r} needs at least one waypoint")
        parsed.sort(key=lambda w: w.time)
        self._waypoints[node_id] = parsed
        self._version += 1

    def add_static_node(self, node_id: str, x: float, y: float) -> None:
        """Register a node that never moves (e.g. a repository)."""
        self.add_node(node_id, [Waypoint(0.0, x, y)])

    @property
    def node_ids(self) -> list[str]:
        return list(self._waypoints)

    def position(self, node_id: str, time: float) -> Position:
        try:
            waypoints = self._waypoints[node_id]
        except KeyError:
            raise KeyError(f"node {node_id!r} has no scripted trace") from None
        return _interpolate(waypoints, time)

    def mobility_version(self) -> int:
        return self._version

    def positions_array(self, node_ids, time: float):
        np = numpy_or_none()
        if np is None:
            return super().positions_array(node_ids, time)
        rows = self._leg_rows.rows_for(
            np, node_ids, self._version, time, self._leg_row_at(time)
        )
        fraction = (time - rows[:, 2]) / rows[:, 3]
        return rows[:, 4:6] + rows[:, 6:8] * fraction[:, None]

    def _leg_row_at(self, time: float):
        """Refresh callback: the leg row whose evaluation matches _interpolate.

        Validity windows must partition time exactly the way the scalar scan
        resolves boundary queries (first matching pair wins, the after-last
        branch wins at the final waypoint's own timestamp), so a cached row
        never answers a timestamp the scalar code would have resolved with a
        different leg.  Hence the half-open windows via ``math.nextafter``.
        """

        def refresh(node_id: str):
            try:
                waypoints = self._waypoints[node_id]
            except KeyError:
                raise KeyError(f"node {node_id!r} has no scripted trace") from None
            first, last = waypoints[0], waypoints[-1]
            if time <= first.time:
                return (-math.inf, first.time, 0.0, 1.0, first.x, first.y, 0.0, 0.0)
            if time >= last.time:
                return (last.time, math.inf, 0.0, 1.0, last.x, last.y, 0.0, 0.0)
            for earlier, later in zip(waypoints, waypoints[1:]):
                if earlier.time <= time <= later.time:
                    # Pair j owns (t_j, t_{j+1}]: at time == t_j the scalar
                    # scan already matched pair j-1, and time >= t_last goes
                    # to the constant branch above.
                    valid_from = math.nextafter(earlier.time, math.inf)
                    valid_to = later.time
                    if later is last:
                        valid_to = math.nextafter(valid_to, -math.inf)
                    span = later.time - earlier.time
                    if span == 0:
                        return (valid_from, valid_to, 0.0, 1.0, earlier.x, earlier.y, 0.0, 0.0)
                    return (
                        valid_from,
                        valid_to,
                        earlier.time,
                        span,
                        earlier.x,
                        earlier.y,
                        later.x - earlier.x,
                        later.y - earlier.y,
                    )
            return (time, time, 0.0, 1.0, last.x, last.y, 0.0, 0.0)  # pragma: no cover - defensive

        return refresh

    def speed_bound(self) -> float:
        """Fastest leg speed across all traces (exact: traces are known upfront)."""
        fastest = 0.0
        for waypoints in self._waypoints.values():
            for earlier, later in zip(waypoints, waypoints[1:]):
                span = later.time - earlier.time
                if span <= 0:
                    continue
                speed = earlier.position.distance_to(later.position) / span
                fastest = max(fastest, speed)
        return fastest


def _interpolate(waypoints: Sequence[Waypoint], time: float) -> Position:
    if time <= waypoints[0].time:
        return waypoints[0].position
    if time >= waypoints[-1].time:
        return waypoints[-1].position
    for earlier, later in zip(waypoints, waypoints[1:]):
        if earlier.time <= time <= later.time:
            span = later.time - earlier.time
            fraction = 0.0 if span == 0 else (time - earlier.time) / span
            return Position(
                earlier.x + (later.x - earlier.x) * fraction,
                earlier.y + (later.y - earlier.y) * fraction,
            )
    return waypoints[-1].position  # pragma: no cover - defensive
