"""Scripted (trace-driven) mobility.

Used to reproduce the real-world scenarios of Fig. 8, where the movement of
the participants is known: a data carrier fetching a collection and walking
to other network segments (scenario 1), peers downloading from a stationary
repository (scenario 2), and peers moving across an area, sometimes
disconnected and sometimes in range of each other (scenario 3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.mobility.base import MobilityModel, Position


@dataclass(frozen=True)
class Waypoint:
    """A timed waypoint: the node is at ``(x, y)`` exactly at ``time``."""

    time: float
    x: float
    y: float

    @property
    def position(self) -> Position:
        return Position(self.x, self.y)


class ScriptedMobility(MobilityModel):
    """Piecewise-linear movement through explicit, timed waypoints.

    Before the first waypoint the node sits at the first waypoint's position;
    after the last it sits at the last waypoint's position.  Between
    waypoints the position is linearly interpolated.
    """

    def __init__(self):
        self._waypoints: Dict[str, List[Waypoint]] = {}
        self._version = 0

    def add_node(self, node_id: str, waypoints: Iterable[Waypoint | Tuple[float, float, float]]) -> None:
        """Register a node with its waypoint trace (must be non-empty)."""
        parsed: List[Waypoint] = []
        for waypoint in waypoints:
            if not isinstance(waypoint, Waypoint):
                waypoint = Waypoint(*waypoint)
            parsed.append(waypoint)
        if not parsed:
            raise ValueError(f"node {node_id!r} needs at least one waypoint")
        parsed.sort(key=lambda w: w.time)
        self._waypoints[node_id] = parsed
        self._version += 1

    def add_static_node(self, node_id: str, x: float, y: float) -> None:
        """Register a node that never moves (e.g. a repository)."""
        self.add_node(node_id, [Waypoint(0.0, x, y)])

    @property
    def node_ids(self) -> list[str]:
        return list(self._waypoints)

    def position(self, node_id: str, time: float) -> Position:
        try:
            waypoints = self._waypoints[node_id]
        except KeyError:
            raise KeyError(f"node {node_id!r} has no scripted trace") from None
        return _interpolate(waypoints, time)

    def mobility_version(self) -> int:
        return self._version

    def speed_bound(self) -> float:
        """Fastest leg speed across all traces (exact: traces are known upfront)."""
        fastest = 0.0
        for waypoints in self._waypoints.values():
            for earlier, later in zip(waypoints, waypoints[1:]):
                span = later.time - earlier.time
                if span <= 0:
                    continue
                speed = earlier.position.distance_to(later.position) / span
                fastest = max(fastest, speed)
        return fastest


def _interpolate(waypoints: Sequence[Waypoint], time: float) -> Position:
    if time <= waypoints[0].time:
        return waypoints[0].position
    if time >= waypoints[-1].time:
        return waypoints[-1].position
    for earlier, later in zip(waypoints, waypoints[1:]):
        if earlier.time <= time <= later.time:
            span = later.time - earlier.time
            fraction = 0.0 if span == 0 else (time - earlier.time) / span
            return Position(
                earlier.x + (later.x - earlier.x) * fraction,
                earlier.y + (later.y - earlier.y) * fraction,
            )
    return waypoints[-1].position  # pragma: no cover - defensive
