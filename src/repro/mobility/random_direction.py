"""Random-direction mobility, the model used in the paper's simulations.

Each mobile node repeatedly chooses a uniformly random direction in
[0, 2*pi) and a uniformly random speed in [min_speed, max_speed], then travels
in a straight line for an *epoch*.  An epoch ends either after a random
duration or when the node reaches the simulation area boundary, whichever
happens first; the node then picks a new direction/speed.  Movement is
clamped inside the area.

The trajectory of each node is generated lazily segment-by-segment, so that a
position query at any time is answered deterministically regardless of query
order.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.arrays import numpy_or_none
from repro.mobility.base import LegArrayCache, MobilityModel, Position


@dataclass(frozen=True)
class _Segment:
    """One straight-line epoch of movement: position is linear in time."""

    start_time: float
    end_time: float
    start: Position
    velocity: Tuple[float, float]

    def position_at(self, time: float) -> Position:
        elapsed = min(max(time, self.start_time), self.end_time) - self.start_time
        return Position(
            self.start.x + self.velocity[0] * elapsed,
            self.start.y + self.velocity[1] * elapsed,
        )


class RandomDirectionMobility(MobilityModel):
    """Random-direction movement inside a rectangular area.

    Parameters
    ----------
    width, height:
        Dimensions of the simulation area in metres (paper: 300 x 300).
    min_speed, max_speed:
        Speed range in m/s (paper: 2-10 m/s).
    epoch_duration:
        Mean duration of an epoch before a new direction is chosen (s).
    rng:
        Random source (one of the simulator's named streams).  Used for
        initial placement and to derive one independent stream per node, so
        trajectories do not depend on the order position queries arrive in.
    origin:
        Lower-left corner of the movement area in metres.  Topologies that
        confine different node groups to different regions (e.g. clustered
        disaster zones) offset each group's model instead of sharing one
        area-wide model.
    """

    def __init__(
        self,
        width: float = 300.0,
        height: float = 300.0,
        min_speed: float = 2.0,
        max_speed: float = 10.0,
        epoch_duration: float = 20.0,
        rng: random.Random | None = None,
        origin: Tuple[float, float] = (0.0, 0.0),
    ):
        if min_speed <= 0 or max_speed < min_speed:
            raise ValueError("speed range must satisfy 0 < min_speed <= max_speed")
        self.width = width
        self.height = height
        self.min_speed = min_speed
        self.max_speed = max_speed
        self.epoch_duration = epoch_duration
        self.origin = (float(origin[0]), float(origin[1]))
        self._rng = rng if rng is not None else random.Random(0)
        self._version = 0
        self._node_rngs: Dict[str, random.Random] = {}
        self._segments: Dict[str, List[_Segment]] = {}
        self._initial: Dict[str, Position] = {}
        # Per-node cache of the segment the last query fell in: repeated
        # queries (the common case — simulation time crawls through one
        # epoch) evaluate the cached leg directly instead of re-deriving it
        # from the segment list.
        self._current: Dict[str, _Segment] = {}
        # Vectorized view of the same legs, one (t0, t1, x0, y0, vx, vy)
        # row per node, for positions_array.
        self._leg_rows = LegArrayCache(6)

    # ----------------------------------------------------------------- setup
    def add_node(self, node_id: str, initial_position: Position | Tuple[float, float] | None = None) -> None:
        """Register a mobile node, optionally at a fixed initial position."""
        origin_x, origin_y = self.origin
        if initial_position is None:
            position = Position(
                self._rng.uniform(origin_x, origin_x + self.width),
                self._rng.uniform(origin_y, origin_y + self.height),
            )
        elif isinstance(initial_position, Position):
            position = initial_position
        else:
            position = Position(*initial_position)
        self._initial[node_id] = position
        # Each node draws its epochs from a private stream seeded at
        # registration time: trajectories are then a pure function of the
        # registration order, never of the position-query pattern.
        self._node_rngs[node_id] = random.Random(self._rng.getrandbits(64))
        self._segments[node_id] = []
        self._current.pop(node_id, None)
        self._version += 1

    @property
    def node_ids(self) -> list[str]:
        """Ids of all registered nodes."""
        return list(self._initial)

    # -------------------------------------------------------------- querying
    def position(self, node_id: str, time: float) -> Position:
        segment = self._current.get(node_id)
        if segment is not None and segment.start_time <= time <= segment.end_time:
            return segment.position_at(time)
        segment = self._locate_segment(node_id, time)
        if segment is None:
            return self._initial[node_id]
        return segment.position_at(time)

    def position_xy(self, node_id: str, time: float) -> Tuple[float, float]:
        segment = self._current.get(node_id)
        if segment is None or not (segment.start_time <= time <= segment.end_time):
            segment = self._locate_segment(node_id, time)
            if segment is None:
                initial = self._initial[node_id]
                return (initial.x, initial.y)
        # Same arithmetic as _Segment.position_at, without the Position.
        elapsed = min(max(time, segment.start_time), segment.end_time) - segment.start_time
        start = segment.start
        velocity = segment.velocity
        return (start.x + velocity[0] * elapsed, start.y + velocity[1] * elapsed)

    def current_leg(self, node_id: str, time: float) -> Tuple[float, float, float, float, float, float]:
        """The piecewise-linear leg covering ``time``: ``(t0, t1, x0, y0, vx, vy)``.

        ``position(node_id, t)`` for ``t0 <= t <= t1`` is exactly
        ``(x0 + vx * (t - t0), y0 + vy * (t - t0))``.
        """
        segment = self._current.get(node_id)
        if segment is None or not (segment.start_time <= time <= segment.end_time):
            segment = self._locate_segment(node_id, time)
        if segment is None:
            initial = self._initial[node_id]
            return (time, time, initial.x, initial.y, 0.0, 0.0)
        return (
            segment.start_time,
            segment.end_time,
            segment.start.x,
            segment.start.y,
            segment.velocity[0],
            segment.velocity[1],
        )

    def positions_array(self, node_ids, time: float):
        np = numpy_or_none()
        if np is None:
            return super().positions_array(node_ids, time)
        rows = self._leg_rows.rows_for(
            np, node_ids, self._version, time,
            lambda node_id: self.current_leg(node_id, time),
        )
        # Same arithmetic as position_xy, fused over every node:
        # elapsed = min(max(time, t0), t1) - t0;  p = origin + velocity*elapsed.
        # minimum/maximum/sub/mul/add are IEEE-exact elementwise, so each row
        # is bit-identical to the scalar query.
        elapsed = np.minimum(np.maximum(time, rows[:, 0]), rows[:, 1]) - rows[:, 0]
        return rows[:, 2:4] + rows[:, 4:6] * elapsed[:, None]

    def _locate_segment(self, node_id: str, time: float) -> "_Segment | None":
        """Find (and cache) the segment covering ``time``, extending lazily."""
        if node_id not in self._initial:
            raise KeyError(f"node {node_id!r} is not registered with the mobility model")
        self._extend_until(node_id, time)
        # Binary search would work, but trajectories are extended monotonically
        # and queried near the end; a reverse scan is effectively O(1).
        for segment in reversed(self._segments[node_id]):
            if segment.start_time <= time:
                self._current[node_id] = segment
                return segment
        return None

    def speed_bound(self) -> float:
        return self.max_speed

    def mobility_version(self) -> int:
        return self._version

    # -------------------------------------------------------------- internal
    def _extend_until(self, node_id: str, time: float) -> None:
        segments = self._segments[node_id]
        while not segments or segments[-1].end_time < time:
            if segments:
                start_time = segments[-1].end_time
                start = segments[-1].position_at(start_time)
            else:
                start_time = 0.0
                start = self._initial[node_id]
            segments.append(self._new_segment(node_id, start_time, start))

    def _new_segment(self, node_id: str, start_time: float, start: Position) -> _Segment:
        rng = self._node_rngs[node_id]
        direction = rng.uniform(0, 2 * math.pi)
        speed = rng.uniform(self.min_speed, self.max_speed)
        duration = rng.uniform(0.5 * self.epoch_duration, 1.5 * self.epoch_duration)
        vx = speed * math.cos(direction)
        vy = speed * math.sin(direction)
        # Truncate the epoch at the boundary so the node stays inside the area.
        duration = min(duration, self._time_to_boundary(start, vx, vy))
        duration = max(duration, 1e-3)
        return _Segment(start_time, start_time + duration, start, (vx, vy))

    def _time_to_boundary(self, start: Position, vx: float, vy: float) -> float:
        origin_x, origin_y = self.origin
        times = [float("inf")]
        if vx > 0:
            times.append((origin_x + self.width - start.x) / vx)
        elif vx < 0:
            times.append((origin_x - start.x) / vx)
        if vy > 0:
            times.append((origin_y + self.height - start.y) / vy)
        elif vy < 0:
            times.append((origin_y - start.y) / vy)
        return max(min(times), 0.0)
