"""Random-waypoint mobility (provided as an alternative mobility pattern).

The paper's future-work section mentions experimenting with various mobility
patterns; random waypoint is the most common alternative to random direction
and is included so experiments can swap models without further code.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.arrays import numpy_or_none
from repro.mobility.base import LegArrayCache, MobilityModel, Position


@dataclass(frozen=True)
class _Leg:
    """Travel from ``start`` to ``end`` between ``start_time`` and ``end_time``,
    then pause until ``pause_until``."""

    start_time: float
    end_time: float
    pause_until: float
    start: Position
    end: Position

    def position_at(self, time: float) -> Position:
        if time >= self.end_time:
            return self.end
        if self.end_time == self.start_time:
            return self.end
        fraction = (time - self.start_time) / (self.end_time - self.start_time)
        fraction = min(max(fraction, 0.0), 1.0)
        return Position(
            self.start.x + (self.end.x - self.start.x) * fraction,
            self.start.y + (self.end.y - self.start.y) * fraction,
        )


class RandomWaypointMobility(MobilityModel):
    """Nodes travel to uniformly random waypoints, optionally pausing between legs."""

    def __init__(
        self,
        width: float = 300.0,
        height: float = 300.0,
        min_speed: float = 2.0,
        max_speed: float = 10.0,
        pause_time: float = 0.0,
        rng: random.Random | None = None,
    ):
        if min_speed <= 0 or max_speed < min_speed:
            raise ValueError("speed range must satisfy 0 < min_speed <= max_speed")
        self.width = width
        self.height = height
        self.min_speed = min_speed
        self.max_speed = max_speed
        self.pause_time = pause_time
        self._rng = rng if rng is not None else random.Random(0)
        self._version = 0
        self._node_rngs: Dict[str, random.Random] = {}
        self._legs: Dict[str, List[_Leg]] = {}
        self._initial: Dict[str, Position] = {}
        # Per-node cache of the leg the last query fell in (valid through
        # its pause window): the common query pattern revisits one leg many
        # times, so this skips the extend/reverse-scan on the hot path.
        self._current: Dict[str, _Leg] = {}
        # Vectorized view of the same legs for positions_array, one row of
        # (t0, t1, pause_until, sx, sy, ex, ey) per node; a row stays valid
        # through its pause window (column 2).
        self._leg_rows = LegArrayCache(7, valid_to_column=2)

    def add_node(self, node_id: str, initial_position: Position | Tuple[float, float] | None = None) -> None:
        """Register a mobile node, optionally at a fixed initial position."""
        if initial_position is None:
            position = Position(self._rng.uniform(0, self.width), self._rng.uniform(0, self.height))
        elif isinstance(initial_position, Position):
            position = initial_position
        else:
            position = Position(*initial_position)
        self._initial[node_id] = position
        # Per-node stream: legs are a function of registration order only,
        # never of the position-query pattern (see MobilityModel contract).
        self._node_rngs[node_id] = random.Random(self._rng.getrandbits(64))
        self._legs[node_id] = []
        self._current.pop(node_id, None)
        self._version += 1

    @property
    def node_ids(self) -> list[str]:
        return list(self._initial)

    def position(self, node_id: str, time: float) -> Position:
        leg = self._current.get(node_id)
        if leg is not None and leg.start_time <= time <= leg.pause_until:
            return leg.position_at(time)
        leg = self._locate_leg(node_id, time)
        if leg is None:
            return self._initial[node_id]
        return leg.position_at(time)

    def position_xy(self, node_id: str, time: float) -> Tuple[float, float]:
        leg = self._current.get(node_id)
        if leg is None or not (leg.start_time <= time <= leg.pause_until):
            leg = self._locate_leg(node_id, time)
            if leg is None:
                initial = self._initial[node_id]
                return (initial.x, initial.y)
        # Same arithmetic as _Leg.position_at (bit-identical floats), minus
        # the Position allocation.
        if time >= leg.end_time or leg.end_time == leg.start_time:
            return (leg.end.x, leg.end.y)
        fraction = (time - leg.start_time) / (leg.end_time - leg.start_time)
        fraction = min(max(fraction, 0.0), 1.0)
        start, end = leg.start, leg.end
        return (
            start.x + (end.x - start.x) * fraction,
            start.y + (end.y - start.y) * fraction,
        )

    def current_leg(self, node_id: str, time: float) -> Tuple[float, float, float, float, float, float]:
        """The travel leg covering ``time``: ``(t0, t1, x0, y0, vx, vy)``.

        During the pause window (``t >= t1`` up to the next leg) the node
        sits at the leg's endpoint; callers clamp ``t`` to ``t1``.
        """
        leg = self._current.get(node_id)
        if leg is None or not (leg.start_time <= time <= leg.pause_until):
            leg = self._locate_leg(node_id, time)
        if leg is None:
            initial = self._initial[node_id]
            return (time, time, initial.x, initial.y, 0.0, 0.0)
        travel = leg.end_time - leg.start_time
        if travel <= 0.0:
            return (leg.start_time, leg.end_time, leg.end.x, leg.end.y, 0.0, 0.0)
        return (
            leg.start_time,
            leg.end_time,
            leg.start.x,
            leg.start.y,
            (leg.end.x - leg.start.x) / travel,
            (leg.end.y - leg.start.y) / travel,
        )

    def positions_array(self, node_ids, time: float):
        np = numpy_or_none()
        if np is None:
            return super().positions_array(node_ids, time)
        rows = self._leg_rows.rows_for(
            np, node_ids, self._version, time, self._leg_row_at(time)
        )
        t0, t1 = rows[:, 0], rows[:, 1]
        start, end = rows[:, 3:5], rows[:, 5:7]
        # Same branch structure as position_xy, as masks: paused/degenerate
        # legs sit at the endpoint, travelling legs interpolate by the exact
        # scalar fraction formula (clamped with minimum/maximum, not clip,
        # to mirror min(max(...)) bit-for-bit).
        at_end = (time >= t1) | (t1 == t0)
        span = np.where(at_end, 1.0, t1 - t0)  # dummy denominator where at_end
        fraction = np.minimum(np.maximum((time - t0) / span, 0.0), 1.0)
        moving = start + (end - start) * fraction[:, None]
        return np.where(at_end[:, None], end, moving)

    def _leg_row_at(self, time: float):
        """Refresh callback for the leg-row cache at one timestamp."""

        def refresh(node_id: str):
            leg = self._current.get(node_id)
            if leg is None or not (leg.start_time <= time <= leg.pause_until):
                leg = self._locate_leg(node_id, time)
            if leg is None:
                initial = self._initial[node_id]
                return (time, time, time, initial.x, initial.y, initial.x, initial.y)
            return (
                leg.start_time,
                leg.end_time,
                leg.pause_until,
                leg.start.x,
                leg.start.y,
                leg.end.x,
                leg.end.y,
            )

        return refresh

    def _locate_leg(self, node_id: str, time: float) -> "_Leg | None":
        """Find (and cache) the leg covering ``time``, extending lazily."""
        if node_id not in self._initial:
            raise KeyError(f"node {node_id!r} is not registered with the mobility model")
        self._extend_until(node_id, time)
        for leg in reversed(self._legs[node_id]):
            if leg.start_time <= time:
                self._current[node_id] = leg
                return leg
        return None

    def speed_bound(self) -> float:
        return self.max_speed

    def mobility_version(self) -> int:
        return self._version

    def _extend_until(self, node_id: str, time: float) -> None:
        legs = self._legs[node_id]
        while not legs or legs[-1].pause_until < time:
            if legs:
                start_time = legs[-1].pause_until
                start = legs[-1].end
            else:
                start_time = 0.0
                start = self._initial[node_id]
            legs.append(self._new_leg(node_id, start_time, start))

    def _new_leg(self, node_id: str, start_time: float, start: Position) -> _Leg:
        rng = self._node_rngs[node_id]
        destination = Position(rng.uniform(0, self.width), rng.uniform(0, self.height))
        speed = rng.uniform(self.min_speed, self.max_speed)
        distance = start.distance_to(destination)
        travel_time = max(distance / speed, 1e-3)
        end_time = start_time + travel_time
        return _Leg(start_time, end_time, end_time + self.pause_time, start, destination)
