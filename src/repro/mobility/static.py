"""Static node placement (stationary repositories, fixed topologies)."""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Tuple

from repro.arrays import numpy_or_none
from repro.mobility.base import MobilityModel, Position


class StaticPlacement(MobilityModel):
    """Nodes that never move.

    Parameters
    ----------
    positions:
        Mapping from node id to ``(x, y)`` coordinates in metres.
    """

    def __init__(self, positions: Mapping[str, Tuple[float, float]] | None = None):
        self._positions: Dict[str, Position] = {}
        self._version = 0
        # (node-order tuple, version, read-only (N, 2) array): positions are
        # time-invariant, so one materialisation serves every query until a
        # teleport or a different node order arrives.
        self._array_cache: Optional[tuple] = None
        if positions:
            for node_id, (x, y) in positions.items():
                self._positions[node_id] = Position(x, y)

    def place(self, node_id: str, x: float, y: float) -> None:
        """Place (or move) a node at a fixed position.

        Moving a node mid-run is a teleport: the version bump below tells
        position caches and grid snapshots to discard everything they knew.
        """
        self._positions[node_id] = Position(x, y)
        self._version += 1

    def place_grid(self, node_ids: Iterable[str], width: float, height: float, spacing: float) -> None:
        """Place nodes on a regular grid covering ``width`` x ``height`` metres."""
        node_ids = list(node_ids)
        columns = max(int(width // spacing), 1)
        for index, node_id in enumerate(node_ids):
            row, col = divmod(index, columns)
            self.place(node_id, min(col * spacing, width), min(row * spacing, height))

    def position(self, node_id: str, time: float) -> Position:
        try:
            return self._positions[node_id]
        except KeyError:
            raise KeyError(f"node {node_id!r} has no static position") from None

    def position_xy(self, node_id: str, time: float) -> Tuple[float, float]:
        position = self.position(node_id, time)
        return (position.x, position.y)

    def positions_array(self, node_ids, time: float):
        np = numpy_or_none()
        if np is None:
            return super().positions_array(node_ids, time)
        order = tuple(node_ids)
        cached = self._array_cache
        if cached is not None and cached[0] == order and cached[1] == self._version:
            return cached[2]
        rows = np.empty((len(order), 2), dtype=np.float64)
        for index, node_id in enumerate(order):
            position = self.position(node_id, time)
            rows[index, 0] = position.x
            rows[index, 1] = position.y
        rows.setflags(write=False)  # shared across queries — callers must copy to mutate
        self._array_cache = (order, self._version, rows)
        return rows

    def speed_bound(self) -> float:
        return 0.0

    def mobility_version(self) -> int:
        return self._version

    @property
    def node_ids(self) -> list[str]:
        """Ids of all placed nodes."""
        return list(self._positions)
