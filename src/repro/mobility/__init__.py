"""Node mobility models.

The paper's simulation study uses a 300 m x 300 m area with 40 mobile nodes
that repeatedly pick a random direction (0 to 2*pi) and speed (2-10 m/s), plus
4 stationary repository nodes.  The real-world scenarios of Fig. 8 follow
scripted movements (a data carrier walking between network segments, peers
moving in and out of range of each other).

All models expose a single query: the node position at an arbitrary simulated
time.  Models are deterministic for a given random stream.
"""

from repro.mobility.base import MobilityModel, Position, PositionCache
from repro.mobility.composite import CompositeMobility
from repro.mobility.random_direction import RandomDirectionMobility
from repro.mobility.random_waypoint import RandomWaypointMobility
from repro.mobility.scripted import ScriptedMobility, Waypoint
from repro.mobility.static import StaticPlacement
from repro.mobility.street import StreetGridMobility

__all__ = [
    "CompositeMobility",
    "MobilityModel",
    "Position",
    "PositionCache",
    "RandomDirectionMobility",
    "RandomWaypointMobility",
    "ScriptedMobility",
    "StaticPlacement",
    "StreetGridMobility",
    "Waypoint",
]
