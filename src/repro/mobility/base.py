"""Base abstractions shared by all mobility models."""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.arrays import numpy_or_none


@dataclass(frozen=True)
class Position:
    """A 2-D position in metres."""

    x: float
    y: float

    def distance_to(self, other: "Position") -> float:
        """Euclidean distance to ``other`` in metres."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def __iter__(self):
        yield self.x
        yield self.y


class MobilityModel(ABC):
    """A mobility model answers "where is node ``node_id`` at time ``t``?".

    Implementations must be deterministic *and query-order independent*:
    querying the same (node, time) twice returns the same position, queries
    may arrive out of time order, and the trajectory of one node must not
    depend on how often (or whether) other nodes are queried.  The spatial
    neighbor index relies on this — it queries only nodes near a sender,
    while the brute-force reference scan queries everyone, and both must see
    identical trajectories.
    """

    @abstractmethod
    def position(self, node_id: str, time: float) -> Position:
        """Return the position of ``node_id`` at simulated time ``time``."""

    def position_xy(self, node_id: str, time: float) -> Tuple[float, float]:
        """Raw ``(x, y)`` of ``node_id`` at ``time`` — no :class:`Position`.

        Hot-path variant of :meth:`position`: spatial snapshots only need
        the coordinate pair, and leg-cached models can produce it without
        allocating a :class:`Position` per query.  Must return bit-identical
        floats to :meth:`position`.
        """
        p = self.position(node_id, time)
        return (p.x, p.y)

    def positions_at(self, node_ids: Iterable[str], time: float) -> List[Tuple[float, float]]:
        """Batched :meth:`position_xy` for many nodes at one timestamp.

        The grid neighbor index rebuilds its snapshot through this, so one
        rebuild is a single call instead of N :class:`Position` allocations.
        """
        position_xy = self.position_xy
        return [position_xy(node_id, time) for node_id in node_ids]

    def positions_array(self, node_ids: Sequence[str], time: float):
        """Batched :meth:`position_xy` as an ``(N, 2)`` float64 NumPy array.

        Row ``i`` is the position of ``node_ids[i]`` at ``time``, bit-identical
        to :meth:`position_xy` — the array-native spatial index and the
        batched link evaluator are built on this contract, with the scalar
        per-node queries as the oracle.  Models with leg caches override
        this with a fused vectorized evaluation over all nodes; the default
        materialises :meth:`positions_at`.  Requires NumPy (callers resolve
        the backend through :func:`repro.arrays.resolve_array_backend` and
        only take this path when it is available).
        """
        np = numpy_or_none()
        if np is None:
            raise RuntimeError(
                "positions_array requires NumPy; use positions_at on the "
                "scalar path (see repro.arrays.resolve_array_backend)"
            )
        return np.asarray(
            self.positions_at(node_ids, time), dtype=np.float64
        ).reshape(-1, 2)

    def coordinates_at(
        self, node_ids: Sequence[str], time: float
    ) -> List[Tuple[float, float]]:
        """Batched ``(x, y)`` pairs as plain Python floats, fastest path wins.

        Takes :meth:`positions_array` when NumPy is importable (one fused
        vectorized evaluation over all nodes, then ``tolist`` back to float
        pairs) and :meth:`positions_at` otherwise.  Both produce bit-identical
        floats by the :meth:`positions_array` contract, so callers that feed
        these coordinates into snapshots or membership assignment get the
        same bytes on every backend.  The sharded medium's epoch barrier and
        the fault manager's spatial group resolution are the main consumers.
        """
        if numpy_or_none() is not None:
            return [tuple(row) for row in self.positions_array(node_ids, time).tolist()]
        return list(self.positions_at(node_ids, time))

    def speed_bound(self) -> float:
        """An upper bound on any node's speed in m/s (``inf`` if unknown).

        The grid neighbor index uses this to bound how far a node can drift
        from its snapshotted position; models that cannot provide a bound
        force the index to refresh its snapshot at every new timestamp.
        """
        return math.inf

    def mobility_version(self) -> int:
        """Monotonic counter bumped whenever placements mutate.

        Teleporting a node (``StaticPlacement.place`` mid-run) or registering
        a new one sidesteps the ``speed_bound`` drift guarantee, so position
        caches and grid snapshots treat any version change as a full
        invalidation.  Lazy trajectory extension is *not* a mutation — it is
        deterministic and query-order independent.
        """
        return 0

    def distance(self, node_a: str, node_b: str, time: float) -> float:
        """Distance in metres between two nodes at ``time``."""
        return self.position(node_a, time).distance_to(self.position(node_b, time))


class LegArrayCache:
    """Per-node leg parameters packed into one ``(N, K)`` float64 array.

    The vectorized ``positions_array`` implementations share one shape of
    work: keep a row of piecewise-linear leg parameters per node, aligned to
    the caller's node-order tuple; on each query refresh only the rows whose
    validity window no longer covers the queried time (via the model's
    scalar leg lookup, which also feeds its per-node Python leg cache), then
    evaluate all rows in fused array expressions.  Legs change rarely
    relative to queries, so the per-query cost is a vectorized window check
    plus O(stale) scalar refreshes.

    ``K`` is model-specific; columns 0 and ``valid_to_column`` bound the
    validity window (``row[0] <= time <= row[valid_to_column]``).  A new
    node-order tuple or a mobility-version change invalidates every row.
    """

    __slots__ = ("columns", "valid_to_column", "_order", "_version", "_rows")

    def __init__(self, columns: int, valid_to_column: int = 1):
        self.columns = columns
        self.valid_to_column = valid_to_column
        self._order: Tuple[str, ...] = ()
        self._version: Optional[int] = None
        self._rows = None

    def rows_for(self, np, node_ids: Sequence[str], version: int, time: float, refresh):
        """The parameter array for ``node_ids``, every row covering ``time``.

        ``refresh(node_id)`` must return the row (an iterable of ``columns``
        floats) whose validity window contains ``time``.
        """
        order = tuple(node_ids)
        rows = self._rows
        if rows is None or order != self._order or version != self._version:
            rows = np.empty((len(order), self.columns), dtype=np.float64)
            stale = range(len(order))
            self._order = order
            self._version = version
            self._rows = rows
        else:
            valid = (rows[:, 0] <= time) & (time <= rows[:, self.valid_to_column])
            stale = np.flatnonzero(~valid)
        for index in stale:
            rows[index] = refresh(order[index])
        return rows


class PositionCache:
    """Per-timestamp memoization wrapper around a mobility model.

    The wireless medium evaluates many positions at the *same* timestamp (the
    sender plus every candidate receiver of a transmission, repeated for
    back-to-back frames).  Trajectory evaluation involves segment lookups and
    trigonometry, so caching the most recent timestamp's answers removes the
    bulk of that cost.  Only one timestamp is retained: simulation time moves
    forward, so older entries would never be hit again.
    """

    __slots__ = ("model", "_time", "_version", "_positions")

    def __init__(self, model: MobilityModel):
        self.model = model
        self._time = None
        self._version = model.mobility_version()
        self._positions: dict = {}

    def position(self, node_id: str, time: float) -> Position:
        version = self.model.mobility_version()
        if time != self._time or version != self._version:
            self._time = time
            self._version = version
            self._positions = {}
            position = None
        else:
            position = self._positions.get(node_id)
        if position is None:
            position = self.model.position(node_id, time)
            self._positions[node_id] = position
        return position

    def speed_bound(self) -> float:
        return self.model.speed_bound()

    def mobility_version(self) -> int:
        return self.model.mobility_version()
