"""Base abstractions shared by all mobility models."""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass


@dataclass(frozen=True)
class Position:
    """A 2-D position in metres."""

    x: float
    y: float

    def distance_to(self, other: "Position") -> float:
        """Euclidean distance to ``other`` in metres."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def __iter__(self):
        yield self.x
        yield self.y


class MobilityModel(ABC):
    """A mobility model answers "where is node ``node_id`` at time ``t``?".

    Implementations must be deterministic: querying the same (node, time)
    twice returns the same position, and queries may arrive out of time
    order (the wireless medium asks for sender and receiver positions at the
    moment a frame is transmitted).
    """

    @abstractmethod
    def position(self, node_id: str, time: float) -> Position:
        """Return the position of ``node_id`` at simulated time ``time``."""

    def distance(self, node_a: str, node_b: str, time: float) -> float:
        """Distance in metres between two nodes at ``time``."""
        return self.position(node_a, time).distance_to(self.position(node_b, time))
