"""Per-run performance profiling: named counters, timers, per-subsystem rates.

Two pieces:

* :class:`Profiler` — a tiny named-counter/timer registry for ad-hoc
  instrumentation (used by tools and tests; cheap enough to sprinkle).
* :func:`collect_run_profile` — samples the counters the simulator already
  maintains for free (engine events, medium/radio statistics, spatial-index
  rebuilds, mobility leg caches) into one flat ``{name: value}`` mapping.
  :func:`repro.experiments.runner.run_protocol_trial` attaches it to
  :attr:`RunResult.profile` when :attr:`ExperimentConfig.profile` is set, and
  ``python -m repro.experiments run --profile`` prints the aggregated
  breakdown.

Profiles deliberately live *outside* result equality: they contain wall-clock
measurements, which vary run to run, while every other ``RunResult`` field is
deterministic.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Mapping, Optional

#: Keys that denominate in wall-clock seconds (excluded from rate summaries).
_TIME_KEYS = ("wall_clock_s",)


class Profiler:
    """Named counters and accumulating timers.

    >>> profiler = Profiler()
    >>> profiler.count("frames", 3)
    >>> with profiler.timer("deliver"):
    ...     pass
    >>> sorted(profiler.counters) == ['frames']
    True
    """

    __slots__ = ("counters", "timers", "timer_calls")

    def __init__(self) -> None:
        self.counters: Dict[str, float] = {}
        self.timers: Dict[str, float] = {}
        self.timer_calls: Dict[str, int] = {}

    def count(self, name: str, value: float = 1) -> None:
        """Add ``value`` to the named counter."""
        self.counters[name] = self.counters.get(name, 0) + value

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Accumulate wall-clock time under ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.timers[name] = self.timers.get(name, 0.0) + elapsed
            self.timer_calls[name] = self.timer_calls.get(name, 0) + 1

    def snapshot(self) -> Dict[str, float]:
        """Flat mapping of every counter and timer (timers suffixed ``_s``)."""
        merged: Dict[str, float] = dict(self.counters)
        for name, elapsed in self.timers.items():
            merged[f"{name}_s"] = elapsed
            merged[f"{name}_calls"] = self.timer_calls[name]
        return merged


def collect_run_profile(sim, medium, wall_clock_s: float, churn=None, faults=None) -> Dict[str, float]:
    """Sample one finished trial's counters into a flat profile mapping.

    Everything here is read from state the hot paths maintain anyway, so
    profiling adds no per-event cost — only this end-of-run sweep.
    """
    profile: Dict[str, float] = {
        "wall_clock_s": wall_clock_s,
        "engine.events": float(sim.events_processed),
        "engine.pending_at_end": float(sim.pending_events),
    }
    if wall_clock_s > 0:
        profile["engine.events_per_sec"] = sim.events_processed / wall_clock_s

    stats = medium.stats
    profile["wireless.frames_transmitted"] = float(stats.frames_transmitted)
    profile["wireless.bytes_transmitted"] = float(stats.bytes_transmitted)
    profile["wireless.deliveries"] = float(stats.deliveries)
    profile["wireless.collisions"] = float(stats.collisions)
    profile["wireless.losses"] = float(stats.losses)
    profile["wireless.csma_deferrals"] = float(medium.csma_deferrals)
    profile["wireless.arq_retries"] = float(medium.arq_retries)
    profile["wireless.completed_transmissions"] = float(medium.completed_transmissions)
    profile["wireless.link_evaluations"] = float(getattr(medium, "link_evaluations", 0))
    vectorized = getattr(medium, "vectorized_link_evaluations", None)
    if vectorized is not None:
        profile["propagation.vectorized_link_evaluations"] = float(vectorized)

    propagation = getattr(medium, "propagation", None)
    if propagation is not None:
        for counter in ("occlusion_checks", "occlusion_cache_hits"):
            value = getattr(propagation, counter, None)
            if value is not None:
                profile[f"propagation.{counter}"] = float(value)
    if wall_clock_s > 0:
        profile["wireless.frames_per_sec"] = stats.frames_transmitted / wall_clock_s
        profile["wireless.deliveries_per_sec"] = stats.deliveries / wall_clock_s

    index = getattr(medium, "_index", None)
    if index is not None:
        rebuilds = getattr(index, "rebuilds", None)
        if rebuilds is not None:
            profile["spatial.snapshot_rebuilds"] = float(rebuilds)
        array_rebuilds = getattr(index, "array_rebuilds", None)
        if array_rebuilds is not None:
            profile["spatial.array_rebuilds"] = float(array_rebuilds)
        # Region-sharding counters — only when the medium is sharded, so
        # unsharded profiles keep their pre-sharding key set.
        if getattr(index, "partition", None) is not None:
            profile["spatial.shards"] = float(index.partition.shards)
            profile["spatial.epoch_rolls"] = float(index.epoch_rolls)
            profile["spatial.shard_snapshot_builds"] = float(index.snapshot_builds)
            profile["spatial.shard_migrations"] = float(index.shard_migrations)
            profile["spatial.boundary_queries"] = float(index.boundary_queries)
            profile["spatial.boundary_candidates"] = float(index.boundary_candidates)
            profile["spatial.boundary_merged"] = float(index.boundary_merged)
            profile["spatial.parallel_barriers"] = float(
                index.executor.parallel_barriers
            )

    mobility = getattr(medium, "mobility", None)
    legs = _count_mobility_legs(mobility)
    if legs is not None:
        profile["mobility.legs_generated"] = float(legs)

    # Churn lifecycle counters — only when a manager exists, so zero-churn
    # profiles keep their pre-churn key set.
    if churn is not None:
        profile["wireless.orphaned_sends"] = float(getattr(medium, "orphaned_sends", 0))
        profile["churn.arrivals"] = float(churn.arrivals)
        profile["churn.departures"] = float(churn.departures)
        profile["churn.abrupt_kills"] = float(churn.abrupt_kills)
        profile["churn.redundant_events"] = float(churn.redundant_events)
    # Fault and recovery counters — same discipline: absent for zero-fault
    # profiles.
    if faults is not None:
        profile.update(faults.metrics())
    return profile


def _count_mobility_legs(mobility) -> Optional[int]:
    """Total trajectory legs/segments generated by the mobility model(s)."""
    if mobility is None:
        return None
    # CompositeMobility: sum over children.
    children = getattr(mobility, "_model_list", None)
    if children is not None:
        total = 0
        for child in children:
            legs = _count_mobility_legs(child)
            if legs:
                total += legs
        return total
    for attr in ("_segments", "_legs"):
        table = getattr(mobility, attr, None)
        if isinstance(table, dict):
            return sum(len(entries) for entries in table.values())
    return 0


# ------------------------------------------------------------- aggregation
def merge_profiles(profiles: List[Mapping[str, float]]) -> Dict[str, float]:
    """Sum profiles across trials (rates are recomputed from the sums)."""
    merged: Dict[str, float] = {}
    for profile in profiles:
        for key, value in profile.items():
            if key.endswith("_per_sec"):
                continue  # recomputed below
            merged[key] = merged.get(key, 0.0) + float(value)
    wall = merged.get("wall_clock_s", 0.0)
    if wall > 0:
        rates = {
            "engine.events": "engine.events_per_sec",
            "wireless.frames_transmitted": "wireless.frames_per_sec",
            "wireless.deliveries": "wireless.deliveries_per_sec",
        }
        for source, rate in rates.items():
            if source in merged:
                merged[rate] = merged[source] / wall
    return merged


def format_profile(profile: Mapping[str, float], title: str = "profile") -> str:
    """Human-readable per-subsystem table of one profile mapping."""
    subsystems: Dict[str, List[str]] = {}
    for key in sorted(profile):
        prefix, _, metric = key.partition(".")
        if not metric:
            prefix, metric = "run", key
        value = profile[key]
        if metric.endswith("_s") or key in _TIME_KEYS:
            rendered = f"{value:.4f}s"
        elif metric.endswith("_per_sec"):
            rendered = f"{value:,.0f}/s"
        else:
            rendered = f"{value:,.0f}"
        subsystems.setdefault(prefix, []).append(f"    {metric:<28} {rendered:>14}")
    lines = [f"-- {title} --"]
    for prefix in sorted(subsystems):
        lines.append(f"  [{prefix}]")
        lines.extend(subsystems[prefix])
    return "\n".join(lines)
