"""Poisson session churn with pluggable session-length distributions.

Each churnable node lives through an alternating renewal process: an online
*session* followed by an offline gap, repeated over the run horizon.  Gaps
are exponential (memoryless re-arrivals — the classic Poisson assumption);
session lengths come from a pluggable distribution, because measured
peer-to-peer session lengths are famously *not* exponential:

* ``exponential`` — the memoryless reference;
* ``lognormal``   — the shape measured for most file-sharing deployments
  (many short sessions, a long tail of stayers);
* ``pareto``      — the heavy-tailed extreme (infinite variance below
  ``alpha=2``), the stress case for protocols that assume stable peers.

A departure ends the session *gracefully* (drain + deregister) with
probability ``1 - abrupt_fraction`` and as an *abrupt kill* (instant detach
mid-transfer) otherwise.  All draws come from the node's own named stream,
so one node's trajectory never perturbs another's.
"""

from __future__ import annotations

import math
from typing import List, Sequence

from repro.churn.base import (
    ARRIVE,
    DEPART,
    KILL,
    ChurnEvent,
    ChurnModel,
    ChurnPlan,
    StreamFn,
    positive_number,
    probability,
    register_churn,
)

SESSION_DISTRIBUTIONS = ("exponential", "lognormal", "pareto")


def _distribution(value):
    if value not in SESSION_DISTRIBUTIONS:
        return f"must be one of {SESSION_DISTRIBUTIONS}"
    return None


def _alpha(value):
    if not isinstance(value, (int, float)) or not value > 1.0:
        return "must be > 1 (the Pareto mean is infinite otherwise)"
    return None


@register_churn("poisson")
class PoissonChurn(ChurnModel):
    """Alternating online/offline renewal churn per node."""

    PARAMS = {
        "mean_session": positive_number,
        "mean_offline": positive_number,
        "session_distribution": _distribution,
        "abrupt_fraction": probability,
        "lognormal_sigma": positive_number,
        "pareto_alpha": _alpha,
    }

    def plan(self, node_ids: Sequence[str], horizon: float, stream: StreamFn) -> ChurnPlan:
        mean_session = float(self.param("mean_session", 120.0))
        mean_offline = float(self.param("mean_offline", 60.0))
        distribution = self.param("session_distribution", "exponential")
        abrupt = float(self.param("abrupt_fraction", 0.3))
        sigma = float(self.param("lognormal_sigma", 1.0))
        alpha = float(self.param("pareto_alpha", 2.5))
        draw_session = self._session_sampler(distribution, mean_session, sigma, alpha)

        events: List[ChurnEvent] = []
        for node_id in node_ids:
            rng = stream(node_id)
            time = draw_session(rng)
            while time < horizon:
                action = KILL if rng.random() < abrupt else DEPART
                events.append(ChurnEvent(time=time, node_id=node_id, action=action))
                time += rng.expovariate(1.0 / mean_offline)
                if time >= horizon:
                    break
                events.append(ChurnEvent(time=time, node_id=node_id, action=ARRIVE))
                time += draw_session(rng)
        # Stable sort: same-time events keep node order, so the manager
        # schedules an identical sequence every run.
        events.sort(key=lambda event: event.time)
        return ChurnPlan(events=tuple(events))

    @staticmethod
    def _session_sampler(distribution: str, mean: float, sigma: float, alpha: float):
        """A ``rng -> session length`` sampler with the requested mean."""
        if distribution == "exponential":
            rate = 1.0 / mean
            return lambda rng: rng.expovariate(rate)
        if distribution == "lognormal":
            # E[lognormal(mu, sigma)] = exp(mu + sigma^2/2) == mean.
            mu = math.log(mean) - sigma * sigma / 2.0
            return lambda rng: rng.lognormvariate(mu, sigma)
        # Pareto with scale xm chosen so E = xm * alpha / (alpha - 1) == mean.
        scale = mean * (alpha - 1.0) / alpha
        return lambda rng: scale * rng.paretovariate(alpha)
