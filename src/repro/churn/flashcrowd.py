"""Flash-crowd workload: burst arrivals into an initially empty swarm.

The paper's millions-of-users stress proxy: after a disaster (or a viral
release) almost everyone shows up at once.  Every churnable node starts the
run *offline*; arrivals come in ``bursts`` waves starting at ``first_burst``
and spaced ``spacing`` seconds apart, nodes dealt round-robin to waves with
a small per-node jitter so a wave's attach/start events do not all land on
one timestamp.  With ``mean_session`` set, arrived nodes also leave after
an exponential session (gracefully or abruptly, per ``abrupt_fraction``)
and stay gone — a spike-then-decay population.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.churn.base import (
    ARRIVE,
    DEPART,
    KILL,
    ChurnEvent,
    ChurnModel,
    ChurnPlan,
    StreamFn,
    non_negative_number,
    positive_int,
    positive_number,
    probability,
    register_churn,
)


@register_churn("flashcrowd")
class FlashCrowd(ChurnModel):
    """Everyone offline at t=0; arrivals in deterministic jittered bursts."""

    PARAMS = {
        "first_burst": non_negative_number,
        "bursts": positive_int,
        "spacing": positive_number,
        "jitter": non_negative_number,
        "mean_session": positive_number,
        "abrupt_fraction": probability,
    }

    def plan(self, node_ids: Sequence[str], horizon: float, stream: StreamFn) -> ChurnPlan:
        first_burst = float(self.param("first_burst", 20.0))
        bursts = int(self.param("bursts", 3))
        spacing = float(self.param("spacing", 60.0))
        jitter = float(self.param("jitter", 5.0))
        mean_session = self.param("mean_session", None)
        abrupt = float(self.param("abrupt_fraction", 0.3))

        events: List[ChurnEvent] = []
        for position, node_id in enumerate(node_ids):
            rng = stream(node_id)
            wave = position % bursts
            time = first_burst + wave * spacing
            if jitter:
                time += rng.uniform(0.0, jitter)
            if time >= horizon:
                continue
            events.append(ChurnEvent(time=time, node_id=node_id, action=ARRIVE))
            if mean_session is not None:
                leave = time + rng.expovariate(1.0 / float(mean_session))
                if leave < horizon:
                    action = KILL if rng.random() < abrupt else DEPART
                    events.append(ChurnEvent(time=leave, node_id=node_id, action=action))
        events.sort(key=lambda event: event.time)
        return ChurnPlan(initially_offline=tuple(node_ids), events=tuple(events))
