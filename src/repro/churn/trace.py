"""Trace-driven churn: replay a scripted population trajectory.

``TraceChurn`` takes the schedule literally — ``events`` is a list of
``[time, node_id, action]`` triples and ``initially_offline`` the nodes
absent at t=0 — and draws nothing from any RNG stream.  It exists for two
reasons: replaying measured availability traces against the simulator, and
writing exact-timing regression tests (kill *this* node at *this* instant,
mid-ARQ-retry) without fishing for a seed that happens to produce the
interleaving under a stochastic model.

Node ids are validated against the churnable set at ``plan()`` time — a
trace referencing a node the topology does not have raises ``ValueError``
with the offending id and the known names, instead of being silently
dropped (or surfacing later as a mid-run ``KeyError``).  Events at or
beyond the horizon are still filtered out: truncating a long measured
trace to a shorter run is legitimate; naming a ghost node is a typo.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.churn.base import (
    ACTIONS,
    ChurnEvent,
    ChurnModel,
    ChurnPlan,
    StreamFn,
    register_churn,
)


def _event_list(value):
    if not isinstance(value, (list, tuple)):
        return "must be a list of [time, node_id, action] triples"
    for entry in value:
        if not isinstance(entry, (list, tuple)) or len(entry) != 3:
            return "must be a list of [time, node_id, action] triples"
        time, node_id, action = entry
        if not isinstance(time, (int, float)) or time < 0:
            return f"has a negative or non-numeric time in {list(entry)!r}"
        if not isinstance(node_id, str) or not node_id:
            return f"has a non-string node id in {list(entry)!r}"
        if action not in ACTIONS:
            return f"has action {action!r}; expected one of {ACTIONS}"
    return None


def _node_list(value):
    if not isinstance(value, (list, tuple)) or not all(
        isinstance(node_id, str) and node_id for node_id in value
    ):
        return "must be a list of node-id strings"
    return None


@register_churn("trace")
class TraceChurn(ChurnModel):
    """Replay an explicit, pre-scripted churn schedule."""

    PARAMS = {
        "events": _event_list,
        "initially_offline": _node_list,
    }

    def plan(self, node_ids: Sequence[str], horizon: float, stream: StreamFn) -> ChurnPlan:
        known = set(node_ids)
        offline = []
        for node_id in self.param("initially_offline", ()):
            if node_id not in known:
                raise ValueError(
                    f"trace churn: initially_offline names unknown node {node_id!r}; "
                    f"churnable nodes are {sorted(known)}"
                )
            offline.append(node_id)
        events: List[ChurnEvent] = []
        for time, node_id, action in self.param("events", ()):
            if node_id not in known:
                raise ValueError(
                    f"trace churn: event [{time}, {node_id!r}, {action!r}] names an "
                    f"unknown node; churnable nodes are {sorted(known)}"
                )
            if action not in ACTIONS:
                raise ValueError(
                    f"trace churn: event [{time}, {node_id!r}, {action!r}] has an "
                    f"unknown action; expected one of {ACTIONS}"
                )
            if time >= horizon:
                continue
            events.append(ChurnEvent(time=float(time), node_id=node_id, action=action))
        events.sort(key=lambda event: event.time)
        return ChurnPlan(initially_offline=tuple(offline), events=tuple(events))
