"""Deterministic churn: population dynamics as a first-class scenario axis.

See :mod:`repro.churn.base` for the model contract and registry,
:mod:`repro.churn.manager` for the lifecycle manager the scenario builders
wire into ``world()``.  Importing this package registers the built-in
models: ``none``, ``poisson``, ``flashcrowd``, ``trace``.
"""

from repro.churn.base import (
    ACTIONS,
    ARRIVE,
    DEPART,
    KILL,
    ChurnEvent,
    ChurnModel,
    ChurnPlan,
    available_churn_models,
    build_churn_model,
    churn_model_class,
    register_churn,
    validate_churn,
)
from repro.churn.flashcrowd import FlashCrowd
from repro.churn.manager import (
    DEFAULT_DRAIN_DELAY,
    ChurnManager,
    build_churn_manager,
    churnable_node_ids,
)
from repro.churn.poisson import PoissonChurn
from repro.churn.trace import TraceChurn

__all__ = [
    "ACTIONS",
    "ARRIVE",
    "DEPART",
    "KILL",
    "ChurnEvent",
    "ChurnModel",
    "ChurnPlan",
    "ChurnManager",
    "DEFAULT_DRAIN_DELAY",
    "FlashCrowd",
    "PoissonChurn",
    "TraceChurn",
    "available_churn_models",
    "build_churn_manager",
    "build_churn_model",
    "churn_model_class",
    "churnable_node_ids",
    "register_churn",
    "validate_churn",
]
