"""The deterministic churn-model contract and registry.

A churn model describes *when nodes are present*: which nodes start the run
offline and the full arrival/departure schedule over the run horizon.  The
whole schedule is planned up front — :meth:`ChurnModel.plan` is a pure
function of the churnable node ids, the horizon and the per-node named RNG
streams (``churn.<node_id>``), so the same seed always produces the same
population trajectory, serial or parallel, scalar or array backend.

Three departure semantics exist (:class:`ChurnEvent` actions):

* ``arrive``   — the node attaches its radio and starts its application;
* ``depart``   — *graceful* departure: the application stops (no new work),
  in-flight transmissions drain for a short window, then the radio detaches;
* ``kill``     — *abrupt* departure: the radio detaches instantly, mid
  transfer — the fault-injection path that exercises ARQ pruning, PIT
  expiry and the liveness guards on fire-and-forget events.

Models register under short names via :func:`register_churn`, mirroring the
topology/protocol/propagation registries; ``ExperimentConfig.churn`` selects
one by name and ``ExperimentConfig.churn_params`` parameterizes it.  The
``none`` model is special-cased by the scenario builders: no manager, no
events, no RNG stream creation — byte-identical to a build without the
churn subsystem.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Type

#: ChurnEvent actions.
ARRIVE = "arrive"
DEPART = "depart"
KILL = "kill"

ACTIONS = (ARRIVE, DEPART, KILL)

#: ``stream(node_id)`` -> the node's deterministic churn RNG.
StreamFn = Callable[[str], object]


@dataclass(frozen=True)
class ChurnEvent:
    """One scheduled population change."""

    time: float
    node_id: str
    action: str  # one of ACTIONS

    def __post_init__(self):
        if self.action not in ACTIONS:
            raise ValueError(f"unknown churn action {self.action!r}; expected one of {ACTIONS}")
        if not (isinstance(self.time, (int, float)) and self.time >= 0):
            raise ValueError(f"churn event time must be non-negative (got {self.time!r})")


@dataclass(frozen=True)
class ChurnPlan:
    """A full population trajectory: who starts offline, and every change.

    ``events`` is sorted by time (stable — generation order breaks ties), so
    the lifecycle manager schedules them in one deterministic pass.
    """

    initially_offline: Tuple[str, ...] = ()
    events: Tuple[ChurnEvent, ...] = ()

    @property
    def empty(self) -> bool:
        return not self.initially_offline and not self.events


class ChurnModel:
    """Base class: a deterministic population-dynamics model.

    Subclasses read their parameters from ``params`` in ``__init__`` and
    implement :meth:`plan`.  ``validate_params`` rejects unknown keys and
    inconsistent values at configuration time, before any simulator exists —
    the same contract the propagation registry follows.
    """

    name: str = ""

    #: Parameter name -> validator returning an error string or None.
    PARAMS: Mapping[str, Callable[[object], Optional[str]]] = {}

    def __init__(self, params: Optional[Mapping[str, object]] = None):
        self.params: Dict[str, object] = dict(params or {})
        self.validate_params(self.params)

    @classmethod
    def validate_params(cls, params: Mapping[str, object]) -> None:
        """Raise ``ValueError`` on unknown parameters or inconsistent values."""
        for key, value in params.items():
            validator = cls.PARAMS.get(key)
            if validator is None:
                raise ValueError(
                    f"churn model {cls.name!r} has no parameter {key!r}; "
                    f"available: {sorted(cls.PARAMS)}"
                )
            error = validator(value)
            if error:
                raise ValueError(f"churn parameter {key!r} {error} (got {value!r})")

    def param(self, key: str, default):
        return self.params.get(key, default)

    # ----------------------------------------------------------------- planning
    def plan(self, node_ids: Sequence[str], horizon: float, stream: StreamFn) -> ChurnPlan:
        """The full population trajectory for ``node_ids`` over ``[0, horizon]``.

        ``stream(node_id)`` returns that node's named deterministic RNG
        (``churn.<node_id>``); models must draw exclusively from these
        streams so the plan never perturbs any other stream's sequence.
        """
        raise NotImplementedError


# ---------------------------------------------------------- shared validators
def positive_number(value) -> Optional[str]:
    if not isinstance(value, (int, float)) or not value > 0:
        return "must be a positive number"
    return None


def non_negative_number(value) -> Optional[str]:
    if not isinstance(value, (int, float)) or not value >= 0:
        return "must be a non-negative number"
    return None


def probability(value) -> Optional[str]:
    if not isinstance(value, (int, float)) or not 0.0 <= value <= 1.0:
        return "must be a probability in [0, 1]"
    return None


def positive_int(value) -> Optional[str]:
    if not isinstance(value, int) or isinstance(value, bool) or value < 1:
        return "must be a positive integer"
    return None


# ================================================================== registry
_CHURN: Dict[str, Type[ChurnModel]] = {}


def register_churn(name: str):
    """Class decorator: make a :class:`ChurnModel` available under ``name``."""

    def decorator(cls: Type[ChurnModel]) -> Type[ChurnModel]:
        if name in _CHURN:
            raise ValueError(f"churn model {name!r} is already registered")
        cls.name = name
        _CHURN[name] = cls
        return cls

    return decorator


def available_churn_models() -> List[str]:
    """Names of all registered churn models."""
    return sorted(_CHURN)


def churn_model_class(name: str) -> Type[ChurnModel]:
    """Resolve a registered churn model class by name."""
    try:
        return _CHURN[name]
    except KeyError:
        raise ValueError(
            f"unknown churn model {name!r}; available: {available_churn_models()}"
        ) from None


def validate_churn(name: str, params: Mapping[str, object]) -> None:
    """Raise ``ValueError`` on an unknown model or inconsistent parameters."""
    churn_model_class(name).validate_params(params)


def build_churn_model(name: str, params: Optional[Mapping[str, object]] = None) -> ChurnModel:
    """Instantiate the churn model registered under ``name``."""
    return churn_model_class(name)(params)


@register_churn("none")
class NoChurn(ChurnModel):
    """The fixed-population null model: nobody arrives, nobody leaves.

    Registered for registry completeness (``repro-experiments list
    --registries``); the scenario builders special-case ``churn="none"``
    and never instantiate a manager for it, so a zero-churn run is
    byte-identical to one built before the churn subsystem existed.
    """

    def plan(self, node_ids: Sequence[str], horizon: float, stream: StreamFn) -> ChurnPlan:
        return ChurnPlan()
