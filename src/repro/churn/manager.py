"""The churn lifecycle manager: a model's plan, applied through the simulator.

The scenario builders construct *every* node up front exactly as a
fixed-population run would; the manager then toggles presence.  Each node
registers a radio plus optional ``start``/``stop``/``kill`` callbacks, and
the manager walks the model's :class:`~repro.churn.base.ChurnPlan` through a
three-state machine:

* ``ONLINE``   — radio attached, application running;
* ``DRAINING`` — graceful departure in progress: the application has
  stopped (no new work), in-flight transmissions get ``drain_delay``
  seconds to land, then the radio detaches;
* ``OFFLINE``  — radio detached; fire-and-forget events referencing the
  node hit the liveness guards and no-op.

An *abrupt kill* skips the drain entirely: ``kill`` (falling back to
``stop``) then instant detach, mid-transfer — the fault-injection path.
Redundant events (a depart for an already-offline node, say, from a
hand-written trace) are counted and ignored rather than raised, so trace
replays never crash a run half-way.

Zero churn never reaches this module: ``build_churn_manager`` returns
``None`` for ``churn="none"`` and the builders keep the entire subsystem
out of the event stream, preserving byte-identity with pre-churn runs.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.churn.base import (
    ARRIVE,
    DEPART,
    KILL,
    ChurnEvent,
    ChurnPlan,
    build_churn_model,
    validate_churn,
)

ONLINE = "online"
DRAINING = "draining"
OFFLINE = "offline"

#: Default graceful-departure drain window (seconds).
DEFAULT_DRAIN_DELAY = 0.25


class _Registration:
    """One churnable node's lifecycle hooks."""

    __slots__ = ("radio", "start", "stop", "kill", "state")

    def __init__(self, radio, start, stop, kill):
        self.radio = radio
        self.start = start
        self.stop = stop
        self.kill = kill
        self.state = ONLINE


class ChurnManager:
    """Applies a deterministic churn plan to registered node lifecycles."""

    def __init__(
        self,
        sim,
        medium,
        model,
        node_ids: List[str],
        horizon: float,
        drain_delay: float = DEFAULT_DRAIN_DELAY,
    ):
        self.sim = sim
        self.medium = medium
        self.model = model
        self.node_ids = list(node_ids)
        self.horizon = float(horizon)
        self.drain_delay = float(drain_delay)
        self._registrations: Dict[str, _Registration] = {}
        self._plan: Optional[ChurnPlan] = None
        self._activated = False
        # Counters surfaced through metrics()/profiling.
        self.arrivals = 0
        self.departures = 0
        self.abrupt_kills = 0
        self.redundant_events = 0

    # ------------------------------------------------------------ registration
    def register(
        self,
        node_id: str,
        radio,
        start: Optional[Callable[[], None]] = None,
        stop: Optional[Callable[[], None]] = None,
        kill: Optional[Callable[[], None]] = None,
    ) -> None:
        """Register a churnable node's radio and lifecycle callbacks.

        ``start`` runs on arrival (after the radio attaches); ``stop`` on
        graceful departure (before the drain window); ``kill`` on abrupt
        departure (falling back to ``stop`` when omitted).  Radio-only nodes
        (pure forwarders) register with no callbacks at all.
        """
        if node_id not in self.node_ids:
            raise ValueError(f"node {node_id!r} is not in the churnable set")
        if node_id in self._registrations:
            raise ValueError(f"node {node_id!r} is already registered for churn")
        self._registrations[node_id] = _Registration(radio, start, stop, kill)

    # ----------------------------------------------------------------- queries
    def plan(self) -> ChurnPlan:
        """The model's full plan (computed once, cached)."""
        if self._plan is None:
            stream = lambda node_id: self.sim.rng(f"churn.{node_id}")
            self._plan = self.model.plan(self.node_ids, self.horizon, stream)
        return self._plan

    def online(self, node_id: str) -> bool:
        """Whether ``node_id`` is currently present (unregistered → True)."""
        registration = self._registrations.get(node_id)
        return registration is None or registration.state == ONLINE

    def metrics(self) -> Dict[str, float]:
        """Churn counters for RunResult extras / profiling."""
        return {
            "churn.arrivals": self.arrivals,
            "churn.departures": self.departures,
            "churn.abrupt_kills": self.abrupt_kills,
            "churn.orphaned_sends": getattr(self.medium, "orphaned_sends", 0),
        }

    # -------------------------------------------------------------- activation
    def activate(self) -> None:
        """Apply the plan: detach initially-offline nodes, schedule the rest.

        Called once from ``Scenario.start()`` *before* node applications
        start, so initially-offline nodes never attach, never arm timers
        and never draw from their protocol RNG streams until they arrive.
        Idempotent — a second call is a no-op.
        """
        if self._activated:
            return
        self._activated = True
        plan = self.plan()
        for node_id in plan.initially_offline:
            registration = self._registrations.get(node_id)
            if registration is None or registration.state == OFFLINE:
                continue
            registration.state = OFFLINE
            self.medium.detach(node_id)
        now = self.sim.now
        for event in plan.events:
            self.sim.schedule_call(max(0.0, event.time - now), self._apply, event)

    # ---------------------------------------------------------- state machine
    def _apply(self, event: ChurnEvent) -> None:
        registration = self._registrations.get(event.node_id)
        if registration is None:
            self.redundant_events += 1
            return
        if event.action == ARRIVE:
            self._arrive(event.node_id, registration)
        elif event.action == DEPART:
            self._depart(event.node_id, registration)
        elif event.action == KILL:
            self._kill(event.node_id, registration)

    def _arrive(self, node_id: str, registration: _Registration) -> None:
        if registration.state != OFFLINE:
            self.redundant_events += 1
            return
        registration.state = ONLINE
        self.medium.attach(registration.radio)
        if registration.start is not None:
            registration.start()
        self.arrivals += 1

    def _depart(self, node_id: str, registration: _Registration) -> None:
        if registration.state != ONLINE:
            self.redundant_events += 1
            return
        registration.state = DRAINING
        if registration.stop is not None:
            registration.stop()
        self.departures += 1
        self.sim.schedule_call(self.drain_delay, self._finish_drain, node_id)

    def _kill(self, node_id: str, registration: _Registration) -> None:
        if registration.state == OFFLINE:
            self.redundant_events += 1
            return
        was_online = registration.state == ONLINE
        registration.state = OFFLINE
        if was_online:
            callback = registration.kill or registration.stop
            if callback is not None:
                callback()
        self.medium.detach(node_id)
        self.abrupt_kills += 1

    def _finish_drain(self, node_id: str) -> None:
        registration = self._registrations.get(node_id)
        if registration is None or registration.state != DRAINING:
            # The drain was superseded (e.g. a kill landed mid-drain).
            return
        registration.state = OFFLINE
        self.medium.detach(node_id)


def churnable_node_ids(names: Dict[str, List[str]]) -> List[str]:
    """The deterministic churnable set: every node except the producer/seed.

    ``names["downloaders"][0]`` is the content producer (DAPES) or swarm
    seed (IP baselines); removing it would make every download unsatisfiable
    rather than exercising churn, so it is protected.
    """
    protected = set(names["downloaders"][:1])
    ordered = (
        names.get("downloaders", [])
        + names.get("stationary", [])
        + names.get("pure", [])
        + names.get("intermediate", [])
    )
    return [node_id for node_id in ordered if node_id not in protected]


def build_churn_manager(config, sim, medium, names: Dict[str, List[str]]):
    """Build the lifecycle manager for ``config``, or ``None`` for zero churn.

    The ``none`` model short-circuits here — no manager object, no RNG
    streams, no scheduled events — so a zero-churn run stays byte-identical
    to one built before the churn subsystem existed.  ``drain_delay`` is a
    manager knob, not a model parameter, and is popped from
    ``config.churn_params`` before model construction.
    """
    name = getattr(config, "churn", "none")
    if name == "none":
        return None
    params = dict(getattr(config, "churn_params", None) or {})
    drain_delay = params.pop("drain_delay", DEFAULT_DRAIN_DELAY)
    if not isinstance(drain_delay, (int, float)) or drain_delay < 0:
        raise ValueError(
            f"churn parameter 'drain_delay' must be a non-negative number (got {drain_delay!r})"
        )
    validate_churn(name, params)
    model = build_churn_model(name, params)
    return ChurnManager(
        sim,
        medium,
        model,
        churnable_node_ids(names),
        horizon=config.max_duration,
        drain_delay=float(drain_delay),
    )
