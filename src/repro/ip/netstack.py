"""Per-node IP stack: forwarding, link broadcast and routing integration.

The stack owns the node's radio.  Unicast packets are forwarded hop by hop
along the routes computed by the attached MANET routing protocol (DSDV for
Bithoc, DSR for Ekta); link-layer broadcasts are used by the routing
protocols themselves and by Bithoc's HELLO flooding.

Link breakage is detected the way 802.11 detects it in practice — a missing
link-layer acknowledgement: before forwarding to a next hop the stack checks
whether that hop is still within range, and reports a delivery failure to the
routing protocol when it is not.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.simulation import Simulator
from repro.wireless.frames import Frame
from repro.wireless.medium import WirelessMedium
from repro.wireless.radio import Radio
from repro.ip.packet import IpPacket

PacketHandler = Callable[[IpPacket], None]
BroadcastHandler = Callable[[str, object, str], None]


class IpNode:
    """One node's IP networking stack."""

    def __init__(
        self,
        sim: Simulator,
        medium: WirelessMedium,
        node_id: str,
        app_protocol: str = "",
        wifi_range: Optional[float] = None,
    ):
        self.sim = sim
        self.medium = medium
        self.node_id = node_id
        self.app_protocol = app_protocol
        self.radio = Radio(sim, medium, node_id, wifi_range=wifi_range)
        self.radio.on_receive = self._on_frame
        self.routing = None
        self._protocol_handlers: Dict[str, PacketHandler] = {}
        self._broadcast_handlers: Dict[str, BroadcastHandler] = {}
        self.packets_forwarded = 0
        self.packets_delivered = 0
        self.packets_dropped_no_route = 0
        self.packets_dropped_ttl = 0
        self.link_failures = 0

    # ------------------------------------------------------------- wiring
    def attach_routing(self, routing) -> None:
        """Install the MANET routing protocol (DSDV, DSR, ...)."""
        self.routing = routing
        routing.attach(self)

    def register_protocol(self, protocol: str, handler: PacketHandler) -> None:
        """Register a handler for unicast packets of ``protocol`` addressed to us."""
        self._protocol_handlers[protocol] = handler

    def register_broadcast(self, kind: str, handler: BroadcastHandler) -> None:
        """Register a handler for link-broadcast messages of ``kind``."""
        self._broadcast_handlers[kind] = handler

    # ------------------------------------------------------------- sending
    def send(self, packet: IpPacket) -> bool:
        """Send (or forward) a unicast packet towards its destination.

        Returns ``False`` when no route exists or the next hop is unreachable.
        """
        if packet.dst == self.node_id:
            self._deliver(packet)
            return True
        if packet.ttl <= 0:
            self.packets_dropped_ttl += 1
            return False
        # Source-routed protocols (DSR / Ekta) stamp the full route at the
        # origin so intermediate nodes never need route discoveries of their
        # own.
        if (
            packet.source_route is None
            and packet.src == self.node_id
            and self.routing is not None
            and hasattr(self.routing, "source_route_for")
        ):
            route = self.routing.source_route_for(packet.dst)
            if route is not None:
                packet.source_route = list(route)
        next_hop = self._next_hop(packet)
        if next_hop is None:
            self.packets_dropped_no_route += 1
            if self.routing is not None:
                self.routing.on_no_route(packet)
            return False
        if next_hop not in self.medium.neighbours_of(self.node_id):
            # Link-layer delivery failure (no ACK): tell the routing protocol.
            self.link_failures += 1
            if self.routing is not None:
                self.routing.on_delivery_failure(packet, next_hop)
            return False
        frame = Frame(
            sender=self.node_id,
            payload=packet,
            size_bytes=packet.wire_size,
            kind=packet.kind,
            protocol=packet.app_protocol or self.app_protocol,
            destination=next_hop,
        )
        self.radio.send(frame)
        return True

    def broadcast(self, payload, size_bytes: int, kind: str) -> None:
        """Link-layer broadcast (routing updates, HELLO flooding)."""
        frame = Frame(
            sender=self.node_id,
            payload=payload,
            size_bytes=size_bytes,
            kind=kind,
            protocol=self.app_protocol,
        )
        self.radio.send(frame)

    def _next_hop(self, packet: IpPacket) -> Optional[str]:
        if packet.source_route:
            # DSR-style source routing: the next hop is the hop after us.
            try:
                index = packet.source_route.index(self.node_id)
            except ValueError:
                return None
            if index + 1 < len(packet.source_route):
                return packet.source_route[index + 1]
            return packet.dst if packet.dst != self.node_id else None
        if self.routing is None:
            return None
        return self.routing.next_hop(packet.dst)

    # ------------------------------------------------------------ receiving
    def _on_frame(self, frame: Frame) -> None:
        payload = frame.payload
        if isinstance(payload, IpPacket):
            if payload.dst == self.node_id:
                self._deliver(payload)
            elif payload.ttl > 1:
                self.packets_forwarded += 1
                self.send(payload.forwarded_copy())
            else:
                self.packets_dropped_ttl += 1
            return
        handler = self._broadcast_handlers.get(frame.kind)
        if handler is not None:
            handler(frame.sender, payload, frame.kind)

    def _deliver(self, packet: IpPacket) -> None:
        self.packets_delivered += 1
        handler = self._protocol_handlers.get(packet.protocol)
        if handler is not None:
            handler(packet)

    # ------------------------------------------------------------ utilities
    def neighbours(self) -> list[str]:
        return self.medium.neighbours_of(self.node_id)

    @property
    def state_size_bytes(self) -> int:
        """Routing-table footprint (baseline memory accounting)."""
        return self.routing.state_size_bytes if self.routing is not None else 0
