"""IP-like network-layer packets."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

_packet_ids = itertools.count(1)

IP_HEADER_BYTES = 20
UDP_HEADER_BYTES = 8
TCP_HEADER_BYTES = 20


@dataclass
class IpPacket:
    """A unicast network-layer packet.

    ``source_route`` is used by DSR: the full hop list travels in the packet
    header and contributes to its wire size.
    """

    src: str
    dst: str
    protocol: str
    payload: Any
    payload_size: int
    ttl: int = 16
    kind: str = "ip-data"
    app_protocol: str = ""
    source_route: Optional[list[str]] = None
    packet_id: int = field(default_factory=lambda: next(_packet_ids))

    def __post_init__(self) -> None:
        if self.payload_size < 0:
            raise ValueError("payload_size must be non-negative")
        if self.ttl <= 0:
            raise ValueError("ttl must be positive")

    @property
    def wire_size(self) -> int:
        """Total on-the-wire size including IP header and any source route."""
        route_overhead = 4 * len(self.source_route) if self.source_route else 0
        return IP_HEADER_BYTES + route_overhead + self.payload_size

    def forwarded_copy(self) -> "IpPacket":
        """Copy with the TTL decremented, used at every forwarding hop."""
        return IpPacket(
            src=self.src,
            dst=self.dst,
            protocol=self.protocol,
            payload=self.payload,
            payload_size=self.payload_size,
            ttl=self.ttl - 1,
            kind=self.kind,
            app_protocol=self.app_protocol,
            source_route=self.source_route,
            packet_id=self.packet_id,
        )
