"""A TCP-like reliable message transport (used by Bithoc).

The goal is not to reimplement TCP, but to reproduce its *cost profile* over
multi-hop wireless paths, which is what drives the Bithoc results in the
paper: every application message is segmented, each segment must be
acknowledged end-to-end, losses and route breakage trigger timeouts and
retransmissions, and throughput collapses when the path keeps changing
(Holland & Vaidya, cited in the paper).

The transport delivers whole application messages, in order, per
(source, destination) pair.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from repro.simulation import Simulator
from repro.ip.netstack import IpNode
from repro.ip.packet import IpPacket, TCP_HEADER_BYTES

MessageHandler = Callable[[str, object], None]

_message_ids = itertools.count(1)

MAX_SEGMENT_SIZE = 1400


@dataclass
class _Segment:
    message_id: int
    index: int
    total: int
    payload: object
    payload_size: int


@dataclass
class _PendingMessage:
    """Sender-side state for one in-flight message."""

    dst: str
    segments: list
    acked: set = field(default_factory=set)
    next_to_send: int = 0
    retries: int = 0
    timer: Optional[object] = None
    on_delivered: Optional[Callable[[], None]] = None
    on_failed: Optional[Callable[[], None]] = None


class ReliableTransport:
    """Reliable, ordered message delivery with ACKs and retransmissions."""

    PROTOCOL = "tcp"

    def __init__(
        self,
        node: IpNode,
        sim: Simulator,
        window: int = 4,
        initial_timeout: float = 1.0,
        max_timeout: float = 8.0,
        max_retries: int = 6,
        app_protocol: str = "",
    ):
        self.node = node
        self.sim = sim
        self.window = window
        self.initial_timeout = initial_timeout
        self.max_timeout = max_timeout
        self.max_retries = max_retries
        self.app_protocol = app_protocol or node.app_protocol
        self._handlers: Dict[int, MessageHandler] = {}
        self._pending: Dict[int, _PendingMessage] = {}
        self._reassembly: Dict[Tuple[str, int], Dict[int, object]] = {}
        self.segments_sent = 0
        self.acks_sent = 0
        self.retransmissions = 0
        self.messages_delivered = 0
        self.messages_failed = 0
        node.register_protocol(self.PROTOCOL, self._on_packet)

    # ---------------------------------------------------------------- sending
    def bind(self, port: int, handler: MessageHandler) -> None:
        """Register the receive handler for messages sent to ``port``."""
        self._handlers[port] = handler

    def send_message(
        self,
        dst: str,
        port: int,
        payload: object,
        payload_size: int,
        on_delivered: Optional[Callable[[], None]] = None,
        on_failed: Optional[Callable[[], None]] = None,
    ) -> int:
        """Reliably send one application message; returns its message id."""
        message_id = next(_message_ids)
        segment_count = max(1, -(-payload_size // MAX_SEGMENT_SIZE))
        segments = []
        remaining = payload_size
        for index in range(segment_count):
            size = min(MAX_SEGMENT_SIZE, remaining)
            remaining -= size
            segments.append(
                _Segment(
                    message_id=message_id,
                    index=index,
                    total=segment_count,
                    payload=(port, payload if index == segment_count - 1 else None),
                    payload_size=size,
                )
            )
        pending = _PendingMessage(
            dst=dst, segments=segments, on_delivered=on_delivered, on_failed=on_failed
        )
        self._pending[message_id] = pending
        self._send_window(message_id)
        return message_id

    def _send_window(self, message_id: int) -> None:
        pending = self._pending.get(message_id)
        if pending is None:
            return
        in_flight = 0
        for segment in pending.segments:
            if segment.index in pending.acked:
                continue
            if in_flight >= self.window:
                break
            self._send_segment(pending.dst, segment)
            in_flight += 1
        timeout = min(self.initial_timeout * (2 ** pending.retries), self.max_timeout)
        pending.timer = self.sim.schedule(timeout, self._on_timeout, message_id)

    def _send_segment(self, dst: str, segment: _Segment) -> None:
        self.segments_sent += 1
        packet = IpPacket(
            src=self.node.node_id,
            dst=dst,
            protocol=self.PROTOCOL,
            payload=("data", segment),
            payload_size=segment.payload_size + TCP_HEADER_BYTES,
            kind="tcp-data",
            app_protocol=self.app_protocol,
        )
        self.node.send(packet)

    def _on_timeout(self, message_id: int) -> None:
        pending = self._pending.get(message_id)
        if pending is None:
            return
        if len(pending.acked) == len(pending.segments):
            return
        pending.retries += 1
        if pending.retries > self.max_retries:
            self._pending.pop(message_id, None)
            self.messages_failed += 1
            if pending.on_failed is not None:
                pending.on_failed()
            return
        self.retransmissions += 1
        self._send_window(message_id)

    # -------------------------------------------------------------- receiving
    def _on_packet(self, packet: IpPacket) -> None:
        tag, body = packet.payload
        if tag == "data":
            self._on_data_segment(packet.src, body)
        elif tag == "ack":
            self._on_ack(body)

    def _on_data_segment(self, src: str, segment: _Segment) -> None:
        # Acknowledge every received segment (cost of reliability).
        self.acks_sent += 1
        ack_packet = IpPacket(
            src=self.node.node_id,
            dst=src,
            protocol=self.PROTOCOL,
            payload=("ack", (segment.message_id, segment.index)),
            payload_size=TCP_HEADER_BYTES,
            kind="tcp-ack",
            app_protocol=self.app_protocol,
        )
        self.node.send(ack_packet)

        key = (src, segment.message_id)
        received = self._reassembly.setdefault(key, {})
        received[segment.index] = segment
        if len(received) == segment.total:
            del self._reassembly[key]
            self.messages_delivered += 1
            final = received[segment.total - 1]
            port, payload = final.payload
            handler = self._handlers.get(port)
            if handler is not None:
                handler(src, payload)

    def _on_ack(self, ack) -> None:
        message_id, index = ack
        pending = self._pending.get(message_id)
        if pending is None:
            return
        pending.acked.add(index)
        if len(pending.acked) == len(pending.segments):
            if pending.timer is not None:
                self.sim.cancel(pending.timer)
            self._pending.pop(message_id, None)
            if pending.on_delivered is not None:
                pending.on_delivered()
