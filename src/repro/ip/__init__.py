"""IP-based substrate used by the baseline protocols (Bithoc, Ekta).

The paper compares DAPES against IP-based MANET file-sharing solutions; this
package provides the pieces those baselines need on top of the same shared
wireless medium DAPES uses:

* :mod:`repro.ip.packet` — IP-like packets with TTL and protocol labels;
* :mod:`repro.ip.netstack` — per-node stack: routing-table driven unicast
  forwarding, link-layer broadcast, delivery-failure feedback to the routing
  protocol;
* :mod:`repro.ip.udp` — a datagram service with port demultiplexing;
* :mod:`repro.ip.tcp` — a TCP-like reliable byte/message channel with
  acknowledgements, retransmissions and a fixed window (sufficient to model
  the transport overhead of Bithoc over multi-hop wireless paths).

Node identifiers double as addresses: the paper points out that IP address
auto-configuration in off-the-grid settings is an unsolved problem in itself;
granting the baselines free, collision-free addressing is a conservative
simplification in their favour (documented in DESIGN.md).
"""

from repro.ip.netstack import IpNode
from repro.ip.packet import IpPacket
from repro.ip.tcp import ReliableTransport
from repro.ip.udp import UdpService

__all__ = ["IpNode", "IpPacket", "ReliableTransport", "UdpService"]
