"""A minimal UDP-like datagram service (used by Ekta)."""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from repro.ip.netstack import IpNode
from repro.ip.packet import IpPacket, UDP_HEADER_BYTES

DatagramHandler = Callable[[str, object, int], None]


class UdpService:
    """Datagram send/receive with port demultiplexing."""

    PROTOCOL = "udp"

    def __init__(self, node: IpNode, app_protocol: str = ""):
        self.node = node
        self.app_protocol = app_protocol or node.app_protocol
        self._handlers: Dict[int, DatagramHandler] = {}
        self.datagrams_sent = 0
        self.datagrams_received = 0
        node.register_protocol(self.PROTOCOL, self._on_packet)

    def bind(self, port: int, handler: DatagramHandler) -> None:
        """Register a handler for datagrams arriving on ``port``."""
        self._handlers[port] = handler

    def send(self, dst: str, port: int, payload: object, payload_size: int, kind: str = "udp-data") -> bool:
        """Send a datagram; returns ``False`` if no route was available."""
        packet = IpPacket(
            src=self.node.node_id,
            dst=dst,
            protocol=self.PROTOCOL,
            payload=(port, payload),
            payload_size=payload_size + UDP_HEADER_BYTES,
            kind=kind,
            app_protocol=self.app_protocol,
        )
        self.datagrams_sent += 1
        return self.node.send(packet)

    def _on_packet(self, packet: IpPacket) -> None:
        port, payload = packet.payload
        self.datagrams_received += 1
        handler = self._handlers.get(port)
        if handler is not None:
            handler(packet.src, payload, port)
