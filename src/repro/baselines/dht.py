"""The Pastry-style key space and provider registry used by Ekta.

Ekta integrates a Pastry-like DHT with DSR at the network layer: every node
owns a position in a circular key space derived from its identifier, and an
object key is stored at (its *root*) the node whose identifier is
numerically closest to the key.

This reproduction gives every swarm member knowledge of the other members'
identifiers, so overlay routing to the root is a single overlay hop (carried,
like every Ekta message, over a multi-hop DSR route).  Real Pastry needs
O(log N) overlay hops; collapsing them *under-counts* Ekta's overhead, i.e.
the simplification is conservative in favour of the baseline (documented in
DESIGN.md).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

KEY_BITS = 64


def dht_id(identifier: str) -> int:
    """Position of ``identifier`` (node id or object name) in the key space."""
    digest = hashlib.sha256(identifier.encode("utf-8")).digest()
    return int.from_bytes(digest[: KEY_BITS // 8], "big")


def circular_distance(a: int, b: int) -> int:
    """Distance between two points on the circular key space."""
    size = 1 << KEY_BITS
    diff = abs(a - b) % size
    return min(diff, size - diff)


@dataclass
class DhtKeySpace:
    """Membership view used to find the root node of a key."""

    members: List[str] = field(default_factory=list)

    def add_member(self, node_id: str) -> None:
        if node_id not in self.members:
            self.members.append(node_id)

    def root_of(self, key: str) -> Optional[str]:
        """The member whose id is numerically closest to ``key``."""
        if not self.members:
            return None
        key_position = dht_id(key)
        return min(self.members, key=lambda member: (circular_distance(dht_id(member), key_position), member))

    def is_root(self, node_id: str, key: str) -> bool:
        return self.root_of(key) == node_id


class DhtRegistry:
    """Provider records stored at a key's root node."""

    def __init__(self):
        self._providers: Dict[str, Set[str]] = {}

    def publish(self, key: str, provider: str) -> None:
        """Record that ``provider`` holds the object ``key``."""
        self._providers.setdefault(key, set()).add(provider)

    def providers(self, key: str) -> List[str]:
        """Known providers of ``key`` (sorted for determinism)."""
        return sorted(self._providers.get(key, set()))

    def remove_provider(self, key: str, provider: str) -> None:
        providers = self._providers.get(key)
        if providers is not None:
            providers.discard(provider)
            if not providers:
                del self._providers[key]

    def __len__(self) -> int:
        return len(self._providers)

    @property
    def state_size_bytes(self) -> int:
        return sum(16 + 16 * len(providers) for providers in self._providers.values())
