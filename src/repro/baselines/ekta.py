"""Ekta: a DHT substrate for MANET integrated with DSR (Pucha et al.).

Structure reproduced from the paper's description (Section VI-B):

* every peer owns a position in a Pastry-style key space;
* peers **publish** the objects (files of the collection) they hold to the
  key's root node, and **look up** providers through DHT messages — both
  kinds of messages are unicast over **DSR** routes and therefore pay the
  cost of on-demand route discovery and maintenance;
* once providers are known, pieces are fetched with **UDP** request/response
  exchanges (one request per piece, per receiver), retransmitted by the
  application on timeout.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.ip.netstack import IpNode
from repro.ip.udp import UdpService
from repro.manet.dsr import DsrRouting
from repro.simulation import PeriodicTimer, Simulator
from repro.wireless.medium import WirelessMedium
from repro.baselines.base_peer import IpSwarmPeer, SwarmDescriptor
from repro.baselines.dht import DhtKeySpace, DhtRegistry

DHT_PORT = 4000
DATA_PORT = 4001
DHT_MESSAGE_BYTES = 48
PIECE_REQUEST_BYTES = 32


@dataclass
class _LookupState:
    file_index: int
    sent_at: float


class EktaPeer(IpSwarmPeer):
    """One Ekta peer: DHT publish/lookup over DSR + UDP piece transfers."""

    def __init__(
        self,
        sim: Simulator,
        node_id: str,
        descriptor: SwarmDescriptor,
        ip_node: IpNode,
        routing: DsrRouting,
        udp: UdpService,
        keyspace: DhtKeySpace,
        seed_all: bool = False,
        request_timeout: float = 2.0,
        lookup_timeout: float = 4.0,
        publish_interval: float = 5.0,
        pipeline_size: int = 4,
    ):
        super().__init__(sim, node_id, descriptor, seed_all=seed_all)
        self.ip_node = ip_node
        self.routing = routing
        self.udp = udp
        self.keyspace = keyspace
        self.registry = DhtRegistry()
        self.request_timeout = request_timeout
        self.lookup_timeout = lookup_timeout
        self.publish_interval = publish_interval
        self.pipeline_size = pipeline_size
        self._rng = sim.rng(f"ekta.{node_id}")
        self._providers: Dict[int, List[str]] = {}  # file index -> provider ids
        self._pending_lookups: Dict[int, _LookupState] = {}
        self._outstanding: Dict[int, Tuple[str, float]] = {}  # piece -> (provider, sent_at)
        self._published_files: set = set()
        self.dht_messages_sent = 0
        self._publish_timer = PeriodicTimer(sim, self._publish_held_files, period=publish_interval, jitter=1.0, rng=self._rng)
        self._engine_timer = PeriodicTimer(sim, self._engine_tick, period=0.5, jitter=0.1, rng=self._rng)

        udp.bind(DHT_PORT, self._on_dht_message)
        udp.bind(DATA_PORT, self._on_data_message)

    # ---------------------------------------------------------------- control
    def start(self) -> None:
        self.routing.start()
        if self.start_time is None:
            self.start_time = self.sim.now
        self._publish_timer.start(initial_delay=self._rng.uniform(0.0, 2.0))
        self._engine_timer.start(initial_delay=self._rng.uniform(0.5, 1.5))
        self.load.timers_armed += 2

    def stop(self) -> None:
        self._publish_timer.stop()
        self._engine_timer.stop()

    # ------------------------------------------------------------------- keys
    def _file_key(self, file_index: int) -> str:
        return f"{self.descriptor.collection_id}/file/{file_index}"

    def _held_files(self) -> List[int]:
        """Files this peer can serve (at least half of the pieces held).

        Publishing partially-held files mirrors BitTorrent-style behaviour
        (peers serve while they download); requiring at least a quarter of
        the file keeps the provider lists useful, and requesters that hit a
        provider without the piece get an immediate "miss" answer.
        """
        held = []
        per_file = self.descriptor.pieces_per_file
        for file_index in range(self.descriptor.files):
            start = file_index * per_file
            end = min(start + per_file, self.descriptor.total_pieces)
            if start >= self.descriptor.total_pieces:
                break
            have = sum(1 for i in range(start, end) if self.bitmap.get(i))
            if have * 4 >= (end - start):
                held.append(file_index)
        return held

    # ---------------------------------------------------------------- publish
    def _publish_held_files(self) -> None:
        self.load.activation()
        for file_index in self._held_files():
            key = self._file_key(file_index)
            root = self.keyspace.root_of(key)
            if root is None:
                continue
            if root == self.node_id:
                self.registry.publish(key, self.node_id)
                self._published_files.add(file_index)
                continue
            self.dht_messages_sent += 1
            self.load.messages_sent += 1
            self.udp.send(
                root,
                DHT_PORT,
                {"type": "publish", "key": key, "provider": self.node_id},
                DHT_MESSAGE_BYTES,
                kind="dht-publish",
            )
            self._published_files.add(file_index)

    # ----------------------------------------------------------------- lookup
    def _lookup_file(self, file_index: int) -> None:
        key = self._file_key(file_index)
        root = self.keyspace.root_of(key)
        if root is None:
            return
        if root == self.node_id:
            providers = self.registry.providers(key)
            if providers:
                self._providers[file_index] = providers
            return
        self._pending_lookups[file_index] = _LookupState(file_index=file_index, sent_at=self.sim.now)
        self.dht_messages_sent += 1
        self.load.messages_sent += 1
        self.udp.send(
            root,
            DHT_PORT,
            {"type": "lookup", "key": key, "file": file_index, "from": self.node_id},
            DHT_MESSAGE_BYTES,
            kind="dht-lookup",
        )

    def _on_dht_message(self, src: str, payload, port: int) -> None:
        self.load.activation()
        self.load.messages_received += 1
        if not isinstance(payload, dict):
            return
        message_type = payload.get("type")
        if message_type == "publish":
            self.registry.publish(payload["key"], payload["provider"])
        elif message_type == "lookup":
            providers = self.registry.providers(payload["key"])
            self.dht_messages_sent += 1
            self.load.messages_sent += 1
            self.udp.send(
                payload.get("from", src),
                DHT_PORT,
                {"type": "providers", "file": payload["file"], "providers": providers},
                DHT_MESSAGE_BYTES + 16 * max(len(providers), 1),
                kind="dht-response",
            )
        elif message_type == "providers":
            file_index = payload["file"]
            self._pending_lookups.pop(file_index, None)
            providers = [p for p in payload.get("providers", []) if p != self.node_id]
            if providers:
                self._providers[file_index] = providers

    # ----------------------------------------------------------------- engine
    def _engine_tick(self) -> None:
        self.load.activation()
        if self.is_complete or not self.interested:
            return
        now = self.sim.now
        for piece in list(self._outstanding):
            provider, sent_at = self._outstanding[piece]
            if now - sent_at > self.request_timeout:
                del self._outstanding[piece]
                self.load.retransmissions += 1
                # A provider that keeps timing out may be unreachable: drop it
                # so the next attempt tries someone else (or a fresh lookup).
                file_index = self.descriptor.file_of_piece(piece)
                providers = self._providers.get(file_index, [])
                if provider in providers and len(providers) > 1:
                    providers.remove(provider)

        for file_index in list(self._pending_lookups):
            if now - self._pending_lookups[file_index].sent_at > self.lookup_timeout:
                del self._pending_lookups[file_index]

        missing = [p for p in self.bitmap.missing() if p not in self._outstanding]
        refreshed: set = set()
        for piece in missing:
            if len(self._outstanding) >= self.pipeline_size:
                break
            file_index = self.descriptor.file_of_piece(piece)
            providers = self._providers.get(file_index)
            if not providers:
                if file_index not in self._pending_lookups:
                    self._lookup_file(file_index)
                continue
            # Periodically refresh the provider list so late joiners are found.
            if file_index not in refreshed and file_index not in self._pending_lookups:
                if self._rng.random() < 0.2:
                    self._lookup_file(file_index)
                refreshed.add(file_index)
            provider = self._pick_provider(providers)
            self._request_piece(piece, provider)

    def _pick_provider(self, providers: List[str]) -> str:
        """Pick a provider, preferring those reachable over short routes.

        Pastry's proximity-aware routing gives real Ekta a similar bias; here
        it simply avoids repeatedly requesting pieces over long, fragile
        multi-hop paths when a one-hop provider exists.
        """
        if len(providers) == 1:
            return providers[0]
        direct = set(self.ip_node.neighbours())
        nearby = [provider for provider in providers if provider in direct]
        if nearby:
            return self._rng.choice(nearby)

        def route_length(provider: str) -> int:
            route = self.routing.route_to(provider)
            return len(route) if route is not None else 99

        best = min(route_length(provider) for provider in providers)
        candidates = [provider for provider in providers if route_length(provider) == best]
        return self._rng.choice(candidates)

    def _request_piece(self, piece: int, provider: str) -> None:
        self._outstanding[piece] = (provider, self.sim.now)
        self.load.messages_sent += 1
        self.udp.send(
            provider,
            DATA_PORT,
            {"type": "request", "piece": piece, "from": self.node_id},
            PIECE_REQUEST_BYTES,
            kind="ekta-request",
        )

    def _on_data_message(self, src: str, payload, port: int) -> None:
        self.load.activation()
        self.load.messages_received += 1
        if not isinstance(payload, dict):
            return
        if payload.get("type") == "request":
            piece = payload["piece"]
            requester = payload.get("from", src)
            if self.has_piece(piece):
                self.load.interests_answered += 1
                self.load.messages_sent += 1
                self.udp.send(
                    requester,
                    DATA_PORT,
                    {"type": "piece", "piece": piece, "from": self.node_id},
                    self.descriptor.piece_size,
                    kind="ekta-piece",
                )
            else:
                # Tell the requester we cannot help so it retries elsewhere
                # instead of waiting for a timeout.
                self.load.messages_sent += 1
                self.udp.send(
                    requester,
                    DATA_PORT,
                    {"type": "miss", "piece": piece, "from": self.node_id},
                    PIECE_REQUEST_BYTES,
                    kind="ekta-miss",
                )
        elif payload.get("type") == "piece":
            piece = payload["piece"]
            sender = payload.get("from", src)
            self._outstanding.pop(piece, None)
            self.add_piece(piece)
            # Whoever served the piece evidently holds (part of) that file:
            # remember them as a provider.
            file_index = self.descriptor.file_of_piece(piece)
            providers = self._providers.setdefault(file_index, [])
            if sender not in providers:
                providers.append(sender)
        elif payload.get("type") == "miss":
            piece = payload["piece"]
            sender = payload.get("from", src)
            self._outstanding.pop(piece, None)
            file_index = self.descriptor.file_of_piece(piece)
            providers = self._providers.get(file_index, [])
            if sender in providers and len(providers) > 1:
                providers.remove(sender)

    # ------------------------------------------------------------- accounting
    @property
    def state_size_bytes(self) -> int:
        total = self.ip_node.state_size_bytes + self.bitmap.wire_size
        total += self.registry.state_size_bytes
        total += 16 * sum(len(providers) for providers in self._providers.values())
        return total


def build_ekta_peer(
    sim: Simulator,
    medium: WirelessMedium,
    node_id: str,
    descriptor: SwarmDescriptor,
    keyspace: DhtKeySpace,
    seed_all: bool = False,
    forwarder_only: bool = False,
    wifi_range: Optional[float] = None,
) -> Optional[EktaPeer]:
    """Assemble an Ekta node (or, with ``forwarder_only``, a DSR-only forwarder)."""
    ip_node = IpNode(sim, medium, node_id, app_protocol="ekta", wifi_range=wifi_range)
    routing = DsrRouting()
    ip_node.attach_routing(routing)
    if forwarder_only:
        routing.start()
        return None
    udp = UdpService(ip_node, app_protocol="ekta")
    keyspace.add_member(node_id)
    return EktaPeer(
        sim=sim,
        node_id=node_id,
        descriptor=descriptor,
        ip_node=ip_node,
        routing=routing,
        udp=udp,
        keyspace=keyspace,
        seed_all=seed_all,
    )
