"""IP-based baseline file-sharing protocols (Section VI-B of the paper).

* :mod:`repro.baselines.bithoc` — Bithoc: BitTorrent adapted to MANET.
  Peers discover each other and the data they have through periodic scoped
  flooding of HELLO messages, classify others into "close" (≤ 2 hops) and
  "far" neighbours, follow a Rarest-Piece-First policy towards close
  neighbours, and fetch data over a TCP-like reliable transport routed by
  DSDV.
* :mod:`repro.baselines.ekta` — Ekta: a DHT substrate integrated with DSR.
  Peers publish the objects they hold into the DHT, look providers up
  through DHT messages routed over DSR source routes, and fetch data with
  UDP request/response exchanges.
* :mod:`repro.baselines.dht` — the Pastry-style key space and provider
  registry Ekta uses.

The baselines are reimplementations "in shape": they reproduce the
structural cost sources the paper attributes to IP-based solutions
(proactive vs reactive routing overhead, per-receiver unicast transfers,
transport retransmissions under route breakage) without claiming
line-for-line fidelity to the original codebases, which are not available.
"""

from repro.baselines.base_peer import IpSwarmPeer, SwarmDescriptor
from repro.baselines.bithoc import BithocPeer, build_bithoc_peer
from repro.baselines.dht import DhtKeySpace, DhtRegistry
from repro.baselines.ekta import EktaPeer, build_ekta_peer

__all__ = [
    "BithocPeer",
    "DhtKeySpace",
    "DhtRegistry",
    "EktaPeer",
    "IpSwarmPeer",
    "SwarmDescriptor",
    "build_bithoc_peer",
    "build_ekta_peer",
]
