"""Bithoc: BitTorrent for wireless ad-hoc networks (Krifa et al., Sbai et al.).

Structure reproduced from the paper's description (Section VI-B):

* peers perform **periodic scoped flooding of HELLO messages** (TTL = 2) to
  discover others and the pieces they have;
* discovered peers are split into **close** (at most two hops away) and
  **far** (further) neighbours;
* peers follow a **Rarest-Piece-First** policy towards close neighbours and
  fetch pieces unavailable nearby from far neighbours;
* **DSDV** provides routes and a **TCP-like reliable transport** carries the
  piece transfers, so routing updates, HELLO floods, TCP acknowledgements
  and retransmissions all count towards Bithoc's overhead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.bitmap import Bitmap
from repro.ip.netstack import IpNode
from repro.ip.tcp import ReliableTransport
from repro.manet.dsdv import DsdvRouting
from repro.simulation import PeriodicTimer, Simulator
from repro.wireless.medium import WirelessMedium
from repro.baselines.base_peer import IpSwarmPeer, SwarmDescriptor

HELLO_BASE_BYTES = 24
PIECE_REQUEST_BYTES = 32
PIECE_PORT = 6881
CLOSE_HOP_LIMIT = 2


@dataclass
class _NeighborInfo:
    bitmap: Bitmap
    hops: int
    last_heard: float


class BithocPeer(IpSwarmPeer):
    """One Bithoc peer: HELLO flooding + RPF + TCP piece transfers over DSDV."""

    def __init__(
        self,
        sim: Simulator,
        node_id: str,
        descriptor: SwarmDescriptor,
        ip_node: IpNode,
        routing: DsdvRouting,
        transport: ReliableTransport,
        seed_all: bool = False,
        hello_interval: float = 3.0,
        neighbor_timeout: float = 10.0,
        request_timeout: float = 4.0,
        pipeline_size: int = 4,
    ):
        super().__init__(sim, node_id, descriptor, seed_all=seed_all)
        self.ip_node = ip_node
        self.routing = routing
        self.transport = transport
        self.hello_interval = hello_interval
        self.neighbor_timeout = neighbor_timeout
        self.request_timeout = request_timeout
        self.pipeline_size = pipeline_size
        self._rng = sim.rng(f"bithoc.{node_id}")
        self._neighbors: Dict[str, _NeighborInfo] = {}
        self._outstanding: Dict[int, Tuple[str, float]] = {}  # piece -> (peer, sent_at)
        self._seen_hellos: set = set()
        self._hello_serial = 0
        self._hello_timer = PeriodicTimer(sim, self._send_hello, period=hello_interval, jitter=0.3, rng=self._rng)
        self._engine_timer = PeriodicTimer(sim, self._engine_tick, period=0.5, jitter=0.1, rng=self._rng)

        ip_node.register_broadcast("bithoc-hello", self._on_hello)
        transport.bind(PIECE_PORT, self._on_transport_message)

    # ---------------------------------------------------------------- control
    def start(self) -> None:
        """Start routing, HELLO flooding and the download engine."""
        self.routing.start()
        if self.start_time is None:
            self.start_time = self.sim.now
        self._hello_timer.start(initial_delay=self._rng.uniform(0.0, 1.0))
        self._engine_timer.start(initial_delay=self._rng.uniform(0.5, 1.5))
        self.load.timers_armed += 2

    def stop(self) -> None:
        self._hello_timer.stop()
        self._engine_timer.stop()
        self.routing.stop()

    # ----------------------------------------------------------------- HELLOs
    def _send_hello(self) -> None:
        self.load.activation()
        self._hello_serial += 1
        payload = {
            "origin": self.node_id,
            "serial": self._hello_serial,
            "bitmap": self.bitmap.to_bytes().hex(),
            "size": self.bitmap.size,
            "ttl": CLOSE_HOP_LIMIT,
            "hops": 0,
        }
        size = HELLO_BASE_BYTES + self.bitmap.wire_size
        self.load.messages_sent += 1
        self.ip_node.broadcast(payload, size, kind="bithoc-hello")

    def _on_hello(self, sender: str, payload, kind: str) -> None:
        self.load.activation()
        self.load.messages_received += 1
        origin = payload["origin"]
        if origin == self.node_id:
            return
        key = (origin, payload["serial"])
        hops = payload["hops"] + 1
        bitmap = Bitmap.from_bytes(payload["size"], bytes.fromhex(payload["bitmap"]))
        info = self._neighbors.get(origin)
        if info is None or hops <= info.hops or self.sim.now - info.last_heard > self.neighbor_timeout:
            self._neighbors[origin] = _NeighborInfo(bitmap=bitmap, hops=hops, last_heard=self.sim.now)
        else:
            info.bitmap = bitmap
            info.last_heard = self.sim.now
        if key in self._seen_hellos:
            return
        self._seen_hellos.add(key)
        # Scoped flooding: re-broadcast (with jitter) while the TTL allows it.
        if payload["ttl"] > 1:
            forwarded = dict(payload)
            forwarded["ttl"] = payload["ttl"] - 1
            forwarded["hops"] = hops
            size = HELLO_BASE_BYTES + bitmap.wire_size

            def _reflood() -> None:
                self.load.messages_sent += 1
                self.ip_node.broadcast(forwarded, size, kind="bithoc-hello")

            self.sim.schedule(self._rng.uniform(0.002, 0.030), _reflood)

    # ----------------------------------------------------------------- engine
    def close_neighbors(self) -> Dict[str, Bitmap]:
        """Bitmaps of neighbours at most two hops away, seen recently."""
        cutoff = self.sim.now - self.neighbor_timeout
        return {
            peer: info.bitmap
            for peer, info in self._neighbors.items()
            if info.hops <= CLOSE_HOP_LIMIT and info.last_heard >= cutoff
        }

    def far_peers(self) -> List[str]:
        """Swarm members that are not currently close neighbours."""
        close = set(self.close_neighbors())
        return [member for member in self.swarm_members if member not in close]

    def _engine_tick(self) -> None:
        self.load.activation()
        if self.is_complete or not self.interested:
            return
        now = self.sim.now
        # Expire stale outstanding requests so the pieces can be re-requested.
        for piece in list(self._outstanding):
            peer, sent_at = self._outstanding[piece]
            if now - sent_at > self.request_timeout:
                del self._outstanding[piece]
                self.load.retransmissions += 1
        close = self.close_neighbors()
        while len(self._outstanding) < self.pipeline_size:
            piece = self.rarest_missing(close, exclude=self._outstanding.keys())
            if piece is not None:
                holders = self.holders_of(piece, close)
                target = self._rng.choice(holders)
                self._request_piece(piece, target)
                continue
            # Nothing useful nearby: try a far peer for a piece nobody close has.
            far = self.far_peers()
            remaining = [p for p in self.bitmap.missing() if p not in self._outstanding]
            if not far or not remaining:
                break
            piece = remaining[0]
            target = self._rng.choice(far)
            self._request_piece(piece, target)

    def _request_piece(self, piece: int, target: str) -> None:
        self._outstanding[piece] = (target, self.sim.now)
        self.load.messages_sent += 1
        self.transport.send_message(
            target,
            PIECE_PORT,
            {"type": "request", "piece": piece, "from": self.node_id},
            PIECE_REQUEST_BYTES,
            on_failed=lambda: self._outstanding.pop(piece, None),
        )

    # -------------------------------------------------------------- transport
    def _on_transport_message(self, src: str, payload) -> None:
        self.load.activation()
        self.load.messages_received += 1
        if not isinstance(payload, dict):
            return
        if payload.get("type") == "request":
            piece = payload["piece"]
            requester = payload.get("from", src)
            if self.has_piece(piece):
                self.load.interests_answered += 1
                self.transport.send_message(
                    requester,
                    PIECE_PORT,
                    {"type": "piece", "piece": piece, "from": self.node_id},
                    self.descriptor.piece_size,
                )
        elif payload.get("type") == "piece":
            piece = payload["piece"]
            self._outstanding.pop(piece, None)
            self.add_piece(piece)

    # ------------------------------------------------------------- accounting
    @property
    def state_size_bytes(self) -> int:
        """Protocol state footprint (routing table + neighbour bitmaps + bitmap)."""
        total = self.ip_node.state_size_bytes + self.bitmap.wire_size
        for info in self._neighbors.values():
            total += info.bitmap.wire_size + 24
        return total


def build_bithoc_peer(
    sim: Simulator,
    medium: WirelessMedium,
    node_id: str,
    descriptor: SwarmDescriptor,
    seed_all: bool = False,
    forwarder_only: bool = False,
    wifi_range: Optional[float] = None,
) -> Optional[BithocPeer]:
    """Assemble a Bithoc node.

    With ``forwarder_only=True`` only the IP stack and DSDV are installed —
    the node participates in routing and forwarding but not in the swarm
    (the paper's 20 forwarding nodes).  In that case ``None`` is returned in
    place of a peer, and the caller keeps the :class:`IpNode` reachable
    through the medium's radio registry.
    """
    ip_node = IpNode(sim, medium, node_id, app_protocol="bithoc", wifi_range=wifi_range)
    routing = DsdvRouting()
    ip_node.attach_routing(routing)
    if forwarder_only:
        routing.start()
        return None
    transport = ReliableTransport(ip_node, sim, app_protocol="bithoc")
    return BithocPeer(
        sim=sim,
        node_id=node_id,
        descriptor=descriptor,
        ip_node=ip_node,
        routing=routing,
        transport=transport,
        seed_all=seed_all,
    )
