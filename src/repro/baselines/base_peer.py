"""Shared scaffolding for the IP-based swarm peers (Bithoc, Ekta).

Both baselines assume BitTorrent-style out-of-band metadata (a torrent
file): the collection identifier, the number of pieces and the piece size
are known to every member of the swarm before the experiment starts, as is
the swarm membership itself (the paper's Bithoc/Ekta experiments likewise
pre-configure the downloading nodes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.core.bitmap import Bitmap
from repro.core.stats import NodeLoadStats
from repro.simulation import Simulator

CompletionCallback = Callable[["IpSwarmPeer", str, float], None]


@dataclass(frozen=True)
class SwarmDescriptor:
    """The out-of-band description of one shared collection (the "torrent")."""

    collection_id: str
    total_pieces: int
    piece_size: int
    files: int = 1

    def __post_init__(self) -> None:
        if self.total_pieces <= 0 or self.piece_size <= 0:
            raise ValueError("total_pieces and piece_size must be positive")
        if self.files <= 0:
            raise ValueError("files must be positive")

    @property
    def pieces_per_file(self) -> int:
        return max(1, -(-self.total_pieces // self.files))

    def file_of_piece(self, piece: int) -> int:
        """Index of the file a piece belongs to (Ekta publishes per file)."""
        if not 0 <= piece < self.total_pieces:
            raise IndexError(f"piece {piece} out of range")
        return piece // self.pieces_per_file


class IpSwarmPeer:
    """Base class for a baseline peer participating in one swarm."""

    def __init__(
        self,
        sim: Simulator,
        node_id: str,
        descriptor: SwarmDescriptor,
        seed_all: bool = False,
    ):
        self.sim = sim
        self.node_id = node_id
        self.descriptor = descriptor
        self.bitmap = Bitmap(descriptor.total_pieces)
        if seed_all:
            for index in range(descriptor.total_pieces):
                self.bitmap.set(index)
        self.is_seed = seed_all
        self.swarm_members: List[str] = []
        self.load = NodeLoadStats()
        self.start_time: Optional[float] = None
        self.completion_time: Optional[float] = None
        self._completion_callbacks: List[CompletionCallback] = []
        self.interested = not seed_all

    # ----------------------------------------------------------------- swarm
    def set_swarm(self, members: List[str]) -> None:
        """Install the list of swarm members (everyone sharing this collection)."""
        self.swarm_members = [member for member in members if member != self.node_id]

    def on_complete(self, callback: CompletionCallback) -> None:
        self._completion_callbacks.append(callback)

    # ---------------------------------------------------------------- pieces
    def has_piece(self, index: int) -> bool:
        return self.bitmap.get(index)

    def add_piece(self, index: int) -> bool:
        """Mark a piece as received; returns ``True`` if it was new."""
        if self.bitmap.get(index):
            return False
        self.bitmap.set(index)
        self.load.packets_downloaded += 1
        if self.bitmap.is_complete() and self.completion_time is None:
            self.completion_time = self.sim.now
            for callback in self._completion_callbacks:
                callback(self, self.descriptor.collection_id, self.sim.now)
        return True

    @property
    def is_complete(self) -> bool:
        return self.bitmap.is_complete()

    def progress(self) -> float:
        return self.bitmap.count() / self.descriptor.total_pieces

    def download_time(self) -> Optional[float]:
        if self.completion_time is None:
            return None
        return self.completion_time - (self.start_time or 0.0)

    # ------------------------------------------------------------- selection
    def rarest_missing(self, neighbor_bitmaps: Dict[str, Bitmap], exclude=()) -> Optional[int]:
        """Rarest missing piece that at least one of ``neighbor_bitmaps`` holds."""
        excluded = set(exclude)
        candidates = [
            index
            for index in self.bitmap.missing()
            if index not in excluded
            and any(bitmap.get(index) for bitmap in neighbor_bitmaps.values() if index < bitmap.size)
        ]
        if not candidates:
            return None
        bitmaps = list(neighbor_bitmaps.values())
        candidates.sort(key=lambda index: (-Bitmap.rarity(index, bitmaps), index))
        return candidates[0]

    def holders_of(self, index: int, neighbor_bitmaps: Dict[str, Bitmap]) -> List[str]:
        """Neighbours whose bitmap shows they hold ``index``."""
        return [
            peer
            for peer, bitmap in neighbor_bitmaps.items()
            if index < bitmap.size and bitmap.get(index)
        ]
