"""Reproduction of DAPES (ICDCS 2020).

DAPES is a data-centric peer-to-peer file-sharing protocol for off-the-grid
scenarios running on top of Named Data Networking (NDN).  This package
provides:

* ``repro.simulation`` — a deterministic discrete-event simulation engine.
* ``repro.mobility`` — node mobility models (random direction, random
  waypoint, scripted traces).
* ``repro.wireless`` — an IEEE 802.11b-like broadcast medium with range,
  loss and collision modelling.
* ``repro.crypto`` — simulated signatures, digests, Merkle trees and trust
  anchors.
* ``repro.ndn`` — an NDN forwarding stack (names, Interest/Data, CS, PIT,
  FIB, forwarder).
* ``repro.core`` — the DAPES protocol itself (namespace, metadata, bitmaps,
  discovery, RPF strategies, PEBA, multi-hop forwarding roles).
* ``repro.ip`` / ``repro.manet`` / ``repro.baselines`` — the IP-based
  comparison stack: DSDV, DSR, a TCP-like transport, a Pastry-style DHT and
  the Bithoc / Ekta baseline applications.
* ``repro.experiments`` — scenario builders and runners that regenerate every
  figure and table of the paper's evaluation.

Quickstart::

    from repro.experiments import ExperimentConfig, run_experiment, to_text

    config = ExperimentConfig.small()
    result = run_experiment("fig10", config, axes={"wifi_range": (60.0,)})
    print(to_text(result))

or, from the command line (also installed as ``repro-experiments``)::

    python -m repro.experiments run fig10 --preset small --workers 4
"""

from repro._version import __version__

__all__ = ["__version__"]
