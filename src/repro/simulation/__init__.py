"""Deterministic discrete-event simulation engine.

All protocol behaviour in this repository (DAPES, NDN forwarding, MANET
routing, the wireless medium) is expressed as events scheduled on a single
:class:`Simulator`.  The engine is deterministic for a given seed: random
decisions are drawn from named :class:`~repro.simulation.random_streams.RandomStreams`
so that adding a new consumer of randomness does not perturb existing ones.
"""

from repro.simulation.engine import EventHandle, Simulator, SimulationError
from repro.simulation.epochs import EpochClock
from repro.simulation.random_streams import RandomStreams
from repro.simulation.timers import PeriodicTimer, Timer

__all__ = [
    "EpochClock",
    "EventHandle",
    "PeriodicTimer",
    "RandomStreams",
    "SimulationError",
    "Simulator",
    "Timer",
]
