"""Timer helpers built on top of the simulation engine.

Protocol code uses these instead of scheduling raw events so that restart /
cancel semantics are uniform (e.g. DAPES discovery timers, PEBA slot timers,
suppression timers, TCP retransmission timers).
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.simulation.engine import EventHandle, Simulator


class Timer:
    """A single-shot, restartable timer.

    The callback is invoked once when the timer expires.  Calling
    :meth:`start` while the timer is running restarts it with the new delay.
    """

    def __init__(self, sim: Simulator, callback: Callable[..., Any]):
        self._sim = sim
        self._callback = callback
        self._handle: Optional[EventHandle] = None

    @property
    def running(self) -> bool:
        """Whether the timer is currently armed."""
        return self._handle is not None and self._handle.active

    @property
    def expiry(self) -> Optional[float]:
        """Absolute expiry time, or ``None`` if not running."""
        if self.running:
            return self._handle.time
        return None

    def start(self, delay: float, *args: Any, **kwargs: Any) -> None:
        """Arm (or re-arm) the timer to fire ``delay`` seconds from now."""
        self.cancel()
        self._handle = self._sim.schedule(delay, self._fire, args, kwargs)

    def cancel(self) -> None:
        """Disarm the timer if armed."""
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _fire(self, args: tuple, kwargs: dict) -> None:
        self._handle = None
        self._callback(*args, **kwargs)


class PeriodicTimer:
    """A timer that re-arms itself after every expiry.

    The period may be provided as a constant or as a zero-argument callable,
    which lets protocols adapt their period over time (e.g. DAPES discovery
    Interests are sent more frequently when neighbours have recently been
    encountered).
    """

    def __init__(
        self,
        sim: Simulator,
        callback: Callable[[], Any],
        period: float | Callable[[], float],
        jitter: float = 0.0,
        rng=None,
    ):
        self._sim = sim
        self._callback = callback
        self._period = period
        self._jitter = jitter
        self._rng = rng
        self._handle: Optional[EventHandle] = None
        self._stopped = True

    @property
    def running(self) -> bool:
        return not self._stopped

    def _next_delay(self) -> float:
        period = self._period() if callable(self._period) else self._period
        if self._jitter and self._rng is not None:
            period += self._rng.uniform(-self._jitter, self._jitter)
        return max(period, 0.0)

    def start(self, initial_delay: Optional[float] = None) -> None:
        """Start firing periodically; ``initial_delay`` defaults to one period."""
        self._stopped = False
        delay = self._next_delay() if initial_delay is None else initial_delay
        self._handle = self._sim.schedule(delay, self._fire)

    def stop(self) -> None:
        """Stop the periodic firing."""
        self._stopped = True
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _fire(self) -> None:
        if self._stopped:
            return
        self._callback()
        if not self._stopped:
            self._handle = self._sim.schedule(self._next_delay(), self._fire)
