"""Deterministic epoch arithmetic for region-sharded execution.

The sharded wireless medium advances in fixed-length *synchronization
epochs*: between two epoch boundaries every shard serves queries from its
own snapshot, and at each boundary the shards re-synchronize (membership is
reassigned, snapshots are rebuilt — possibly concurrently — and the
per-shard boundary queues are merged).  The epoch schedule must be a pure
function of simulated time so that serial and parallel execution, and
sharded and unsharded media, agree on *when* every barrier happens.

:class:`EpochClock` is that pure function plus a tiny amount of roll-over
bookkeeping.  It deliberately schedules **no events**: barriers are crossed
lazily, on the first query that lands in a new epoch, so a sharded run
processes exactly the same event count as an unsharded one (``RunResult``
byte-identity would otherwise be impossible).

Per-shard sequence allocation lives here too: when K shards step
concurrently inside one epoch, any artifact they emit (boundary-queue
entries, snapshot builds) is tagged with :meth:`EpochClock.sequence` — a
deterministic ``epoch * shards + shard`` key, totally ordered and
independent of thread scheduling — so merging at the barrier never depends
on which worker finished first.
"""

from __future__ import annotations

import math

__all__ = ["EpochClock"]


class EpochClock:
    """Fixed-length epoch schedule over simulated time.

    Parameters
    ----------
    length:
        Epoch duration in simulated seconds (must be positive and finite).
    """

    __slots__ = ("length", "epoch", "rolls")

    def __init__(self, length: float):
        if not (length > 0.0 and math.isfinite(length)):
            raise ValueError("epoch length must be positive and finite")
        self.length = length
        #: Index of the current epoch (-1 until the first advance).
        self.epoch = -1
        #: How many barriers have been crossed (monotonic, for profiling).
        self.rolls = 0

    def epoch_of(self, time: float) -> int:
        """The epoch index containing simulated ``time``."""
        return math.floor(time / self.length)

    def advance(self, time: float) -> bool:
        """Move the clock to ``time``; return ``True`` when a barrier was crossed.

        Idempotent within one epoch: only the first call in a new epoch
        reports a roll.  Time travelling backwards (which the medium never
        does, but property tests might) never un-rolls an epoch.
        """
        epoch = self.epoch_of(time)
        if epoch > self.epoch:
            self.epoch = epoch
            self.rolls += 1
            return True
        return False

    def force_roll(self) -> None:
        """Invalidate the current epoch so the next :meth:`advance` rolls.

        Used when an external mutation (teleport, unbounded-speed mobility)
        voids the drift guarantees an epoch relies on.
        """
        self.epoch = -1

    def sequence(self, shard: int, shards: int) -> int:
        """Deterministic merge key for ``shard``'s artifacts this epoch.

        Totally ordered across ``(epoch, shard)`` pairs and independent of
        worker scheduling, so barrier merges sort on it instead of on
        completion order.
        """
        if not 0 <= shard < shards:
            raise ValueError(f"shard {shard} out of range for {shards} shards")
        return self.epoch * shards + shard
