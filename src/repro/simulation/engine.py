"""Core discrete-event simulation engine.

The engine maintains a priority queue of timestamped events.  Each event is a
callback plus its arguments.  Events scheduled for the same timestamp execute
in the order they were scheduled (FIFO), which keeps runs deterministic.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.simulation.random_streams import RandomStreams


class SimulationError(RuntimeError):
    """Raised for invalid uses of the simulation engine."""


@dataclass(order=True)
class _QueueEntry:
    time: float
    sequence: int
    handle: "EventHandle" = field(compare=False)


class EventHandle:
    """Handle to a scheduled event, usable to cancel it.

    A handle becomes inactive once the event has fired or been cancelled.
    """

    __slots__ = ("callback", "args", "kwargs", "time", "cancelled", "fired")

    def __init__(self, time: float, callback: Callable[..., Any], args: tuple, kwargs: dict):
        self.time = time
        self.callback = callback
        self.args = args
        self.kwargs = kwargs
        self.cancelled = False
        self.fired = False

    @property
    def active(self) -> bool:
        """Whether the event is still pending (not cancelled, not fired)."""
        return not self.cancelled and not self.fired

    def cancel(self) -> None:
        """Cancel the event; a no-op if it already fired."""
        if not self.fired:
            self.cancelled = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "fired" if self.fired else ("cancelled" if self.cancelled else "pending")
        return f"<EventHandle t={self.time:.6f} {state} {getattr(self.callback, '__name__', self.callback)}>"


class Simulator:
    """Deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Base seed for all named random streams (see :class:`RandomStreams`).

    Example
    -------
    >>> sim = Simulator(seed=1)
    >>> fired = []
    >>> _ = sim.schedule(2.0, fired.append, "a")
    >>> _ = sim.schedule(1.0, fired.append, "b")
    >>> sim.run()
    >>> fired
    ['b', 'a']
    """

    def __init__(self, seed: int = 0):
        self._queue: list[_QueueEntry] = []
        self._sequence = itertools.count()
        self._now = 0.0
        self._running = False
        self._stopped = False
        self.events_processed = 0
        self.seed = seed
        self.streams = RandomStreams(seed)

    # ------------------------------------------------------------------ time
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # ------------------------------------------------------------ scheduling
    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any, **kwargs: Any) -> EventHandle:
        """Schedule ``callback(*args, **kwargs)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule an event in the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, *args, **kwargs)

    def schedule_at(self, time: float, callback: Callable[..., Any], *args: Any, **kwargs: Any) -> EventHandle:
        """Schedule ``callback`` at an absolute simulated time."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule an event at {time}, which is before now ({self._now})"
            )
        handle = EventHandle(time, callback, args, kwargs)
        entry = _QueueEntry(time=time, sequence=next(self._sequence), handle=handle)
        heapq.heappush(self._queue, entry)
        return handle

    def cancel(self, handle: Optional[EventHandle]) -> None:
        """Cancel a previously scheduled event (safe to pass ``None``)."""
        if handle is not None:
            handle.cancel()

    # --------------------------------------------------------------- running
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run events until the queue drains, ``until`` is reached, or ``max_events`` fire.

        ``until`` is inclusive: events scheduled exactly at ``until`` execute.
        """
        if self._running:
            raise SimulationError("simulator is already running")
        self._running = True
        self._stopped = False
        processed = 0
        try:
            while self._queue:
                if self._stopped:
                    break
                entry = self._queue[0]
                if until is not None and entry.time > until:
                    self._now = until
                    break
                heapq.heappop(self._queue)
                handle = entry.handle
                if handle.cancelled:
                    continue
                self._now = entry.time
                handle.fired = True
                handle.callback(*handle.args, **handle.kwargs)
                self.events_processed += 1
                processed += 1
                if max_events is not None and processed >= max_events:
                    break
            else:
                if until is not None and until > self._now:
                    self._now = until
        finally:
            self._running = False

    def stop(self) -> None:
        """Stop the run loop after the currently executing event returns."""
        self._stopped = True

    # ------------------------------------------------------------- utilities
    def rng(self, name: str):
        """Return the named deterministic random stream."""
        return self.streams.get(name)

    @property
    def pending_events(self) -> int:
        """Number of events still queued (including cancelled entries)."""
        return sum(1 for entry in self._queue if entry.handle.active)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Simulator t={self._now:.3f} pending={self.pending_events} processed={self.events_processed}>"
