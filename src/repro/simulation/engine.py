"""Core discrete-event simulation engine.

The engine maintains a priority queue of timestamped events.  Each event is a
callback plus its arguments.  Events scheduled for the same timestamp execute
in the order they were scheduled (FIFO), which keeps runs deterministic.

Two scheduling paths share one queue:

* :meth:`Simulator.schedule` / :meth:`Simulator.schedule_at` return an
  :class:`EventHandle` that can be cancelled — the queue holds
  ``(time, seq, handle)`` tuples.
* :meth:`Simulator.schedule_call` is the allocation-free fast path for
  fire-and-forget events (the bulk of a wireless simulation's queue): it
  pushes a plain ``(time, seq, callback, args)`` tuple, so no handle object,
  no kwargs dict and no cancellation bookkeeping exist for these events.

Both entry shapes compare at C speed — the unique sequence number decides
ties before the third element is ever looked at — so the two paths interleave
in exact FIFO-per-timestamp order.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Optional

from repro.simulation.random_streams import RandomStreams


class SimulationError(RuntimeError):
    """Raised for invalid uses of the simulation engine."""


class EventHandle:
    """Handle to a scheduled event, usable to cancel it.

    A handle becomes inactive once the event has fired or been cancelled.
    """

    __slots__ = ("callback", "args", "kwargs", "time", "cancelled", "fired", "_sim")

    def __init__(self, time: float, callback: Callable[..., Any], args: tuple, kwargs: dict,
                 sim: "Optional[Simulator]" = None):
        self.time = time
        self.callback = callback
        self.args = args
        self.kwargs = kwargs
        self.cancelled = False
        self.fired = False
        self._sim = sim

    @property
    def active(self) -> bool:
        """Whether the event is still pending (not cancelled, not fired)."""
        return not self.cancelled and not self.fired

    def cancel(self) -> None:
        """Cancel the event; a no-op if it already fired."""
        if not self.fired and not self.cancelled:
            self.cancelled = True
            if self._sim is not None:
                self._sim._active_events -= 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "fired" if self.fired else ("cancelled" if self.cancelled else "pending")
        return f"<EventHandle t={self.time:.6f} {state} {getattr(self.callback, '__name__', self.callback)}>"


class Simulator:
    """Deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Base seed for all named random streams (see :class:`RandomStreams`).

    Example
    -------
    >>> sim = Simulator(seed=1)
    >>> fired = []
    >>> _ = sim.schedule(2.0, fired.append, "a")
    >>> _ = sim.schedule(1.0, fired.append, "b")
    >>> sim.run()
    >>> fired
    ['b', 'a']
    """

    def __init__(self, seed: int = 0):
        # The queue holds plain (time, sequence, handle) tuples — or
        # (time, sequence, callback, args) for the schedule_call fast path:
        # tuple comparison runs at C speed and the unique sequence number
        # means the third element is never compared.
        self._queue: list[tuple] = []
        self._sequence = itertools.count()
        self._now = 0.0
        self._running = False
        self._stopped = False
        self._active_events = 0
        self.events_processed = 0
        self.seed = seed
        self.streams = RandomStreams(seed)

    # ------------------------------------------------------------------ time
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # ------------------------------------------------------------ scheduling
    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any, **kwargs: Any) -> EventHandle:
        """Schedule ``callback(*args, **kwargs)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule an event in the past (delay={delay})")
        # Inlined schedule_at: this is the hottest call in the simulator.
        time = self._now + delay
        handle = EventHandle(time, callback, args, kwargs, sim=self)
        heapq.heappush(self._queue, (time, next(self._sequence), handle))
        self._active_events += 1
        return handle

    def schedule_at(self, time: float, callback: Callable[..., Any], *args: Any, **kwargs: Any) -> EventHandle:
        """Schedule ``callback`` at an absolute simulated time."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule an event at {time}, which is before now ({self._now})"
            )
        handle = EventHandle(time, callback, args, kwargs, sim=self)
        heapq.heappush(self._queue, (time, next(self._sequence), handle))
        self._active_events += 1
        return handle

    def schedule_call(self, delay: float, callback: Callable[..., Any], *args: Any) -> None:
        """Allocation-free fast path: schedule a fire-and-forget callback.

        Unlike :meth:`schedule` this returns no handle (the event cannot be
        cancelled) and accepts no kwargs, so nothing is allocated beyond the
        queue tuple itself.  Ordering relative to :meth:`schedule` events is
        identical — both consume the same sequence counter.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule an event in the past (delay={delay})")
        heapq.heappush(self._queue, (self._now + delay, next(self._sequence), callback, args))
        self._active_events += 1

    def reserve_slot(self) -> int:
        """Consume and return a sequence number for :meth:`schedule_reserved`.

        Lets an event that processes a batch of logical sub-events reserve
        its ordering slot *before* running any of them, so a continuation
        enqueued mid-batch (see the wireless medium's stop/resume handling)
        still sorts ahead of everything the sub-events scheduled.
        """
        return next(self._sequence)

    def schedule_reserved(self, slot: int, callback: Callable[..., Any], *args: Any) -> None:
        """Enqueue ``callback`` at the current time under a reserved slot."""
        heapq.heappush(self._queue, (self._now, slot, callback, args))
        self._active_events += 1

    def cancel(self, handle: Optional[EventHandle]) -> None:
        """Cancel a previously scheduled event (safe to pass ``None``)."""
        if handle is not None:
            handle.cancel()

    # --------------------------------------------------------------- running
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run events until the queue drains, ``until`` is reached, or ``max_events`` fire.

        ``until`` is inclusive: events scheduled exactly at ``until`` execute.
        """
        if self._running:
            raise SimulationError("simulator is already running")
        self._running = True
        self._stopped = False
        processed = 0
        queue = self._queue
        heappop = heapq.heappop
        try:
            while queue:
                if self._stopped:
                    break
                event_time = queue[0][0]
                if until is not None and event_time > until:
                    self._now = until
                    break
                entry = heappop(queue)
                if len(entry) == 4:
                    # schedule_call fast path: no handle, not cancellable.
                    self._now = event_time
                    self._active_events -= 1
                    entry[2](*entry[3])
                else:
                    handle = entry[2]
                    if handle.cancelled:
                        continue
                    self._now = event_time
                    handle.fired = True
                    self._active_events -= 1
                    if handle.kwargs:
                        handle.callback(*handle.args, **handle.kwargs)
                    else:
                        handle.callback(*handle.args)
                processed += 1
                if max_events is not None and processed >= max_events:
                    break
            else:
                if until is not None and until > self._now:
                    self._now = until
        finally:
            # Flushed once instead of per event; callbacks that adjust
            # events_processed mid-run (batched delivery) only add to it,
            # so the deferred flush commutes.
            self.events_processed += processed
            self._running = False

    def stop(self) -> None:
        """Stop the run loop after the currently executing event returns."""
        self._stopped = True

    @property
    def stopping(self) -> bool:
        """Whether :meth:`stop` was requested for the current run.

        Batch-processing events (e.g. the wireless medium's batched frame
        delivery) poll this between logical sub-events so a ``stop()`` issued
        mid-batch halts exactly where the equivalent per-event schedule would
        have.
        """
        return self._stopped

    # ------------------------------------------------------------- utilities
    def rng(self, name: str):
        """Return the named deterministic random stream."""
        return self.streams.get(name)

    @property
    def pending_events(self) -> int:
        """Number of events still queued (cancelled entries excluded).

        Tracked incrementally: schedule/cancel/fire adjust a counter, so this
        is O(1) rather than a sweep of the whole queue.
        """
        return self._active_events

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Simulator t={self._now:.3f} pending={self.pending_events} processed={self.events_processed}>"
