"""Named deterministic random streams.

Each consumer of randomness (mobility model, MAC timers, loss process, PEBA,
application jitter, ...) asks for a stream by name.  Streams are seeded from
the base seed and the stream name, so two runs with the same seed produce the
same behaviour even if unrelated components are added or removed.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


class RandomStreams:
    """Factory and registry of named :class:`random.Random` instances."""

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._streams: Dict[str, random.Random] = {}

    def get(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it deterministically if needed."""
        stream = self._streams.get(name)
        if stream is None:
            digest = hashlib.sha256(f"{self.seed}:{name}".encode("utf-8")).digest()
            stream_seed = int.from_bytes(digest[:8], "big")
            stream = random.Random(stream_seed)
            self._streams[name] = stream
        return stream

    def __contains__(self, name: str) -> bool:
        return name in self._streams

    def __len__(self) -> int:
        return len(self._streams)
