"""A Named Data Networking (NDN) forwarding stack.

This package reimplements, in Python, the NDN abstractions DAPES runs on:
hierarchical names, Interest/Data packets with per-packet signatures, a TLV
wire encoding, and an NFD-style forwarder with a Content Store (CS), Pending
Interest Table (PIT), Forwarding Information Base (FIB) and pluggable
forwarding strategies (Figure 1 of the paper).

The forwarder is transport-agnostic: faces connect it either to a local
application (:class:`~repro.ndn.face.AppFace`) or to the shared wireless
broadcast medium (:class:`~repro.ndn.face.BroadcastFace`).
"""

from repro.ndn.content_store import ContentStore
from repro.ndn.face import AppFace, BroadcastFace, Face
from repro.ndn.fib import Fib
from repro.ndn.forwarder import Forwarder, ForwarderConfig
from repro.ndn.name import Name
from repro.ndn.packet import Data, Interest
from repro.ndn.pit import Pit, PitEntry
from repro.ndn.strategy import (
    BestRouteStrategy,
    ForwardingStrategy,
    MulticastStrategy,
    ProbabilisticSuppressionStrategy,
)

__all__ = [
    "AppFace",
    "BestRouteStrategy",
    "BroadcastFace",
    "ContentStore",
    "Data",
    "Face",
    "Fib",
    "Forwarder",
    "ForwarderConfig",
    "ForwardingStrategy",
    "Interest",
    "MulticastStrategy",
    "Name",
    "Pit",
    "PitEntry",
    "ProbabilisticSuppressionStrategy",
]
