"""Content Store (CS): the forwarder's in-network cache.

Received Data packets are cached and used to satisfy future Interests for the
same name — this is what lets pure forwarders serve overheard data and lets a
repository act as a persistent cache in the DAPES scenarios.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from repro.ndn.name import Name, NameLike
from repro.ndn.packet import Data, Interest


class ContentStore:
    """An LRU cache of Data packets keyed by exact name."""

    def __init__(self, capacity: int = 4096):
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        self.capacity = capacity
        self._entries: "OrderedDict[Name, Data]" = OrderedDict()
        self._size_bytes = 0
        self.hits = 0
        self.misses = 0
        self.insertions = 0
        self.evictions = 0

    # --------------------------------------------------------------- queries
    def find(self, interest: Interest) -> Optional[Data]:
        """Return a cached Data satisfying ``interest``, or ``None``."""
        if interest.can_be_prefix:
            for name, data in self._entries.items():
                if interest.name.is_prefix_of(name):
                    self._entries.move_to_end(name)
                    self.hits += 1
                    return data
            self.misses += 1
            return None
        data = self._entries.get(interest.name)
        if data is None:
            self.misses += 1
            return None
        self._entries.move_to_end(interest.name)
        self.hits += 1
        return data

    def get(self, name: NameLike) -> Optional[Data]:
        """Exact-name lookup without statistics side effects beyond hit/miss."""
        data = self._entries.get(Name(name))
        if data is None:
            self.misses += 1
        else:
            self.hits += 1
        return data

    def __contains__(self, name: NameLike) -> bool:
        return Name(name) in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------- mutation
    def insert(self, data: Data) -> None:
        """Insert (or refresh) a Data packet, evicting the LRU entry if full."""
        if self.capacity == 0:
            return
        name = data.name
        existing = self._entries.get(name)
        if existing is not None:
            self._entries.move_to_end(name)
            self._entries[name] = data
            self._size_bytes += data.wire_size - existing.wire_size
            return
        self._entries[name] = data
        self._size_bytes += data.wire_size
        self.insertions += 1
        while len(self._entries) > self.capacity:
            _, evicted = self._entries.popitem(last=False)
            self._size_bytes -= evicted.wire_size
            self.evictions += 1

    def clear(self) -> None:
        self._entries.clear()
        self._size_bytes = 0

    # ------------------------------------------------------------ accounting
    @property
    def size_bytes(self) -> int:
        """Approximate memory held by cached Data (used for Table I proxies).

        Maintained incrementally on insert/evict: the periodic load sampler
        reads this for every peer, and summing the whole store there made
        state accounting the hottest path of the bitmap-heavy experiments.
        """
        return self._size_bytes
