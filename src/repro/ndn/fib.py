"""Forwarding Information Base (FIB) with longest-prefix-match lookup."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.ndn.name import Name, NameLike


@dataclass(frozen=True)
class FibNextHop:
    """One next hop for a prefix."""

    face_id: int
    cost: int = 0


class Fib:
    """Prefix → next-hop table.

    In the ad-hoc scenarios of the paper there is usually a single broadcast
    face and the FIB holds application prefixes (``/dapes``, collection
    prefixes) pointing at it; the general LPM structure is still provided so
    the stack also works in wired/infrastructure topologies (e.g. the
    repository examples).
    """

    def __init__(self):
        self._entries: Dict[Name, List[FibNextHop]] = {}

    def insert(self, prefix: NameLike, face_id: int, cost: int = 0) -> None:
        """Add a next hop for ``prefix`` (idempotent per (prefix, face))."""
        prefix = Name(prefix)
        hops = self._entries.setdefault(prefix, [])
        for existing in hops:
            if existing.face_id == face_id:
                hops.remove(existing)
                break
        hops.append(FibNextHop(face_id=face_id, cost=cost))
        hops.sort(key=lambda hop: hop.cost)

    def remove(self, prefix: NameLike, face_id: Optional[int] = None) -> None:
        """Remove a prefix entirely, or just one of its next hops."""
        prefix = Name(prefix)
        if face_id is None:
            self._entries.pop(prefix, None)
            return
        hops = self._entries.get(prefix)
        if not hops:
            return
        remaining = [hop for hop in hops if hop.face_id != face_id]
        if remaining:
            self._entries[prefix] = remaining
        else:
            self._entries.pop(prefix, None)

    def longest_prefix_match(self, name: NameLike) -> List[FibNextHop]:
        """Next hops of the longest registered prefix of ``name`` (may be empty)."""
        name = Name(name)
        best: Optional[Name] = None
        for prefix in self._entries:
            if prefix.is_prefix_of(name) and (best is None or len(prefix) > len(best)):
                best = prefix
        if best is None:
            return []
        return list(self._entries[best])

    def prefixes(self) -> List[Name]:
        return list(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def size_bytes(self) -> int:
        """Approximate memory held by FIB state."""
        return sum(prefix.wire_size + 12 * len(hops) for prefix, hops in self._entries.items())
