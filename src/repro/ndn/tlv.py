"""A minimal TLV (type-length-value) wire encoding for Interest and Data.

The simulator passes packet objects around directly for speed, but a real
deployment needs a wire format; this module provides one compatible in
spirit with the NDN packet format (types differ).  It is exercised by the
test suite (round-trip properties) and by the examples to show what actually
goes on the air.
"""

from __future__ import annotations

import struct
from typing import Optional, Tuple

from repro.crypto.signing import Signature
from repro.ndn.name import Name
from repro.ndn.packet import Data, Interest

# TLV type numbers (local to this reproduction).
TYPE_INTEREST = 0x05
TYPE_DATA = 0x06
TYPE_NAME = 0x07
TYPE_COMPONENT = 0x08
TYPE_NONCE = 0x0A
TYPE_LIFETIME = 0x0C
TYPE_HOP_LIMIT = 0x22
TYPE_CAN_BE_PREFIX = 0x21
TYPE_APP_PARAMS = 0x24
TYPE_CONTENT = 0x15
TYPE_FRESHNESS = 0x25
TYPE_SIGNATURE = 0x16
TYPE_SIG_SIGNER = 0x17
TYPE_SIG_KEY = 0x18
TYPE_SIG_VALUE = 0x19


class TlvError(ValueError):
    """Raised when decoding malformed TLV bytes."""


def encode_tlv(type_number: int, value: bytes) -> bytes:
    """Encode one TLV element with a variable-length length field."""
    length = len(value)
    if length < 253:
        length_bytes = bytes([length])
    elif length <= 0xFFFF:
        length_bytes = b"\xfd" + struct.pack(">H", length)
    else:
        length_bytes = b"\xfe" + struct.pack(">I", length)
    return bytes([type_number]) + length_bytes + value


def decode_tlv(buffer: bytes, offset: int = 0) -> Tuple[int, bytes, int]:
    """Decode one TLV element; returns (type, value, next_offset)."""
    if offset >= len(buffer):
        raise TlvError("buffer exhausted while reading TLV type")
    type_number = buffer[offset]
    offset += 1
    if offset >= len(buffer):
        raise TlvError("buffer exhausted while reading TLV length")
    first = buffer[offset]
    offset += 1
    if first < 253:
        length = first
    elif first == 0xFD:
        length = struct.unpack(">H", buffer[offset:offset + 2])[0]
        offset += 2
    elif first == 0xFE:
        length = struct.unpack(">I", buffer[offset:offset + 4])[0]
        offset += 4
    else:
        raise TlvError(f"unsupported length prefix {first:#x}")
    end = offset + length
    if end > len(buffer):
        raise TlvError("TLV length exceeds buffer size")
    return type_number, buffer[offset:end], end


def _iter_tlvs(buffer: bytes):
    offset = 0
    while offset < len(buffer):
        type_number, value, offset = decode_tlv(buffer, offset)
        yield type_number, value


# ---------------------------------------------------------------------- names
def encode_name(name: Name) -> bytes:
    inner = b"".join(encode_tlv(TYPE_COMPONENT, component.encode("utf-8")) for component in name)
    return encode_tlv(TYPE_NAME, inner)


def decode_name(value: bytes) -> Name:
    components = []
    for type_number, component in _iter_tlvs(value):
        if type_number != TYPE_COMPONENT:
            raise TlvError(f"unexpected TLV type {type_number:#x} inside Name")
        components.append(component.decode("utf-8"))
    return Name(components)


# ------------------------------------------------------------------- interest
def encode_interest(interest: Interest) -> bytes:
    parts = [encode_name(interest.name)]
    parts.append(encode_tlv(TYPE_NONCE, struct.pack(">Q", interest.nonce)))
    parts.append(encode_tlv(TYPE_LIFETIME, struct.pack(">d", interest.lifetime)))
    parts.append(encode_tlv(TYPE_HOP_LIMIT, bytes([interest.hop_limit & 0xFF])))
    if interest.can_be_prefix:
        parts.append(encode_tlv(TYPE_CAN_BE_PREFIX, b""))
    if isinstance(interest.application_parameters, (bytes, bytearray)):
        parts.append(encode_tlv(TYPE_APP_PARAMS, bytes(interest.application_parameters)))
    return encode_tlv(TYPE_INTEREST, b"".join(parts))


def decode_interest(buffer: bytes) -> Interest:
    type_number, value, _ = decode_tlv(buffer)
    if type_number != TYPE_INTEREST:
        raise TlvError(f"expected Interest TLV, got type {type_number:#x}")
    name: Optional[Name] = None
    nonce = 0
    lifetime = 4.0
    hop_limit = 16
    can_be_prefix = False
    app_params: Optional[bytes] = None
    for inner_type, inner_value in _iter_tlvs(value):
        if inner_type == TYPE_NAME:
            name = decode_name(inner_value)
        elif inner_type == TYPE_NONCE:
            nonce = struct.unpack(">Q", inner_value)[0]
        elif inner_type == TYPE_LIFETIME:
            lifetime = struct.unpack(">d", inner_value)[0]
        elif inner_type == TYPE_HOP_LIMIT:
            hop_limit = inner_value[0]
        elif inner_type == TYPE_CAN_BE_PREFIX:
            can_be_prefix = True
        elif inner_type == TYPE_APP_PARAMS:
            app_params = inner_value
    if name is None:
        raise TlvError("Interest TLV has no Name")
    interest = Interest(
        name=name,
        nonce=nonce,
        lifetime=lifetime,
        can_be_prefix=can_be_prefix,
        hop_limit=hop_limit,
        application_parameters=app_params,
        application_parameters_size=len(app_params) if app_params else 0,
    )
    return interest


# ----------------------------------------------------------------------- data
def encode_data(data: Data) -> bytes:
    parts = [encode_name(data.name)]
    parts.append(encode_tlv(TYPE_CONTENT, data.content))
    parts.append(encode_tlv(TYPE_FRESHNESS, struct.pack(">d", data.freshness_period)))
    if data.signature is not None:
        signature_inner = b"".join(
            [
                encode_tlv(TYPE_SIG_SIGNER, data.signature.signer.encode("utf-8")),
                encode_tlv(TYPE_SIG_KEY, data.signature.public_key.encode("ascii")),
                encode_tlv(TYPE_SIG_VALUE, data.signature.value.encode("ascii")),
            ]
        )
        parts.append(encode_tlv(TYPE_SIGNATURE, signature_inner))
    return encode_tlv(TYPE_DATA, b"".join(parts))


def decode_data(buffer: bytes) -> Data:
    type_number, value, _ = decode_tlv(buffer)
    if type_number != TYPE_DATA:
        raise TlvError(f"expected Data TLV, got type {type_number:#x}")
    name: Optional[Name] = None
    content = b""
    freshness = 3600.0
    signature: Optional[Signature] = None
    for inner_type, inner_value in _iter_tlvs(value):
        if inner_type == TYPE_NAME:
            name = decode_name(inner_value)
        elif inner_type == TYPE_CONTENT:
            content = inner_value
        elif inner_type == TYPE_FRESHNESS:
            freshness = struct.unpack(">d", inner_value)[0]
        elif inner_type == TYPE_SIGNATURE:
            signer = key = sig_value = ""
            for sig_type, sig_bytes in _iter_tlvs(inner_value):
                if sig_type == TYPE_SIG_SIGNER:
                    signer = sig_bytes.decode("utf-8")
                elif sig_type == TYPE_SIG_KEY:
                    key = sig_bytes.decode("ascii")
                elif sig_type == TYPE_SIG_VALUE:
                    sig_value = sig_bytes.decode("ascii")
            signature = Signature(signer=signer, public_key=key, value=sig_value)
    if name is None:
        raise TlvError("Data TLV has no Name")
    return Data(name=name, content=content, signature=signature, freshness_period=freshness)
