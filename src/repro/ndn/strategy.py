"""Forwarding strategies.

A strategy decides, for every Interest the forwarder accepts, which faces to
forward it to and after what delay.  The paper's multi-hop design maps to
strategies directly:

* peers and repositories use multicast between their application face and
  the wireless face;
* *pure forwarders* (NDN-only nodes without the DAPES application) use
  :class:`ProbabilisticSuppressionStrategy` — they re-broadcast a fraction of
  received Interests after a random wait, serve overheard Data from their CS,
  and suppress names that recently failed to bring Data back;
* *DAPES intermediate nodes* use a knowledge-driven strategy defined in
  :mod:`repro.core.intermediate` on top of the hooks declared here.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Tuple

from repro.ndn.name import Name
from repro.ndn.packet import Data, Interest
from repro.ndn.pit import PitEntry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.ndn.forwarder import Forwarder

# (face_id, delay_seconds) pairs returned by strategies.
ForwardingDecision = List[Tuple[int, float]]


class ForwardingStrategy:
    """Base strategy: never forwards anything."""

    def __init__(self):
        self.forwarder: Optional["Forwarder"] = None

    def attach(self, forwarder: "Forwarder") -> None:
        """Called by the forwarder when the strategy is installed."""
        self.forwarder = forwarder

    # ------------------------------------------------------------------ hooks
    def decide_interest_forwarding(
        self, interest: Interest, incoming_face_id: int, entry: PitEntry, is_new: bool
    ) -> ForwardingDecision:
        """Return the faces (and delays) to forward ``interest`` to."""
        return []

    def on_data_received(self, data: Data, incoming_face_id: int) -> None:
        """Called whenever Data (solicited or not) is received."""

    def on_interest_expired(self, entry: PitEntry) -> None:
        """Called when a PIT entry expires without being satisfied."""

    def should_cache_unsolicited(self, data: Data) -> bool:
        """Whether unsolicited (overheard) Data should be cached."""
        return False


class MulticastStrategy(ForwardingStrategy):
    """Forward every accepted Interest to every other face.

    This is the strategy used by DAPES peers and repositories: Interests from
    the application go on the air, Interests from the air reach the
    application (which answers from its local collection state).
    """

    def decide_interest_forwarding(self, interest, incoming_face_id, entry, is_new):
        if not is_new and entry.forwarded:
            return []
        return [
            (face_id, 0.0)
            for face_id in self.forwarder.face_ids()
            if face_id != incoming_face_id
        ]


class BestRouteStrategy(ForwardingStrategy):
    """Forward along the lowest-cost FIB next hop (infrastructure topologies)."""

    def decide_interest_forwarding(self, interest, incoming_face_id, entry, is_new):
        if not is_new and entry.forwarded:
            return []
        next_hops = self.forwarder.fib.longest_prefix_match(interest.name)
        for hop in next_hops:
            if hop.face_id != incoming_face_id:
                return [(hop.face_id, 0.0)]
        return []


class ProbabilisticSuppressionStrategy(ForwardingStrategy):
    """The pure-forwarder behaviour of Section V-A.

    * Overheard Data is cached so future Interests can be served from the CS.
    * A received Interest is re-broadcast with probability
      ``forward_probability`` after a random wait in
      ``[min_wait, max_wait]`` — the wait avoids collisions and gives nodes
      that actually hold the Data a chance to answer first.
    * If a forwarded Interest brings no Data back before its PIT entry
      expires, the name prefix is *suppressed* for ``suppression_timeout``
      seconds: further Interests for it are not forwarded.  Receiving Data
      under a suppressed prefix clears the suppression (the Data evidently is
      reachable again).
    """

    def __init__(
        self,
        forward_probability: float = 0.2,
        min_wait: float = 0.005,
        max_wait: float = 0.050,
        suppression_timeout: float = 10.0,
        suppression_prefix_length: int = 1,
    ):
        super().__init__()
        if not 0.0 <= forward_probability <= 1.0:
            raise ValueError("forward_probability must be within [0, 1]")
        if min_wait < 0 or max_wait < min_wait:
            raise ValueError("wait bounds must satisfy 0 <= min_wait <= max_wait")
        self.forward_probability = forward_probability
        self.min_wait = min_wait
        self.max_wait = max_wait
        self.suppression_timeout = suppression_timeout
        self.suppression_prefix_length = suppression_prefix_length
        self._suppressed_until: dict[Name, float] = {}
        self.interests_suppressed = 0
        self.interests_forwarded = 0
        self._rng = None

    def attach(self, forwarder) -> None:
        super().attach(forwarder)
        self._rng = forwarder.sim.rng(f"strategy.pure.{forwarder.node_id}")

    # ------------------------------------------------------------------ hooks
    def decide_interest_forwarding(self, interest, incoming_face_id, entry, is_new):
        if not is_new and entry.forwarded:
            return []
        if self._is_suppressed(interest.name):
            self.interests_suppressed += 1
            return []
        if self._rng.random() >= self.forward_probability:
            self.interests_suppressed += 1
            return []
        delay = self._rng.uniform(self.min_wait, self.max_wait)
        # A pure forwarder typically has a single (broadcast) face: the
        # re-broadcast goes back out the face the Interest arrived on.
        decision = [(face_id, delay) for face_id in self.forwarder.face_ids()]
        if decision:
            self.interests_forwarded += 1
        return decision

    def on_data_received(self, data, incoming_face_id):
        self._suppressed_until.pop(self._suppression_key(data.name), None)

    def on_interest_expired(self, entry):
        if entry.forwarded:
            key = self._suppression_key(entry.name)
            self._suppressed_until[key] = self.forwarder.sim.now + self.suppression_timeout

    def should_cache_unsolicited(self, data):
        return True

    # --------------------------------------------------------------- internal
    def _suppression_key(self, name: Name) -> Name:
        return name.prefix(min(self.suppression_prefix_length, len(name)))

    def _is_suppressed(self, name: Name) -> bool:
        key = self._suppression_key(name)
        until = self._suppressed_until.get(key)
        if until is None:
            return False
        if until <= self.forwarder.sim.now:
            del self._suppressed_until[key]
            return False
        return True

    @property
    def suppressed_prefixes(self) -> list[Name]:
        """Currently suppressed prefixes (for tests and diagnostics)."""
        now = self.forwarder.sim.now if self.forwarder else 0.0
        return [name for name, until in self._suppressed_until.items() if until > now]
