"""Hierarchical NDN names.

A name is an ordered list of components, written ``/component1/component2/...``.
Names are semantically meaningful and independent of node location — the
property DAPES builds its whole design on.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Union

NameLike = Union["Name", str, Sequence[str]]


class Name:
    """An immutable hierarchical name.

    Examples
    --------
    >>> name = Name("/damaged-bridge-1533783192/bridge-picture/0")
    >>> name.components
    ('damaged-bridge-1533783192', 'bridge-picture', '0')
    >>> Name("/damaged-bridge-1533783192").is_prefix_of(name)
    True
    >>> name[-1]
    '0'
    """

    __slots__ = ("_components", "_str", "_hash", "_wire_size")

    def __new__(cls, value: NameLike = ()):
        # Names are immutable, so constructing a Name from a Name is the
        # identity — this happens on every normalization call in the
        # forwarder/namespace hot paths.
        if type(value) is cls:
            return value
        self = object.__new__(cls)
        if isinstance(value, str):
            # Splitting on "/" cannot leave a "/" inside a component, so the
            # validation loop below is only needed for sequence input.
            components: tuple[str, ...] = tuple(part for part in value.split("/") if part)
        elif isinstance(value, Name):
            components = value._components
        else:
            components = tuple(str(part) for part in value)
            for component in components:
                if "/" in component:
                    raise ValueError(f"name component {component!r} must not contain '/'")
        self._components = components
        self._str = None
        self._hash = None
        self._wire_size = None
        return self

    @classmethod
    def _unchecked(cls, components: tuple) -> "Name":
        """Internal fast path for components already owned by a Name."""
        name = cls.__new__(cls)
        name._components = components
        name._str = None
        name._hash = None
        name._wire_size = None
        return name

    # ------------------------------------------------------------- accessors
    @property
    def components(self) -> tuple[str, ...]:
        return self._components

    def __len__(self) -> int:
        return len(self._components)

    def __getitem__(self, index):
        return self._components[index]

    def __iter__(self):
        return iter(self._components)

    def __str__(self) -> str:
        # Rendered lazily: most Names live and die inside PIT/CS/FIB lookups
        # without ever being printed, and the join is measurable at the
        # hot-path construction rates (every prefix()/append() allocates).
        value = self._str
        if value is None:
            components = self._components
            value = self._str = "/" + "/".join(components) if components else "/"
        return value

    def __repr__(self) -> str:
        return f"Name({str(self)!r})"

    def __hash__(self) -> int:
        # Names are hashed on every PIT/CS/FIB lookup; cache (immutable class).
        value = self._hash
        if value is None:
            value = self._hash = hash(self._components)
        return value

    def __eq__(self, other) -> bool:
        if isinstance(other, Name):
            return self._components == other._components
        if isinstance(other, str):
            return self._components == Name(other)._components
        return NotImplemented

    def __lt__(self, other: "Name") -> bool:
        return self._components < Name(other)._components

    # ------------------------------------------------------------ operations
    def append(self, *components: str) -> "Name":
        """Return a new name with ``components`` appended."""
        extra: list[str] = []
        for component in components:
            extra.extend(part for part in str(component).split("/") if part)
        return Name(self._components + tuple(extra))

    def prefix(self, length: int) -> "Name":
        """Return the first ``length`` components as a new name."""
        return Name._unchecked(self._components[:length])

    def parent(self) -> "Name":
        """The name with the last component removed."""
        if not self._components:
            raise ValueError("the root name has no parent")
        return Name._unchecked(self._components[:-1])

    def is_prefix_of(self, other: NameLike) -> bool:
        """Whether this name is a (non-strict) prefix of ``other``."""
        if not isinstance(other, Name):
            other = Name(other)
        mine = self._components
        theirs = other._components
        if len(mine) > len(theirs):
            return False
        return theirs[: len(mine)] == mine

    @property
    def wire_size(self) -> int:
        """Approximate encoded size in bytes (component TLVs plus name TLV)."""
        value = self._wire_size
        if value is None:
            value = self._wire_size = (
                sum(len(component.encode("utf-8")) + 2 for component in self._components) + 2
            )
        return value

    @staticmethod
    def join(parts: Iterable[NameLike]) -> "Name":
        """Concatenate several name-like parts into one name."""
        result = Name()
        for part in parts:
            result = result.append(*Name(part).components)
        return result
