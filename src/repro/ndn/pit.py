"""Pending Interest Table (PIT).

The PIT records Interests that have been forwarded but not yet satisfied.  It
provides Interest aggregation (a second Interest for the same name is not
forwarded again), loop detection via nonces, and the reverse path for Data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.ndn.name import Name
from repro.ndn.packet import Data, Interest


@dataclass(slots=True)
class PitEntry:
    """State for one pending Interest name."""

    name: Name
    in_faces: Set[int] = field(default_factory=set)
    out_faces: Set[int] = field(default_factory=set)
    nonces: Set[int] = field(default_factory=set)
    expiry: float = 0.0
    forwarded: bool = False
    can_be_prefix: bool = False

    def matches(self, data: Data) -> bool:
        if self.can_be_prefix:
            return self.name.is_prefix_of(data.name)
        return self.name == data.name


class Pit:
    """The pending Interest table of one forwarder."""

    def __init__(self):
        self._entries: Dict[Name, PitEntry] = {}
        # Entries with can_be_prefix=True need a scan to match Data; exact
        # entries (the overwhelming majority) resolve with one dict lookup.
        self._prefix_entries = 0
        self.aggregations = 0
        self.loops_detected = 0
        self.expirations = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, name) -> bool:
        return Name(name) in self._entries

    def get(self, name) -> Optional[PitEntry]:
        return self._entries.get(Name(name))

    def entries(self) -> List[PitEntry]:
        return list(self._entries.values())

    # ------------------------------------------------------------- insertion
    def insert(self, interest: Interest, incoming_face_id: int, now: float) -> tuple[PitEntry, bool, bool]:
        """Insert or aggregate ``interest``.

        Returns ``(entry, is_new, is_loop)``.  ``is_loop`` is ``True`` when
        the same nonce was already seen for this name, meaning the Interest
        looped back and must be dropped.
        """
        entry = self._entries.get(interest.name)
        if entry is None:
            entry = PitEntry(
                name=interest.name,
                expiry=now + interest.lifetime,
                can_be_prefix=interest.can_be_prefix,
            )
            entry.in_faces.add(incoming_face_id)
            entry.nonces.add(interest.nonce)
            self._entries[interest.name] = entry
            if entry.can_be_prefix:
                self._prefix_entries += 1
            return entry, True, False
        if interest.nonce in entry.nonces and incoming_face_id not in entry.in_faces:
            self.loops_detected += 1
            return entry, False, True
        if interest.nonce in entry.nonces and incoming_face_id in entry.in_faces:
            # Retransmission from the same face: refresh the expiry.
            entry.expiry = max(entry.expiry, now + interest.lifetime)
            return entry, False, False
        entry.in_faces.add(incoming_face_id)
        entry.nonces.add(interest.nonce)
        entry.expiry = max(entry.expiry, now + interest.lifetime)
        self.aggregations += 1
        return entry, False, False

    # ------------------------------------------------------------ resolution
    def satisfy(self, data: Data) -> List[PitEntry]:
        """Remove and return every entry satisfied by ``data``."""
        if not self._prefix_entries:
            # Exact-match PIT: one dict lookup instead of a full scan.
            entry = self._entries.pop(data.name, None)
            return [entry] if entry is not None else []
        satisfied = [entry for entry in self._entries.values() if entry.matches(data)]
        for entry in satisfied:
            self._drop(entry)
        return satisfied

    def remove(self, name) -> Optional[PitEntry]:
        entry = self._entries.pop(Name(name), None)
        if entry is not None and entry.can_be_prefix:
            self._prefix_entries -= 1
        return entry

    def expire(self, now: float) -> List[PitEntry]:
        """Remove and return entries whose lifetime has elapsed."""
        expired = [entry for entry in self._entries.values() if entry.expiry <= now]
        for entry in expired:
            self._drop(entry)
            self.expirations += 1
        return expired

    def _drop(self, entry: PitEntry) -> None:
        if self._entries.pop(entry.name, None) is not None and entry.can_be_prefix:
            self._prefix_entries -= 1

    # ------------------------------------------------------------ accounting
    @property
    def size_bytes(self) -> int:
        """Approximate memory held by PIT state (used for Table I proxies)."""
        total = 0
        for entry in self._entries.values():
            total += entry.name.wire_size + 8 * (len(entry.in_faces) + len(entry.out_faces) + len(entry.nonces)) + 16
        return total
