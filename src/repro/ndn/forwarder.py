"""The NDN forwarder (the paper's NFD, Figure 1).

Interest pipeline: Content Store lookup → PIT insert/aggregate (with nonce
loop detection) → strategy decision → forward.  Data pipeline: PIT match →
cache → forward to the faces the matching Interests arrived from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.ndn.content_store import ContentStore
from repro.ndn.face import AppFace, Face
from repro.ndn.fib import Fib
from repro.ndn.name import NameLike
from repro.ndn.packet import Data, Interest
from repro.ndn.pit import Pit, PitEntry
from repro.ndn.strategy import ForwardingStrategy, MulticastStrategy
from repro.simulation import Simulator


@dataclass
class ForwarderConfig:
    """Tunables of one forwarder instance."""

    cs_capacity: int = 4096
    cache_unsolicited: bool = False
    forwarding_delay: float = 0.0002


@dataclass
class ForwarderStats:
    """Counters used by the experiment harness and the Table I proxies."""

    interests_received: int = 0
    data_received: int = 0
    interests_forwarded: int = 0
    data_forwarded: int = 0
    cs_hits_served: int = 0
    loops_dropped: int = 0
    hop_limit_drops: int = 0
    unsolicited_data: int = 0
    pit_expirations: int = 0
    extra: Dict[str, int] = field(default_factory=dict)


class Forwarder:
    """One node's NDN forwarding daemon."""

    def __init__(
        self,
        sim: Simulator,
        node_id: str,
        config: Optional[ForwarderConfig] = None,
        strategy: Optional[ForwardingStrategy] = None,
    ):
        self.sim = sim
        self.node_id = node_id
        self.config = config if config is not None else ForwarderConfig()
        self.cs = ContentStore(capacity=self.config.cs_capacity)
        self.pit = Pit()
        self.fib = Fib()
        self.stats = ForwarderStats()
        self._faces: Dict[int, Face] = {}
        self._next_face_id = 1
        # Bumped whenever the face set changes, so strategies can cache
        # face-role lists (queried per Interest) without going stale.
        self.faces_version = 0
        self.strategy = strategy if strategy is not None else MulticastStrategy()
        self.strategy.attach(self)

    # ----------------------------------------------------------------- faces
    def add_face(self, face: Face) -> Face:
        """Attach a face and assign it an id."""
        face.face_id = self._next_face_id
        self._next_face_id += 1
        face.forwarder = self
        self._faces[face.face_id] = face
        self.faces_version += 1
        return face

    def face(self, face_id: int) -> Face:
        return self._faces[face_id]

    def face_ids(self) -> List[int]:
        return list(self._faces)

    def faces(self) -> List[Face]:
        return list(self._faces.values())

    def app_faces(self) -> List[AppFace]:
        return [face for face in self._faces.values() if isinstance(face, AppFace)]

    def set_strategy(self, strategy: ForwardingStrategy) -> None:
        """Install a forwarding strategy (replaces the previous one)."""
        self.strategy = strategy
        strategy.attach(self)

    def register_prefix(self, prefix: NameLike, face: Face, cost: int = 0) -> None:
        """Register a FIB route for ``prefix`` towards ``face``."""
        self.fib.insert(prefix, face.face_id, cost)

    # ------------------------------------------------------ interest pipeline
    def process_interest(self, interest: Interest, incoming_face: Face) -> None:
        """Full Interest processing pipeline (Figure 1, left half)."""
        self.stats.interests_received += 1
        if interest.hop_limit <= 0:
            self.stats.hop_limit_drops += 1
            return

        cached = self.cs.find(interest)
        if cached is not None:
            self.stats.cs_hits_served += 1
            self._send_data(cached, incoming_face.face_id)
            return

        entry, is_new, is_loop = self.pit.insert(interest, incoming_face.face_id, self.sim.now)
        if is_loop:
            self.stats.loops_dropped += 1
            return
        if is_new:
            # Schedule cleanup when the Interest lifetime elapses.
            self.sim.schedule_call(interest.lifetime, self._check_expiry, entry.name)

        decision = self.strategy.decide_interest_forwarding(
            interest, incoming_face.face_id, entry, is_new
        )
        for face_id, delay in decision:
            # Forwarding back out the incoming face is legitimate on broadcast
            # (wireless) faces — that is how hop-by-hop re-broadcasting works —
            # so the strategy decides; only unknown faces are skipped.
            if face_id not in self._faces:
                continue
            entry.out_faces.add(face_id)
            entry.forwarded = True
            outgoing = interest.clone_for_forwarding() if delay or not is_new else interest
            total_delay = delay + self.config.forwarding_delay
            if total_delay > 0:
                self.sim.schedule_call(total_delay, self._forward_interest, outgoing, face_id)
            else:
                self._forward_interest(outgoing, face_id)

    def _forward_interest(self, interest: Interest, face_id: int) -> None:
        face = self._faces.get(face_id)
        if face is None:
            return
        # The Interest may already have been satisfied while the forwarding
        # delay elapsed; in that case there is no point putting it on the air.
        if interest.name not in self.pit and not isinstance(face, AppFace):
            if interest.name in self.cs:
                return
        self.stats.interests_forwarded += 1
        face.send_interest(interest)

    def _check_expiry(self, name) -> None:
        entry = self.pit.get(name)
        if entry is None:
            return
        if entry.expiry <= self.sim.now:
            self.pit.remove(name)
            self.stats.pit_expirations += 1
            self.strategy.on_interest_expired(entry)
        else:
            self.sim.schedule_call(max(entry.expiry - self.sim.now, 0.0), self._check_expiry, name)

    # ---------------------------------------------------------- data pipeline
    def process_data(self, data: Data, incoming_face: Face) -> None:
        """Full Data processing pipeline (Figure 1, right half)."""
        self.stats.data_received += 1
        satisfied = self.pit.satisfy(data)
        if not satisfied:
            self.stats.unsolicited_data += 1
            if self.config.cache_unsolicited or self.strategy.should_cache_unsolicited(data):
                self.cs.insert(data)
            self.strategy.on_data_received(data, incoming_face.face_id)
            return

        self.cs.insert(data)
        downstream: set[int] = set()
        for entry in satisfied:
            downstream.update(entry.in_faces)
        # Data may legitimately go back out the (broadcast) face it arrived on:
        # that is how an intermediate node relays Data to the downstream hop.
        # Only echoing to the application face it came from is suppressed.
        if isinstance(incoming_face, AppFace):
            downstream.discard(incoming_face.face_id)
        for face_id in downstream:
            self._send_data(data, face_id)
        self.strategy.on_data_received(data, incoming_face.face_id)

    def _send_data(self, data: Data, face_id: int) -> None:
        face = self._faces.get(face_id)
        if face is None:
            return
        self.stats.data_forwarded += 1
        if self.config.forwarding_delay > 0:
            self.sim.schedule_call(self.config.forwarding_delay, face.send_data, data)
        else:
            face.send_data(data)

    # ------------------------------------------------------------- accounting
    @property
    def state_size_bytes(self) -> int:
        """Approximate bytes of forwarder state (CS + PIT + FIB), for Table I."""
        return self.cs.size_bytes + self.pit.size_bytes + self.fib.size_bytes
