"""NDN network-layer packets: Interest and Data."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.crypto.signing import Signature
from repro.ndn.name import Name, NameLike

_nonce_counter = itertools.count(1)

DEFAULT_INTEREST_LIFETIME = 4.0
DEFAULT_FRESHNESS_PERIOD = 3600.0


def _new_nonce() -> int:
    """Globally unique nonce (uniqueness is what loop detection needs)."""
    return next(_nonce_counter)


@dataclass(slots=True)
class Interest:
    """A request for a named Data packet.

    ``application_parameters`` carries opaque application payload; DAPES uses
    it for the sender's bitmap inside bitmap Interests.
    """

    name: Name
    nonce: int = field(default_factory=_new_nonce)
    lifetime: float = DEFAULT_INTEREST_LIFETIME
    can_be_prefix: bool = False
    hop_limit: int = 16
    application_parameters: Any = None
    application_parameters_size: int = 0
    _wire_size: Optional[int] = field(default=None, init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if type(self.name) is not Name:
            self.name = Name(self.name)
        if self.lifetime <= 0:
            raise ValueError("Interest lifetime must be positive")
        if self.hop_limit < 0:
            # Zero is allowed: it denotes an Interest whose hop budget is
            # exhausted, which forwarders drop rather than refuse to parse.
            raise ValueError("hop_limit must be non-negative")

    @property
    def wire_size(self) -> int:
        """Approximate encoded size in bytes (computed once; packets are
        treated as immutable after construction)."""
        size = self._wire_size
        if size is None:
            base = self.name.wire_size + 4 + 2 + 1 + 8  # nonce, lifetime, hop limit, TLV overhead
            size = self._wire_size = base + max(self.application_parameters_size, 0)
        return size

    def clone_for_forwarding(self) -> "Interest":
        """Copy used when an intermediate node forwards the Interest (hop limit decremented)."""
        return Interest(
            name=self.name,
            nonce=self.nonce,
            lifetime=self.lifetime,
            can_be_prefix=self.can_be_prefix,
            hop_limit=self.hop_limit - 1,
            application_parameters=self.application_parameters,
            application_parameters_size=self.application_parameters_size,
        )

    def matches(self, data: "Data") -> bool:
        """Whether ``data`` satisfies this Interest."""
        if self.can_be_prefix:
            return self.name.is_prefix_of(data.name)
        return self.name == data.name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Interest({self.name}, nonce={self.nonce})"


@dataclass(slots=True)
class Data:
    """A named, signed unit of content."""

    name: Name
    content: bytes = b""
    signature: Optional[Signature] = None
    freshness_period: float = DEFAULT_FRESHNESS_PERIOD
    content_size_override: Optional[int] = None
    _wire_size: Optional[int] = field(default=None, init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if type(self.name) is not Name:
            self.name = Name(self.name)
        if type(self.content) is not bytes:
            if not isinstance(self.content, (bytes, bytearray)):
                raise TypeError("Data content must be bytes")
            self.content = bytes(self.content)

    @property
    def content_size(self) -> int:
        """Size of the content in bytes.

        ``content_size_override`` lets large payloads (e.g. 1 KB file
        segments) be *modelled* without materialising the bytes, which keeps
        large simulations cheap while preserving wire-size accounting.
        """
        if self.content_size_override is not None:
            return self.content_size_override
        return len(self.content)

    @property
    def wire_size(self) -> int:
        """Approximate encoded size in bytes (computed once; packets are
        treated as immutable after construction)."""
        size = self._wire_size
        if size is None:
            signature_size = self.signature.size_bytes if self.signature else 0
            size = self._wire_size = self.name.wire_size + self.content_size + signature_size + 12
        return size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Data({self.name}, {self.content_size}B)"
