"""Faces: the forwarder's attachment points.

A face is a bidirectional channel between the forwarder and either a local
application (:class:`AppFace`) or the shared wireless medium
(:class:`BroadcastFace`).  The forwarder assigns face ids when faces are
added.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.ndn.packet import Data, Interest
from repro.wireless.frames import Frame
from repro.wireless.radio import Radio

InterestHandler = Callable[[Interest], None]
DataHandler = Callable[[Data], None]


class Face:
    """Base face.  Subclasses implement the outgoing direction."""

    def __init__(self, name: str = ""):
        self.face_id: int = -1
        self.forwarder = None
        self.name = name
        self.interests_out = 0
        self.data_out = 0
        self.interests_in = 0
        self.data_in = 0

    # ------------------------------------------------ forwarder -> face (out)
    def send_interest(self, interest: Interest) -> None:
        raise NotImplementedError

    def send_data(self, data: Data) -> None:
        raise NotImplementedError

    # ------------------------------------------------ face -> forwarder (in)
    def receive_interest(self, interest: Interest) -> None:
        """Inject an Interest arriving on this face into the forwarder."""
        self.interests_in += 1
        self.forwarder.process_interest(interest, self)

    def receive_data(self, data: Data) -> None:
        """Inject a Data packet arriving on this face into the forwarder."""
        self.data_in += 1
        self.forwarder.process_data(data, self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} id={self.face_id} {self.name}>"


class AppFace(Face):
    """Face connecting a local application to the forwarder.

    The application plays consumer by calling :meth:`express_interest` and
    receiving Data through ``on_data``; it plays producer by receiving
    Interests through ``on_interest`` and answering with :meth:`put_data`.
    """

    def __init__(self, name: str = "app"):
        super().__init__(name)
        self.on_interest: Optional[InterestHandler] = None
        self.on_data: Optional[DataHandler] = None

    # Outgoing direction: the forwarder hands packets to the application.
    def send_interest(self, interest: Interest) -> None:
        self.interests_out += 1
        if self.on_interest is not None:
            self.on_interest(interest)

    def send_data(self, data: Data) -> None:
        self.data_out += 1
        if self.on_data is not None:
            self.on_data(data)

    # Incoming direction: the application hands packets to the forwarder.
    def express_interest(self, interest: Interest) -> None:
        """Application-side: request a named Data packet."""
        self.receive_interest(interest)

    def put_data(self, data: Data) -> None:
        """Application-side: publish a Data packet (usually answering an Interest)."""
        self.receive_data(data)


class BroadcastFace(Face):
    """Face connecting the forwarder to the wireless broadcast medium.

    NDN packets are broadcast as link-layer frames; every node in range
    receives them.  ``classify`` maps a packet to a frame ``kind`` so the
    experiment harness can break overhead down per protocol component
    (discovery Interests, bitmap Data, file-collection Data, ...).
    """

    FRAME_KIND_INTEREST = "ndn-interest"
    FRAME_KIND_DATA = "ndn-data"

    def __init__(
        self,
        radio: Radio,
        protocol: str = "ndn",
        classify: Optional[Callable[[object], str]] = None,
        name: str = "wireless",
    ):
        super().__init__(name)
        self.radio = radio
        self.protocol = protocol
        self.classify = classify
        radio.on_receive = self._on_frame
        radio.on_overhear = self._on_frame

    # ------------------------------------------------ forwarder -> medium
    def send_interest(self, interest: Interest) -> None:
        self.interests_out += 1
        kind = self.classify(interest) if self.classify else self.FRAME_KIND_INTEREST
        frame = Frame(
            sender=self.radio.node_id,
            payload=interest,
            size_bytes=interest.wire_size,
            kind=kind,
            protocol=self.protocol,
        )
        self.radio.send(frame)

    def send_data(self, data: Data) -> None:
        self.data_out += 1
        kind = self.classify(data) if self.classify else self.FRAME_KIND_DATA
        frame = Frame(
            sender=self.radio.node_id,
            payload=data,
            size_bytes=data.wire_size,
            kind=kind,
            protocol=self.protocol,
        )
        self.radio.send(frame)

    # ------------------------------------------------ medium -> forwarder
    def _on_frame(self, frame: Frame) -> None:
        payload = frame.payload
        if isinstance(payload, Interest):
            self.receive_interest(payload)
        elif isinstance(payload, Data):
            self.receive_data(payload)
        # Frames of other protocols sharing the channel are ignored.
