"""Result containers and statistics helpers for the experiment harness."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0-100) of ``values`` with linear interpolation.

    The paper reports the 90th percentile of results collected over ten
    trials; this helper matches numpy's default ("linear") behaviour without
    requiring numpy at runtime.
    """
    if not values:
        raise ValueError("cannot take a percentile of no values")
    if not 0 <= q <= 100:
        raise ValueError("q must be within [0, 100]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (q / 100) * (len(ordered) - 1)
    lower = math.floor(rank)
    upper = math.ceil(rank)
    if lower == upper:
        return float(ordered[int(rank)])
    weight = rank - lower
    return float(ordered[lower] * (1 - weight) + ordered[upper] * weight)


def mean(values: Sequence[float]) -> float:
    if not values:
        raise ValueError("cannot take the mean of no values")
    return sum(values) / len(values)


@dataclass
class RunResult:
    """Outcome of one simulation run (one trial, one parameter point)."""

    protocol: str
    seed: int
    parameters: Dict[str, object] = field(default_factory=dict)
    download_times: Dict[str, float] = field(default_factory=dict)
    incomplete_nodes: List[str] = field(default_factory=list)
    transmissions: int = 0
    transmissions_by_kind: Dict[str, int] = field(default_factory=dict)
    transmissions_by_protocol: Dict[str, int] = field(default_factory=dict)
    collisions: int = 0
    losses: int = 0
    duration: float = 0.0
    events: int = 0
    node_loads: Dict[str, Dict[str, float]] = field(default_factory=dict)

    @property
    def mean_download_time(self) -> float:
        """Average download time across downloaders (incomplete count as the run duration)."""
        times = list(self.download_times.values())
        times.extend(self.duration for _ in self.incomplete_nodes)
        return mean(times) if times else float("nan")

    @property
    def completion_ratio(self) -> float:
        total = len(self.download_times) + len(self.incomplete_nodes)
        return len(self.download_times) / total if total else 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "protocol": self.protocol,
            "seed": self.seed,
            "parameters": dict(self.parameters),
            "mean_download_time": self.mean_download_time,
            "completion_ratio": self.completion_ratio,
            "transmissions": self.transmissions,
            "collisions": self.collisions,
            "losses": self.losses,
            "duration": self.duration,
        }


@dataclass
class SweepPoint:
    """Aggregated result at one parameter point (over all trials)."""

    label: str
    parameters: Dict[str, object]
    download_time: float
    transmissions: float
    completion_ratio: float
    trials: int
    extras: Dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        row = {
            "label": self.label,
            "download_time_s": round(self.download_time, 2),
            "transmissions": round(self.transmissions, 1),
            "completion_ratio": round(self.completion_ratio, 3),
            "trials": self.trials,
        }
        row.update({key: round(value, 3) for key, value in self.extras.items()})
        row.update(self.parameters)
        return row


@dataclass
class SweepResult:
    """A full experiment: a list of aggregated points (one per series/parameter)."""

    name: str
    description: str
    points: List[SweepPoint] = field(default_factory=list)

    def add_point(self, point: SweepPoint) -> None:
        self.points.append(point)

    def rows(self) -> List[Dict[str, object]]:
        """Rows in the same structure the paper's figures/tables plot."""
        return [point.as_dict() for point in self.points]

    def series(self, metric: str = "download_time") -> Dict[str, List[float]]:
        """Group points by label and return the metric series per label."""
        grouped: Dict[str, List[float]] = {}
        for point in self.points:
            value = point.download_time if metric == "download_time" else point.transmissions
            grouped.setdefault(point.label, []).append(value)
        return grouped

    def point(self, label: str, **parameters) -> Optional[SweepPoint]:
        """Find a specific point by label and parameter values."""
        for candidate in self.points:
            if candidate.label != label:
                continue
            if all(candidate.parameters.get(key) == value for key, value in parameters.items()):
                return candidate
        return None

    def summary(self) -> str:
        """A plain-text table of every point (what the benchmarks print)."""
        lines = [f"== {self.name} ==", self.description]
        if not self.points:
            return "\n".join(lines + ["(no data)"])
        columns = sorted({key for point in self.points for key in point.as_dict()})
        header = " | ".join(f"{column:>18}" for column in columns)
        lines.append(header)
        lines.append("-" * len(header))
        for point in self.points:
            row = point.as_dict()
            lines.append(" | ".join(f"{str(row.get(column, '')):>18}" for column in columns))
        return "\n".join(lines)


def aggregate_trials(
    label: str,
    parameters: Dict[str, object],
    results: Sequence[RunResult],
    q: float = 90.0,
) -> SweepPoint:
    """Aggregate per-trial results into one sweep point (90th percentile by default)."""
    if not results:
        raise ValueError("no trial results to aggregate")
    download = percentile([result.mean_download_time for result in results], q)
    transmissions = percentile([float(result.transmissions) for result in results], q)
    completion = mean([result.completion_ratio for result in results])
    extras: Dict[str, float] = {}
    total_events = sum(result.events for result in results)
    if total_events:
        extras["events"] = float(total_events)
    return SweepPoint(
        label=label,
        parameters=dict(parameters),
        download_time=download,
        transmissions=transmissions,
        completion_ratio=completion,
        trials=len(results),
        extras=extras,
    )
