"""Result containers and statistics helpers for the experiment harness.

:class:`RunResult` (one trial), :class:`SweepPoint` (one aggregated
parameter point) and :class:`SweepResult` (one whole experiment) all
round-trip through JSON (``to_dict``/``from_dict`` and
``SweepResult.to_json``/``from_json``), which is what the sweep scheduler's
per-task caching and the experiments CLI persist.
"""

from __future__ import annotations

import json
import math
import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple


def json_safe(value: object) -> object:
    """Map non-finite floats (NaN, ±Inf) to ``None`` — strict-JSON safe.

    ``json.dumps`` happily emits ``NaN``/``Infinity`` tokens, which are not
    JSON and break standard-conforming parsers.  Every ``to_dict`` boundary
    in this module passes numeric fields through this helper so persisted
    files stay strictly valid; serialization itself uses
    ``allow_nan=False`` as a backstop.
    """
    if isinstance(value, float) and not math.isfinite(value):
        return None
    return value


def _number(value: object, default: float = float("nan")) -> object:
    """Inverse of :func:`json_safe` for numeric fields: ``null`` → NaN."""
    return default if value is None else value


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0-100) of ``values`` with linear interpolation.

    The paper reports the 90th percentile of results collected over ten
    trials; this helper matches numpy's default ("linear") behaviour without
    requiring numpy at runtime.
    """
    if not values:
        raise ValueError("cannot take a percentile of no values")
    if not 0 <= q <= 100:
        raise ValueError("q must be within [0, 100]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (q / 100) * (len(ordered) - 1)
    lower = math.floor(rank)
    upper = math.ceil(rank)
    if lower == upper:
        return float(ordered[int(rank)])
    weight = rank - lower
    return float(ordered[lower] * (1 - weight) + ordered[upper] * weight)


def mean(values: Sequence[float]) -> float:
    if not values:
        raise ValueError("cannot take the mean of no values")
    return sum(values) / len(values)


@dataclass
class RunResult:
    """Outcome of one simulation run (one trial, one parameter point)."""

    protocol: str
    seed: int
    parameters: Dict[str, object] = field(default_factory=dict)
    download_times: Dict[str, float] = field(default_factory=dict)
    incomplete_nodes: List[str] = field(default_factory=list)
    transmissions: int = 0
    transmissions_by_kind: Dict[str, int] = field(default_factory=dict)
    transmissions_by_protocol: Dict[str, int] = field(default_factory=dict)
    collisions: int = 0
    losses: int = 0
    duration: float = 0.0
    events: int = 0
    node_loads: Dict[str, Dict[str, float]] = field(default_factory=dict)
    extras: Dict[str, float] = field(default_factory=dict)
    # Optional performance profile (see repro.profiling).  Excluded from
    # equality: it carries wall-clock measurements, which vary run to run,
    # while every other field is deterministic.
    profile: Dict[str, float] = field(default_factory=dict, compare=False)

    @property
    def mean_download_time(self) -> float:
        """Average download time across downloaders (incomplete count as the run duration)."""
        times = list(self.download_times.values())
        times.extend(self.duration for _ in self.incomplete_nodes)
        return mean(times) if times else float("nan")

    @property
    def completion_ratio(self) -> float:
        total = len(self.download_times) + len(self.incomplete_nodes)
        return len(self.download_times) / total if total else 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "protocol": self.protocol,
            "seed": self.seed,
            "parameters": dict(self.parameters),
            "mean_download_time": json_safe(self.mean_download_time),
            "completion_ratio": self.completion_ratio,
            "transmissions": self.transmissions,
            "collisions": self.collisions,
            "losses": self.losses,
            "duration": json_safe(self.duration),
        }

    # --------------------------------------------------------- serialization
    def to_dict(self) -> Dict[str, object]:
        """A JSON-safe dict carrying *every* field (lossless round-trip).

        The ``profile`` key is only emitted when a profile was collected, so
        unprofiled results serialize exactly as they did before profiling
        existed (byte-stable persisted artifacts and cache entries).
        """
        payload = {
            "protocol": self.protocol,
            "seed": self.seed,
            "parameters": dict(self.parameters),
            "download_times": dict(self.download_times),
            "incomplete_nodes": list(self.incomplete_nodes),
            "transmissions": self.transmissions,
            "transmissions_by_kind": dict(self.transmissions_by_kind),
            "transmissions_by_protocol": dict(self.transmissions_by_protocol),
            "collisions": self.collisions,
            "losses": self.losses,
            "duration": json_safe(self.duration),
            "events": self.events,
            "node_loads": {
                node: {key: json_safe(value) for key, value in loads.items()}
                for node, loads in self.node_loads.items()
            },
            "extras": {key: json_safe(value) for key, value in self.extras.items()},
        }
        if self.profile:
            payload["profile"] = {key: json_safe(value) for key, value in self.profile.items()}
        return payload

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "RunResult":
        return cls(
            protocol=data["protocol"],
            seed=data["seed"],
            parameters=dict(data.get("parameters", {})),
            download_times=dict(data.get("download_times", {})),
            incomplete_nodes=list(data.get("incomplete_nodes", [])),
            transmissions=data.get("transmissions", 0),
            transmissions_by_kind=dict(data.get("transmissions_by_kind", {})),
            transmissions_by_protocol=dict(data.get("transmissions_by_protocol", {})),
            collisions=data.get("collisions", 0),
            losses=data.get("losses", 0),
            duration=_number(data.get("duration", 0.0)),
            events=data.get("events", 0),
            node_loads={
                node: {key: _number(value) for key, value in loads.items()}
                for node, loads in data.get("node_loads", {}).items()
            },
            extras={key: _number(value) for key, value in data.get("extras", {}).items()},
            profile=dict(data.get("profile", {})),
        )


def _freeze_parameters(parameters: Dict[str, object]) -> Optional[frozenset]:
    """Hashable signature of a parameter dict, or ``None`` if unhashable."""
    try:
        return frozenset(parameters.items())
    except TypeError:
        return None


@dataclass
class SweepPoint:
    """Aggregated result at one parameter point (over all trials)."""

    label: str
    parameters: Dict[str, object]
    download_time: float
    transmissions: float
    completion_ratio: float
    trials: int
    extras: Dict[str, float] = field(default_factory=dict)
    # Per-trial raw results; populated by the sweep scheduler and carried
    # through JSON persistence, but excluded from equality so aggregates
    # compare identically whether or not the raw trials travelled along.
    trial_results: List[RunResult] = field(
        default_factory=list, compare=False, repr=False
    )

    def as_dict(self) -> Dict[str, object]:
        row = {
            "label": self.label,
            "download_time_s": json_safe(round(self.download_time, 2)),
            "transmissions": json_safe(round(self.transmissions, 1)),
            "completion_ratio": json_safe(round(self.completion_ratio, 3)),
            "trials": self.trials,
        }
        row.update({key: json_safe(round(value, 3)) for key, value in self.extras.items()})
        row.update(self.parameters)
        return row

    # --------------------------------------------------------- serialization
    def to_dict(self) -> Dict[str, object]:
        """A JSON-safe dict (lossless, including per-trial results)."""
        return {
            "label": self.label,
            "parameters": dict(self.parameters),
            "download_time": json_safe(self.download_time),
            "transmissions": json_safe(self.transmissions),
            "completion_ratio": json_safe(self.completion_ratio),
            "trials": self.trials,
            "extras": {key: json_safe(value) for key, value in self.extras.items()},
            "trial_results": [result.to_dict() for result in self.trial_results],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SweepPoint":
        return cls(
            label=data["label"],
            parameters=dict(data.get("parameters", {})),
            download_time=_number(data["download_time"]),
            transmissions=_number(data["transmissions"]),
            completion_ratio=_number(data["completion_ratio"]),
            trials=data["trials"],
            extras={key: _number(value) for key, value in data.get("extras", {}).items()},
            trial_results=[
                RunResult.from_dict(result)
                for result in data.get("trial_results", [])
            ],
        )


@dataclass
class SweepResult:
    """A full experiment: a list of aggregated points (one per series/parameter)."""

    name: str
    description: str
    points: List[SweepPoint] = field(default_factory=list)
    # Lookup indexes maintained by add_point (see point()).
    _by_label: Dict[str, List[SweepPoint]] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )
    _exact: Dict[Tuple[str, frozenset], SweepPoint] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        existing, self.points = self.points, []
        for point in existing:
            self.add_point(point)

    def add_point(self, point: SweepPoint) -> None:
        self.points.append(point)
        self._by_label.setdefault(point.label, []).append(point)
        signature = _freeze_parameters(point.parameters)
        if signature is not None:
            self._exact.setdefault((point.label, signature), point)

    def rows(self) -> List[Dict[str, object]]:
        """Rows in the same structure the paper's figures/tables plot."""
        return [point.as_dict() for point in self.points]

    def series(self, metric: str = "download_time") -> Dict[str, List[float]]:
        """Deprecated: group points by label and return the metric series per label.

        Delegates to :meth:`repro.experiments.query.ResultSet.series`, which
        accepts *any* point-level metric (scalar fields, ``extras`` keys,
        parameters) instead of the historical two.  Unknown metric names now
        raise ``KeyError`` instead of silently falling back to
        ``transmissions``.
        """
        warnings.warn(
            "SweepResult.series() is deprecated; use "
            "ResultSet.from_sweep(result).series(metric) (repro.experiments.query)",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.experiments.query import ResultSet

        return ResultSet.from_sweep(self).series(metric)

    def point(self, label: str, **parameters) -> Optional[SweepPoint]:
        """Find a specific point by label and parameter values.

        Full-parameter lookups hit the ``(label, frozen parameters)`` index
        built by :meth:`add_point` in O(1); partial-parameter lookups scan
        only the points sharing ``label`` (first match in insertion order,
        like the historical linear scan).
        """
        signature = _freeze_parameters(parameters) if parameters else None
        if signature is not None:
            exact = self._exact.get((label, signature))
            if exact is not None:
                return exact
        for candidate in self._by_label.get(label, []):
            if all(candidate.parameters.get(key) == value for key, value in parameters.items()):
                return candidate
        return None

    def summary(self) -> str:
        """Deprecated: a plain-text table of every point.

        Delegates to :func:`repro.experiments.report.to_text` — the single
        table-rendering path shared with the ``report``/``export`` CLI
        subcommands (byte-identical to the historical output).
        """
        warnings.warn(
            "SweepResult.summary() is deprecated; use "
            "repro.experiments.report.to_text(result)",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.experiments.report import to_text

        return to_text(self)

    # --------------------------------------------------------- serialization
    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "description": self.description,
            "points": [point.to_dict() for point in self.points],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SweepResult":
        return cls(
            name=data["name"],
            description=data.get("description", ""),
            points=[SweepPoint.from_dict(point) for point in data.get("points", [])],
        )

    def to_json(self, indent: int = 2) -> str:
        """Serialize the whole sweep — per-trial :class:`RunResult`s included.

        Strict JSON: non-finite floats were mapped to ``null`` at the
        ``to_dict`` boundaries, and ``allow_nan=False`` guarantees no
        invalid ``NaN``/``Infinity`` token can ever reach a persisted file.
        """
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True, allow_nan=False)

    @classmethod
    def from_json(cls, text: str) -> "SweepResult":
        return cls.from_dict(json.loads(text))


def aggregate_trials(
    label: str,
    parameters: Dict[str, object],
    results: Sequence[RunResult],
    q: float = 90.0,
) -> SweepPoint:
    """Aggregate per-trial results into one sweep point (90th percentile by default)."""
    if not results:
        raise ValueError("no trial results to aggregate")
    download = percentile([result.mean_download_time for result in results], q)
    transmissions = percentile([float(result.transmissions) for result in results], q)
    completion = mean([result.completion_ratio for result in results])
    extras: Dict[str, float] = {}
    total_events = sum(result.events for result in results)
    if total_events:
        extras["events"] = float(total_events)
    # Churn counters sum across trials; only present when churn was active,
    # so zero-churn aggregates stay byte-identical to pre-churn output.
    churn_keys = sorted(
        {key for result in results for key in result.extras if key.startswith("churn.")}
    )
    for key in churn_keys:
        extras[key] = float(sum(result.extras.get(key, 0.0) for result in results))
    # Fault and recovery counters, same discipline: absent for zero-fault
    # runs.  Counts sum across trials; rate/latency keys aggregate by their
    # suffix — ``_mean`` and goodput average over the trials reporting them,
    # ``_max`` takes the worst trial.
    fault_keys = sorted(
        {
            key
            for result in results
            for key in result.extras
            if key.startswith("faults.") or key.startswith("recovery.")
        }
    )
    for key in fault_keys:
        values = [result.extras[key] for result in results if key in result.extras]
        if key.endswith("_max"):
            extras[key] = float(max(values))
        elif key.endswith("_mean") or key == "recovery.goodput_under_fault":
            extras[key] = float(sum(values) / len(values))
        else:
            extras[key] = float(sum(values))
    return SweepPoint(
        label=label,
        parameters=dict(parameters),
        download_time=download,
        transmissions=transmissions,
        completion_ratio=completion,
        trials=len(results),
        extras=extras,
    )
