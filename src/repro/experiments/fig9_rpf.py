"""Fig. 9a / Fig. 9b — data-fetching strategy and collision mitigation trade-offs.

* :class:`RpfStrategyExperiment` (Fig. 9a): file-collection download time
  versus WiFi range for the four combinations of {same, random} starting
  packet and {encounter-based, local-neighborhood} RPF, with peers fetching
  the bitmaps of every peer in range before downloading data (the setting
  used for that figure).
* :class:`PebaExperiment` (Fig. 9b): number of transmissions versus WiFi
  range for both RPF flavours, with and without PEBA.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.experiments.metrics import SweepResult
from repro.experiments.runner import run_trials
from repro.experiments.scenario import ExperimentConfig

DEFAULT_WIFI_RANGES = (20.0, 40.0, 60.0, 80.0, 100.0)


class RpfStrategyExperiment:
    """Fig. 9a: download time for the RPF variants and start-packet policies."""

    VARIANTS = (
        ("Same packet, encounter-based RPF", {"rpf_strategy": "encounter", "random_start": False}),
        ("Random packet, encounter-based RPF", {"rpf_strategy": "encounter", "random_start": True}),
        ("Same packet, local neighborhood RPF", {"rpf_strategy": "local", "random_start": False}),
        ("Random packet, local neighborhood RPF", {"rpf_strategy": "local", "random_start": True}),
    )

    def __init__(
        self,
        config: Optional[ExperimentConfig] = None,
        wifi_ranges: Sequence[float] = DEFAULT_WIFI_RANGES,
    ):
        self.config = config if config is not None else ExperimentConfig.small()
        self.wifi_ranges = list(wifi_ranges)

    def run(self) -> SweepResult:
        result = SweepResult(
            name="Fig. 9a — download time per RPF strategy",
            description="Peers fetch the bitmaps of all peers in range before downloading data.",
        )
        for wifi_range in self.wifi_ranges:
            for label, overrides in self.VARIANTS:
                config = self.config.with_overrides(wifi_range=wifi_range)
                dapes = config.dapes.with_overrides(bitmap_exchange="before", max_bitmaps=None, **overrides)
                point = run_trials(
                    "dapes",
                    config,
                    label,
                    parameters={"wifi_range": wifi_range, **overrides},
                    dapes_config=dapes,
                )
                result.add_point(point)
        return result


class PebaExperiment:
    """Fig. 9b: transmissions for both RPF flavours, with and without PEBA."""

    VARIANTS = (
        ("Encounter-based RPF (w/o PEBA)", {"rpf_strategy": "encounter", "peba_enabled": False}),
        ("Local neighborhood RPF (w/o PEBA)", {"rpf_strategy": "local", "peba_enabled": False}),
        ("Encounter-based RPF (PEBA)", {"rpf_strategy": "encounter", "peba_enabled": True}),
        ("Local neighborhood RPF (PEBA)", {"rpf_strategy": "local", "peba_enabled": True}),
    )

    def __init__(
        self,
        config: Optional[ExperimentConfig] = None,
        wifi_ranges: Sequence[float] = DEFAULT_WIFI_RANGES,
    ):
        self.config = config if config is not None else ExperimentConfig.small()
        self.wifi_ranges = list(wifi_ranges)

    def run(self) -> SweepResult:
        result = SweepResult(
            name="Fig. 9b — transmissions per RPF strategy, with and without PEBA",
            description="Number of packet transmissions needed to distribute the collection.",
        )
        for wifi_range in self.wifi_ranges:
            for label, overrides in self.VARIANTS:
                config = self.config.with_overrides(wifi_range=wifi_range)
                dapes = config.dapes.with_overrides(bitmap_exchange="before", max_bitmaps=None, **overrides)
                point = run_trials(
                    "dapes",
                    config,
                    label,
                    parameters={"wifi_range": wifi_range, **overrides},
                    dapes_config=dapes,
                )
                result.add_point(point)
        return result
