"""Fig. 9a / Fig. 9b — data-fetching strategy and collision mitigation trade-offs.

* ``fig9a`` (:data:`SPEC_FIG9A`): file-collection download time versus WiFi
  range for the four combinations of {same, random} starting packet and
  {encounter-based, local-neighborhood} RPF, with peers fetching the
  bitmaps of every peer in range before downloading data (the setting used
  for that figure).
* ``fig9b`` (:data:`SPEC_FIG9B`): number of transmissions versus WiFi range
  for both RPF flavours, with and without PEBA.

Both are registered :class:`ExperimentSpec`s; run them with
``run_experiment("fig9a")`` or ``python -m repro.experiments run fig9a``.
The historical classes remain as thin deprecated shims.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.experiments.metrics import SweepResult
from repro.experiments.scenario import ExperimentConfig
from repro.experiments.spec import (
    Axis,
    ExperimentSpec,
    Variant,
    deprecated_shim,
    register_experiment,
    warn_deprecated_shim,
)
from repro.experiments.sweep import run_experiment

DEFAULT_WIFI_RANGES = (20.0, 40.0, 60.0, 80.0, 100.0)


def _dapes_variants(table: Sequence[Tuple[str, Dict[str, object]]]) -> Tuple[Variant, ...]:
    """Labelled DAPES variants whose parameters mirror their config overrides."""
    return tuple(
        Variant(
            label=label,
            overrides={f"dapes_{key}": value for key, value in overrides.items()},
            parameters=dict(overrides),
        )
        for label, overrides in table
    )


_RPF_VARIANTS = (
    ("Same packet, encounter-based RPF", {"rpf_strategy": "encounter", "random_start": False}),
    ("Random packet, encounter-based RPF", {"rpf_strategy": "encounter", "random_start": True}),
    ("Same packet, local neighborhood RPF", {"rpf_strategy": "local", "random_start": False}),
    ("Random packet, local neighborhood RPF", {"rpf_strategy": "local", "random_start": True}),
)

_PEBA_VARIANTS = (
    ("Encounter-based RPF (w/o PEBA)", {"rpf_strategy": "encounter", "peba_enabled": False}),
    ("Local neighborhood RPF (w/o PEBA)", {"rpf_strategy": "local", "peba_enabled": False}),
    ("Encounter-based RPF (PEBA)", {"rpf_strategy": "encounter", "peba_enabled": True}),
    ("Local neighborhood RPF (PEBA)", {"rpf_strategy": "local", "peba_enabled": True}),
)

SPEC_FIG9A = register_experiment(
    ExperimentSpec(
        name="fig9a",
        title="Fig. 9a — download time per RPF strategy",
        description="Peers fetch the bitmaps of all peers in range before downloading data.",
        artefacts=("Fig. 9a",),
        axes=(Axis(name="wifi_range", values=DEFAULT_WIFI_RANGES, config_key="wifi_range"),),
        variants=_dapes_variants(_RPF_VARIANTS),
        overrides={"dapes_bitmap_exchange": "before", "dapes_max_bitmaps": None},
    )
)

SPEC_FIG9B = register_experiment(
    ExperimentSpec(
        name="fig9b",
        title="Fig. 9b — transmissions per RPF strategy, with and without PEBA",
        description="Number of packet transmissions needed to distribute the collection.",
        artefacts=("Fig. 9b",),
        axes=(Axis(name="wifi_range", values=DEFAULT_WIFI_RANGES, config_key="wifi_range"),),
        variants=_dapes_variants(_PEBA_VARIANTS),
        overrides={"dapes_bitmap_exchange": "before", "dapes_max_bitmaps": None},
    )
)


# ------------------------------------------------- deprecated class shims
@deprecated_shim(SPEC_FIG9A)
class RpfStrategyExperiment:
    VARIANTS = _RPF_VARIANTS

    def __init__(
        self,
        config: Optional[ExperimentConfig] = None,
        wifi_ranges: Sequence[float] = DEFAULT_WIFI_RANGES,
    ):
        warn_deprecated_shim(self)
        self.config = config if config is not None else ExperimentConfig.small()
        self.wifi_ranges = list(wifi_ranges)

    def run(self) -> SweepResult:
        return run_experiment(
            self.spec, self.config, axes={"wifi_range": tuple(self.wifi_ranges)}
        )


@deprecated_shim(SPEC_FIG9B)
class PebaExperiment(RpfStrategyExperiment):
    VARIANTS = _PEBA_VARIANTS
