"""Churn specs: protocol performance under population dynamics.

Not paper figures — the robustness artefacts the ROADMAP names as an open
item.  Two specs:

* ``churn`` — DAPES under sustained Poisson churn, sweeping the mean online
  session length.  Shorter sessions mean more mid-transfer departures (30 %
  of them abrupt kills by default), so the curve shows how download time
  degrades as the population destabilises.
* ``flashcrowd`` — the millions-of-users stress proxy: every downloader
  starts offline and arrives in bursts, sweeping the burst count (more
  bursts = the same crowd arriving more gradually).

Both record churn counters (``churn.arrivals``, ``churn.departures``,
``churn.abrupt_kills``, ``churn.orphaned_sends``) in each point's extras,
summed across trials.  Axis values reach the model through the ``churn_``
override prefix (:meth:`ExperimentConfig.with_overrides`), so CLI
``--axis mean_session=30,60`` sweeps work like any other axis.
"""

from __future__ import annotations

from repro.experiments.spec import Axis, ExperimentSpec, Variant, register_experiment

#: Mean online session lengths (seconds) swept by the ``churn`` spec.
DEFAULT_SESSION_LENGTHS = (60.0, 120.0, 240.0)

#: Burst counts swept by the ``flashcrowd`` spec.
DEFAULT_BURST_COUNTS = (1, 3, 6)

SPEC_CHURN = register_experiment(
    ExperimentSpec(
        name="churn",
        title="Churn — download time vs mean session length",
        description=(
            "DAPES under sustained Poisson churn: nodes alternate online "
            "sessions and offline gaps, 30% of departures abrupt kills; "
            "sweeps the mean session length."
        ),
        axes=(
            Axis(
                name="mean_session",
                values=DEFAULT_SESSION_LENGTHS,
                config_key="churn_mean_session",
            ),
        ),
        variants=(Variant(label="DAPES mean_session={mean_session}s"),),
        overrides={"churn": "poisson"},
    )
)

SPEC_FLASHCROWD = register_experiment(
    ExperimentSpec(
        name="flashcrowd",
        title="Flash crowd — download time vs arrival burst count",
        description=(
            "The disaster-scenario stress proxy: every downloader starts "
            "offline and arrives in jittered bursts; sweeps the number of "
            "arrival waves."
        ),
        axes=(
            Axis(
                name="bursts",
                values=DEFAULT_BURST_COUNTS,
                config_key="churn_bursts",
            ),
        ),
        variants=(Variant(label="DAPES bursts={bursts}"),),
        overrides={"churn": "flashcrowd"},
    )
)
