"""Fig. 10a / Fig. 10b — DAPES versus the IP-based baselines.

One registered spec (``fig10``, aliases ``fig10a`` / ``fig10b``) produces
both figures: the file-collection download time (Fig. 10a) and the number
of transmissions (Fig. 10b) of DAPES, Bithoc and Ekta over the same
topology and workload.

The paper's headline numbers, which EXPERIMENTS.md tracks against this
harness: DAPES achieves 15-27 % / 19-33 % lower download time and 62-71 % /
50-59 % lower overhead than Bithoc / Ekta respectively — quantified by
:func:`improvements`.  The historical class remains as a thin deprecated
shim.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.metrics import SweepResult
from repro.experiments.scenario import ExperimentConfig
from repro.experiments.spec import (
    Axis,
    ExperimentSpec,
    Variant,
    deprecated_shim,
    register_experiment,
    warn_deprecated_shim,
)
from repro.experiments.sweep import run_experiment

DEFAULT_WIFI_RANGES = (20.0, 40.0, 60.0, 80.0, 100.0)
DEFAULT_PROTOCOLS = ("dapes", "bithoc", "ekta")

PROTOCOL_LABELS = {"dapes": "DAPES", "bithoc": "Bithoc", "ekta": "Ekta"}


def protocol_variants(protocols: Sequence[str]) -> Tuple[Variant, ...]:
    return tuple(
        Variant(
            label=PROTOCOL_LABELS.get(protocol, protocol),
            protocol=protocol,
            parameters={"protocol": protocol},
        )
        for protocol in protocols
    )


SPEC_FIG10 = register_experiment(
    ExperimentSpec(
        name="fig10",
        title="Fig. 10a/10b — comparison to IP-based solutions",
        description=(
            "download_time_s reproduces Fig. 10a; transmissions reproduces Fig. 10b."
        ),
        artefacts=("Fig. 10a", "Fig. 10b"),
        aliases=("fig10a", "fig10b"),
        axes=(Axis(name="wifi_range", values=DEFAULT_WIFI_RANGES, config_key="wifi_range"),),
        variants=protocol_variants(DEFAULT_PROTOCOLS),
    )
)


def improvements(result: SweepResult, metric: str = "download_time") -> Dict[str, List[float]]:
    """Per-range relative improvement of DAPES over each baseline.

    Returns, for every baseline label, the list (one entry per WiFi range)
    of ``1 - dapes/baseline`` — the quantity the paper reports as "X %
    lower download times / overheads".
    """
    by_label: Dict[str, Dict[float, float]] = {}
    for point in result.points:
        wifi_range = point.parameters.get("wifi_range")
        value = point.download_time if metric == "download_time" else point.transmissions
        by_label.setdefault(point.label, {})[wifi_range] = value
    dapes = by_label.get(PROTOCOL_LABELS["dapes"], {})
    relative: Dict[str, List[float]] = {}
    for label, values in by_label.items():
        if label == PROTOCOL_LABELS["dapes"]:
            continue
        shared_ranges = sorted(set(values) & set(dapes))
        relative[label] = [
            1.0 - (dapes[wifi_range] / values[wifi_range]) if values[wifi_range] else 0.0
            for wifi_range in shared_ranges
        ]
    return relative


# ------------------------------------------------- deprecated class shim
@deprecated_shim(SPEC_FIG10)
class ComparisonExperiment:
    def __init__(
        self,
        config: Optional[ExperimentConfig] = None,
        wifi_ranges: Sequence[float] = DEFAULT_WIFI_RANGES,
        protocols: Sequence[str] = DEFAULT_PROTOCOLS,
    ):
        warn_deprecated_shim(self)
        self.config = config if config is not None else ExperimentConfig.small()
        self.wifi_ranges = list(wifi_ranges)
        self.protocols = list(protocols)

    def run(self, protocols: Optional[Sequence[str]] = None) -> SweepResult:
        protocols = list(protocols) if protocols is not None else self.protocols
        spec = self.spec.with_variants(protocol_variants(protocols))
        return run_experiment(
            spec, self.config, axes={"wifi_range": tuple(self.wifi_ranges)}
        )

    improvements = staticmethod(improvements)
