"""Fig. 9e / Fig. 9f — scaling the collection.

* :class:`FileCountExperiment` (Fig. 9e): download time for a varying number
  of files per collection (each file of the base size).
* :class:`FileSizeExperiment` (Fig. 9f): download time for a varying file
  size (the collection keeps its base number of files).

At paper scale the sweeps are 10-70 files of 1 MB, and 1-15 MB files; the
benchmark presets sweep the same *ratios* at reduced absolute sizes so the
curves keep their shape (EXPERIMENTS.md documents the scaling).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.metrics import SweepResult
from repro.experiments.runner import run_trials
from repro.experiments.scenario import ExperimentConfig

DEFAULT_WIFI_RANGES = (20.0, 40.0, 60.0, 80.0, 100.0)
# Multipliers over the base workload, mirroring 10/30/50/70 files and 1/5/10/15 MB.
DEFAULT_FILE_COUNT_FACTORS = (1, 3, 5, 7)
DEFAULT_FILE_SIZE_FACTORS = (1, 5, 10, 15)


class FileCountExperiment:
    """Fig. 9e: download time vs number of files in the collection."""

    def __init__(
        self,
        config: Optional[ExperimentConfig] = None,
        wifi_ranges: Sequence[float] = DEFAULT_WIFI_RANGES,
        count_factors: Sequence[int] = DEFAULT_FILE_COUNT_FACTORS,
    ):
        self.config = config if config is not None else ExperimentConfig.small()
        self.wifi_ranges = list(wifi_ranges)
        self.count_factors = list(count_factors)

    def run(self) -> SweepResult:
        result = SweepResult(
            name="Fig. 9e — download time vs number of files",
            description="Each file keeps the base size; the number of files grows.",
        )
        base_files = self.config.num_files
        for wifi_range in self.wifi_ranges:
            for factor in self.count_factors:
                num_files = base_files * factor
                config = self.config.with_overrides(wifi_range=wifi_range, num_files=num_files)
                point = run_trials(
                    "dapes",
                    config,
                    f"Number of files={num_files}",
                    parameters={"wifi_range": wifi_range, "num_files": num_files},
                )
                result.add_point(point)
        return result


class FileSizeExperiment:
    """Fig. 9f: download time vs file size."""

    def __init__(
        self,
        config: Optional[ExperimentConfig] = None,
        wifi_ranges: Sequence[float] = DEFAULT_WIFI_RANGES,
        size_factors: Sequence[int] = DEFAULT_FILE_SIZE_FACTORS,
    ):
        self.config = config if config is not None else ExperimentConfig.small()
        self.wifi_ranges = list(wifi_ranges)
        self.size_factors = list(size_factors)

    def run(self) -> SweepResult:
        result = SweepResult(
            name="Fig. 9f — download time vs file size",
            description="The collection keeps the base number of files; each file grows.",
        )
        base_size = self.config.file_size
        for wifi_range in self.wifi_ranges:
            for factor in self.size_factors:
                file_size = base_size * factor
                config = self.config.with_overrides(wifi_range=wifi_range, file_size=file_size)
                point = run_trials(
                    "dapes",
                    config,
                    f"File size factor={factor}x",
                    parameters={"wifi_range": wifi_range, "file_size": file_size},
                )
                result.add_point(point)
        return result
