"""Fig. 9e / Fig. 9f — scaling the collection.

* ``fig9e`` (:data:`SPEC_FIG9E`): download time for a varying number of
  files per collection (each file of the base size).
* ``fig9f`` (:data:`SPEC_FIG9F`): download time for a varying file size
  (the collection keeps its base number of files).

At paper scale the sweeps are 10-70 files of 1 MB, and 1-15 MB files; the
specs sweep *factors* over the preset's base workload (``Axis.scale_by``),
so reduced-scale presets keep the same ratios and the curves keep their
shape (EXPERIMENTS.md documents the scaling).  The historical classes
remain as thin deprecated shims.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.metrics import SweepResult
from repro.experiments.scenario import ExperimentConfig
from repro.experiments.spec import (
    Axis,
    ExperimentSpec,
    Variant,
    deprecated_shim,
    register_experiment,
    warn_deprecated_shim,
)
from repro.experiments.sweep import run_experiment

DEFAULT_WIFI_RANGES = (20.0, 40.0, 60.0, 80.0, 100.0)
# Multipliers over the base workload, mirroring 10/30/50/70 files and 1/5/10/15 MB.
DEFAULT_FILE_COUNT_FACTORS = (1, 3, 5, 7)
DEFAULT_FILE_SIZE_FACTORS = (1, 5, 10, 15)

SPEC_FIG9E = register_experiment(
    ExperimentSpec(
        name="fig9e",
        title="Fig. 9e — download time vs number of files",
        description="Each file keeps the base size; the number of files grows.",
        artefacts=("Fig. 9e",),
        axes=(
            Axis(name="wifi_range", values=DEFAULT_WIFI_RANGES, config_key="wifi_range"),
            Axis(name="num_files_factor", values=DEFAULT_FILE_COUNT_FACTORS, scale_by="num_files"),
        ),
        variants=(Variant(label="Number of files={num_files}"),),
    )
)

SPEC_FIG9F = register_experiment(
    ExperimentSpec(
        name="fig9f",
        title="Fig. 9f — download time vs file size",
        description="The collection keeps the base number of files; each file grows.",
        artefacts=("Fig. 9f",),
        axes=(
            Axis(name="wifi_range", values=DEFAULT_WIFI_RANGES, config_key="wifi_range"),
            Axis(name="file_size_factor", values=DEFAULT_FILE_SIZE_FACTORS, scale_by="file_size"),
        ),
        variants=(Variant(label="File size factor={file_size_factor}x"),),
    )
)


# ------------------------------------------------- deprecated class shims
@deprecated_shim(SPEC_FIG9E)
class FileCountExperiment:
    def __init__(
        self,
        config: Optional[ExperimentConfig] = None,
        wifi_ranges: Sequence[float] = DEFAULT_WIFI_RANGES,
        count_factors: Sequence[int] = DEFAULT_FILE_COUNT_FACTORS,
    ):
        warn_deprecated_shim(self)
        self.config = config if config is not None else ExperimentConfig.small()
        self.wifi_ranges = list(wifi_ranges)
        self.count_factors = list(count_factors)

    def run(self) -> SweepResult:
        return run_experiment(
            self.spec,
            self.config,
            axes={
                "wifi_range": tuple(self.wifi_ranges),
                "num_files_factor": tuple(self.count_factors),
            },
        )


@deprecated_shim(SPEC_FIG9F)
class FileSizeExperiment:
    def __init__(
        self,
        config: Optional[ExperimentConfig] = None,
        wifi_ranges: Sequence[float] = DEFAULT_WIFI_RANGES,
        size_factors: Sequence[int] = DEFAULT_FILE_SIZE_FACTORS,
    ):
        warn_deprecated_shim(self)
        self.config = config if config is not None else ExperimentConfig.small()
        self.wifi_ranges = list(wifi_ranges)
        self.size_factors = list(size_factors)

    def run(self) -> SweepResult:
        return run_experiment(
            self.spec,
            self.config,
            axes={
                "wifi_range": tuple(self.wifi_ranges),
                "file_size_factor": tuple(self.size_factors),
            },
        )
