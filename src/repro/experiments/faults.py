"""Fault specs: protocol resilience under deterministic network faults.

Not paper figures — the robustness artefacts the ROADMAP names as an open
item.  Two specs, both with the invariant monitor enabled and the protocol
hardening switched on (jittered retransmission backoff, dark-neighbour
fallback):

* ``faults`` — DAPES under sustained link flapping: pairwise links drop
  into loss episodes and recover, sweeping the mean outage length.  The
  curve shows how download time degrades as outages lengthen relative to
  the retransmission/backoff machinery.
* ``partition`` — a membership partition splits the population mid-run and
  heals after a while, sweeping the partition duration.  Recovery extras
  (``recovery.time_to_recover_mean``/``_max``,
  ``recovery.goodput_under_fault``) quantify how fast the swarm re-knits
  after the heal.

Fault counters (``faults.*``) sum across trials; recovery latencies
aggregate mean-of-means / max-of-maxes (see
:func:`repro.experiments.metrics.aggregate_trials`).  Axis values reach the
model through the ``fault_`` override prefix
(:meth:`ExperimentConfig.with_overrides`), so CLI ``--axis
mean_down=2,5,10`` sweeps work like any other axis.
"""

from __future__ import annotations

from repro.experiments.spec import Axis, ExperimentSpec, Variant, register_experiment

#: Mean link outage lengths (seconds) swept by the ``faults`` spec.
DEFAULT_OUTAGE_LENGTHS = (2.0, 5.0, 10.0)

#: Partition durations (seconds) swept by the ``partition`` spec.
DEFAULT_PARTITION_DURATIONS = (15.0, 30.0, 60.0)

#: The resilience-hardening switches both specs run with.
HARDENING = {
    "invariants": True,
    "dapes_retransmit_jitter": 0.3,
    "dapes_dark_neighbor_fallback": True,
}

SPEC_FAULTS = register_experiment(
    ExperimentSpec(
        name="faults",
        title="Faults — download time vs mean link outage length",
        description=(
            "DAPES under sustained link flapping: pairwise links alternate "
            "clean stretches and outage episodes; sweeps the mean outage "
            "length with invariant monitoring and hardening enabled."
        ),
        axes=(
            Axis(
                name="mean_down",
                values=DEFAULT_OUTAGE_LENGTHS,
                config_key="fault_mean_down",
            ),
        ),
        variants=(Variant(label="DAPES mean_down={mean_down}s"),),
        overrides=dict(HARDENING, faults="link_flap"),
    )
)

SPEC_PARTITION = register_experiment(
    ExperimentSpec(
        name="partition",
        title="Partition — download time vs partition duration",
        description=(
            "A membership partition splits the population at t=30s and "
            "heals after the swept duration; recovery extras record how "
            "fast cross-boundary delivery resumes after the heal."
        ),
        axes=(
            Axis(
                name="duration",
                values=DEFAULT_PARTITION_DURATIONS,
                config_key="fault_duration",
            ),
        ),
        variants=(Variant(label="DAPES partition={duration}s"),),
        overrides=dict(HARDENING, faults="partition", fault_at=30.0),
    )
)
