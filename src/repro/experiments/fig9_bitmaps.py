"""Fig. 9c / Fig. 9d — how many advertisements to exchange, and when.

* :class:`BitmapsBeforeDataExperiment` (Fig. 9c): peers first exchange a
  fixed number of bitmaps (1-4, or every peer in range) and only then start
  downloading data.
* :class:`BitmapsInterleavedExperiment` (Fig. 9d): the same bitmap budgets,
  but bitmap exchanges are interleaved with data downloading — the setting
  the paper recommends (16-23 % shorter downloads).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.metrics import SweepResult
from repro.experiments.runner import run_trials
from repro.experiments.scenario import ExperimentConfig

DEFAULT_WIFI_RANGES = (20.0, 40.0, 60.0, 80.0, 100.0)
DEFAULT_BITMAP_BUDGETS = (1, 2, 3, 4, None)  # None == "all bitmaps"


def _budget_label(budget) -> str:
    if budget is None:
        return "All bitmaps"
    return f"{budget} bitmap" + ("s" if budget != 1 else "")


class _BitmapBudgetExperiment:
    """Shared sweep over (wifi range x bitmap budget) for one exchange mode."""

    exchange_mode = "before"
    figure = "Fig. 9c"
    description = "Bitmaps are exchanged before any data is downloaded."

    def __init__(
        self,
        config: Optional[ExperimentConfig] = None,
        wifi_ranges: Sequence[float] = DEFAULT_WIFI_RANGES,
        bitmap_budgets: Sequence[Optional[int]] = DEFAULT_BITMAP_BUDGETS,
    ):
        self.config = config if config is not None else ExperimentConfig.small()
        self.wifi_ranges = list(wifi_ranges)
        self.bitmap_budgets = list(bitmap_budgets)

    def run(self) -> SweepResult:
        result = SweepResult(
            name=f"{self.figure} — download time vs number of exchanged bitmaps",
            description=self.description,
        )
        for wifi_range in self.wifi_ranges:
            for budget in self.bitmap_budgets:
                config = self.config.with_overrides(wifi_range=wifi_range)
                dapes = config.dapes.with_overrides(
                    bitmap_exchange=self.exchange_mode, max_bitmaps=budget
                )
                point = run_trials(
                    "dapes",
                    config,
                    _budget_label(budget),
                    parameters={"wifi_range": wifi_range, "max_bitmaps": budget},
                    dapes_config=dapes,
                )
                result.add_point(point)
        return result


class BitmapsBeforeDataExperiment(_BitmapBudgetExperiment):
    """Fig. 9c: bitmaps first, then data."""

    exchange_mode = "before"
    figure = "Fig. 9c"
    description = "Bitmaps are exchanged before any data is downloaded."


class BitmapsInterleavedExperiment(_BitmapBudgetExperiment):
    """Fig. 9d: bitmap exchanges interleaved with data downloading."""

    exchange_mode = "interleaved"
    figure = "Fig. 9d"
    description = "Bitmap exchanges are interleaved with data downloading."
