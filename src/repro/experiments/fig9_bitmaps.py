"""Fig. 9c / Fig. 9d — how many advertisements to exchange, and when.

* ``fig9c`` (:data:`SPEC_FIG9C`): peers first exchange a fixed number of
  bitmaps (1-4, or every peer in range) and only then start downloading
  data.
* ``fig9d`` (:data:`SPEC_FIG9D`): the same bitmap budgets, but bitmap
  exchanges are interleaved with data downloading — the setting the paper
  recommends (16-23 % shorter downloads).

Both are registered :class:`ExperimentSpec`s; the historical classes remain
as thin deprecated shims.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.experiments.metrics import SweepResult
from repro.experiments.scenario import ExperimentConfig
from repro.experiments.spec import (
    Axis,
    ExperimentSpec,
    Variant,
    deprecated_shim,
    register_experiment,
    warn_deprecated_shim,
)
from repro.experiments.sweep import run_experiment

DEFAULT_WIFI_RANGES = (20.0, 40.0, 60.0, 80.0, 100.0)
DEFAULT_BITMAP_BUDGETS = (1, 2, 3, 4, None)  # None == "all bitmaps"


def _budget_label(budget) -> str:
    if budget is None:
        return "All bitmaps"
    return f"{budget} bitmap" + ("s" if budget != 1 else "")


def budget_variants(budgets: Sequence[Optional[int]]) -> Tuple[Variant, ...]:
    return tuple(
        Variant(
            label=_budget_label(budget),
            overrides={"dapes_max_bitmaps": budget},
            parameters={"max_bitmaps": budget},
        )
        for budget in budgets
    )


SPEC_FIG9C = register_experiment(
    ExperimentSpec(
        name="fig9c",
        title="Fig. 9c — download time vs number of exchanged bitmaps",
        description="Bitmaps are exchanged before any data is downloaded.",
        artefacts=("Fig. 9c",),
        axes=(Axis(name="wifi_range", values=DEFAULT_WIFI_RANGES, config_key="wifi_range"),),
        variants=budget_variants(DEFAULT_BITMAP_BUDGETS),
        overrides={"dapes_bitmap_exchange": "before"},
    )
)

SPEC_FIG9D = register_experiment(
    ExperimentSpec(
        name="fig9d",
        title="Fig. 9d — download time vs number of exchanged bitmaps",
        description="Bitmap exchanges are interleaved with data downloading.",
        artefacts=("Fig. 9d",),
        axes=(Axis(name="wifi_range", values=DEFAULT_WIFI_RANGES, config_key="wifi_range"),),
        variants=budget_variants(DEFAULT_BITMAP_BUDGETS),
        overrides={"dapes_bitmap_exchange": "interleaved"},
    )
)


# ------------------------------------------------- deprecated class shims
class _BitmapBudgetExperiment:
    """Deprecated shim base: shared sweep over (wifi range x bitmap budget)."""

    def __init__(
        self,
        config: Optional[ExperimentConfig] = None,
        wifi_ranges: Sequence[float] = DEFAULT_WIFI_RANGES,
        bitmap_budgets: Sequence[Optional[int]] = DEFAULT_BITMAP_BUDGETS,
    ):
        warn_deprecated_shim(self)
        self.config = config if config is not None else ExperimentConfig.small()
        self.wifi_ranges = list(wifi_ranges)
        self.bitmap_budgets = list(bitmap_budgets)

    def run(self) -> SweepResult:
        spec = self.spec.with_variants(budget_variants(self.bitmap_budgets))
        return run_experiment(
            spec, self.config, axes={"wifi_range": tuple(self.wifi_ranges)}
        )


@deprecated_shim(SPEC_FIG9C)
class BitmapsBeforeDataExperiment(_BitmapBudgetExperiment):
    pass


@deprecated_shim(SPEC_FIG9D)
class BitmapsInterleavedExperiment(_BitmapBudgetExperiment):
    pass
