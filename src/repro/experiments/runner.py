"""Trial runners: execute one scenario and collect the paper's metrics."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core import DapesConfig
from repro.experiments.metrics import RunResult, SweepPoint, aggregate_trials
from repro.experiments.scenario import (
    ExperimentConfig,
    build_dapes_scenario,
    build_ip_scenario,
)


def run_dapes_trial(
    config: ExperimentConfig,
    seed: int,
    dapes_config: Optional[DapesConfig] = None,
    parameters: Optional[Dict[str, object]] = None,
) -> RunResult:
    """Run one DAPES trial and collect download times and overhead."""
    scenario = build_dapes_scenario(config, seed, dapes_config=dapes_config)
    sim = scenario.sim
    expected = len(scenario.downloader_ids)
    completed: set = set()

    def _on_complete(peer, collection_id, when) -> None:
        if collection_id != scenario.collection_id:
            return
        completed.add(peer.node_id)
        if len(completed) >= expected:
            sim.stop()

    for node_id in scenario.downloader_ids:
        scenario.nodes[node_id].peer.on_collection_complete(_on_complete)

    scenario.start()
    sim.run(until=config.max_duration)

    download_times: Dict[str, float] = {}
    incomplete: List[str] = []
    for node_id in scenario.downloader_ids:
        elapsed = scenario.nodes[node_id].peer.download_time(scenario.collection_id)
        if elapsed is None:
            incomplete.append(node_id)
        else:
            download_times[node_id] = elapsed

    node_loads = {
        node_id: node.peer.load.as_dict() for node_id, node in scenario.nodes.items()
    }
    stats = scenario.medium.stats
    return RunResult(
        protocol="dapes",
        seed=seed,
        parameters=dict(parameters or {}),
        download_times=download_times,
        incomplete_nodes=incomplete,
        transmissions=stats.frames_transmitted,
        transmissions_by_kind=dict(stats.transmitted_by_kind),
        transmissions_by_protocol=dict(stats.transmitted_by_protocol),
        collisions=stats.collisions,
        losses=stats.losses,
        duration=sim.now,
        node_loads=node_loads,
    )


def run_ip_trial(
    config: ExperimentConfig,
    seed: int,
    protocol: str,
    parameters: Optional[Dict[str, object]] = None,
) -> RunResult:
    """Run one Bithoc or Ekta trial and collect the same metrics."""
    scenario = build_ip_scenario(config, seed, protocol)
    sim = scenario.sim
    expected = len(scenario.downloader_ids)
    completed: set = set()

    def _on_complete(peer, collection_id, when) -> None:
        completed.add(peer.node_id)
        if len(completed) >= expected:
            sim.stop()

    for node_id in scenario.downloader_ids:
        scenario.peers[node_id].on_complete(_on_complete)

    scenario.start()
    sim.run(until=config.max_duration)

    download_times: Dict[str, float] = {}
    incomplete: List[str] = []
    for node_id in scenario.downloader_ids:
        elapsed = scenario.peers[node_id].download_time()
        if elapsed is None:
            incomplete.append(node_id)
        else:
            download_times[node_id] = elapsed

    node_loads = {node_id: peer.load.as_dict() for node_id, peer in scenario.peers.items()}
    stats = scenario.medium.stats
    return RunResult(
        protocol=protocol,
        seed=seed,
        parameters=dict(parameters or {}),
        download_times=download_times,
        incomplete_nodes=incomplete,
        transmissions=stats.frames_transmitted,
        transmissions_by_kind=dict(stats.transmitted_by_kind),
        transmissions_by_protocol=dict(stats.transmitted_by_protocol),
        collisions=stats.collisions,
        losses=stats.losses,
        duration=sim.now,
        node_loads=node_loads,
    )


def run_protocol_trial(
    protocol: str,
    config: ExperimentConfig,
    seed: int,
    dapes_config: Optional[DapesConfig] = None,
    parameters: Optional[Dict[str, object]] = None,
) -> RunResult:
    """Dispatch a single trial by protocol name ('dapes', 'bithoc', 'ekta')."""
    if protocol == "dapes":
        return run_dapes_trial(config, seed, dapes_config=dapes_config, parameters=parameters)
    if protocol in ("bithoc", "ekta"):
        return run_ip_trial(config, seed, protocol, parameters=parameters)
    raise ValueError(f"unknown protocol {protocol!r}")


def run_trials(
    protocol: str,
    config: ExperimentConfig,
    label: str,
    parameters: Optional[Dict[str, object]] = None,
    dapes_config: Optional[DapesConfig] = None,
) -> SweepPoint:
    """Run ``config.trials`` trials and aggregate them into one sweep point."""
    results = []
    for trial in range(config.trials):
        seed = config.base_seed + trial * 1009
        results.append(
            run_protocol_trial(
                protocol,
                config,
                seed,
                dapes_config=dapes_config,
                parameters=parameters,
            )
        )
    return aggregate_trials(label, parameters or {}, results, q=config.percentile)
