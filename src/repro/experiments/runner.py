"""Trial runners: execute scenarios and collect the paper's metrics.

One generic :func:`run_protocol_trial` drives any protocol registered in
:mod:`repro.experiments.scenario` through the uniform :class:`Scenario`
hooks, and :func:`run_trials` fans the per-trial work out over a process
pool when :attr:`ExperimentConfig.workers` is above one.  Parallel execution
is seed-deterministic: every trial derives its own seed from
``config.base_seed`` exactly as in the serial path and results are
aggregated in trial order, so the resulting :class:`SweepPoint` is identical
whichever mode produced it.
"""

from __future__ import annotations

import time
import warnings
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Dict, List, Optional

from repro.core import DapesConfig
from repro.experiments.metrics import RunResult, SweepPoint, aggregate_trials
from repro.experiments.scenario import ExperimentConfig, get_builder
from repro.faults import InvariantViolationError, build_invariant_monitor
from repro.profiling import collect_run_profile


def run_protocol_trial(
    protocol: str,
    config: ExperimentConfig,
    seed: int,
    dapes_config: Optional[DapesConfig] = None,
    parameters: Optional[Dict[str, object]] = None,
) -> RunResult:
    """Run one trial of any registered protocol and collect the paper's metrics."""
    scenario = get_builder(protocol).build(config, seed, dapes_config=dapes_config)
    sim = scenario.sim
    expected = len(scenario.downloader_ids)
    completed: set = set()

    def _on_complete(node_id: str, when: float) -> None:
        completed.add(node_id)
        if len(completed) >= expected:
            sim.stop()

    scenario.watch_completion(_on_complete)
    # The invariant monitor is pure observation (no RNG draws, no scheduled
    # events), so installing it never changes what the simulation computes.
    monitor = build_invariant_monitor(
        config, sim, scenario.medium, faults=getattr(scenario, "faults", None)
    )
    scenario.start()
    profiling = bool(getattr(config, "profile", False))
    start_clock = time.perf_counter() if profiling else 0.0
    sim.run(until=config.max_duration)
    wall_clock_s = time.perf_counter() - start_clock if profiling else 0.0

    download_times: Dict[str, float] = {}
    incomplete: List[str] = []
    for node_id in scenario.downloader_ids:
        elapsed = scenario.download_time(node_id)
        if elapsed is None:
            incomplete.append(node_id)
        else:
            download_times[node_id] = elapsed

    stats = scenario.medium.stats
    churn = scenario.churn
    faults = getattr(scenario, "faults", None)
    profile = (
        collect_run_profile(sim, scenario.medium, wall_clock_s, churn=churn, faults=faults)
        if profiling
        else {}
    )
    # Churn/fault counters ride in extras only when the subsystem is active,
    # so zero-churn, zero-fault results stay byte-identical to prior output.
    extras = churn.metrics() if churn is not None else {}
    if faults is not None:
        extras.update(faults.metrics())
    if monitor is not None:
        violations = monitor.finalize(scenario)
        if violations:
            raise InvariantViolationError(violations)
    return RunResult(
        protocol=protocol,
        seed=seed,
        parameters=dict(parameters or {}),
        download_times=download_times,
        incomplete_nodes=incomplete,
        transmissions=stats.frames_transmitted,
        transmissions_by_kind=dict(stats.transmitted_by_kind),
        transmissions_by_protocol=dict(stats.transmitted_by_protocol),
        collisions=stats.collisions,
        losses=stats.losses,
        duration=sim.now,
        events=sim.events_processed,
        node_loads=scenario.node_loads(),
        profile=profile,
        extras=extras,
    )


def run_dapes_trial(
    config: ExperimentConfig,
    seed: int,
    dapes_config: Optional[DapesConfig] = None,
    parameters: Optional[Dict[str, object]] = None,
) -> RunResult:
    """Run one DAPES trial and collect download times and overhead."""
    return run_protocol_trial(
        "dapes", config, seed, dapes_config=dapes_config, parameters=parameters
    )


def run_ip_trial(
    config: ExperimentConfig,
    seed: int,
    protocol: str,
    parameters: Optional[Dict[str, object]] = None,
) -> RunResult:
    """Run one Bithoc or Ekta trial and collect the same metrics."""
    if protocol not in ("bithoc", "ekta"):
        raise ValueError(f"unknown IP baseline {protocol!r}")
    return run_protocol_trial(protocol, config, seed, parameters=parameters)


def trial_seeds(config: ExperimentConfig) -> List[int]:
    """The deterministic per-trial seeds used by serial and parallel runs alike."""
    return [config.base_seed + trial * 1009 for trial in range(config.trials)]


def _pool_trial(args) -> RunResult:
    """Module-level worker so the process pool can pickle it."""
    protocol, config, seed, dapes_config, parameters = args
    return run_protocol_trial(
        protocol, config, seed, dapes_config=dapes_config, parameters=parameters
    )


def run_trials(
    protocol: str,
    config: ExperimentConfig,
    label: str,
    parameters: Optional[Dict[str, object]] = None,
    dapes_config: Optional[DapesConfig] = None,
    workers: Optional[int] = None,
) -> SweepPoint:
    """Run ``config.trials`` trials and aggregate them into one sweep point.

    ``workers`` (default :attr:`ExperimentConfig.workers`) above one runs the
    trials on a process pool; the aggregate is identical to the serial path
    because seeds and aggregation order do not depend on the execution mode.
    """
    workers = config.workers if workers is None else workers
    seeds = trial_seeds(config)
    results: Optional[List[RunResult]] = None
    if workers > 1 and len(seeds) > 1:
        tasks = [(protocol, config, seed, dapes_config, parameters) for seed in seeds]
        try:
            with ProcessPoolExecutor(max_workers=min(workers, len(seeds))) as pool:
                results = list(pool.map(_pool_trial, tasks))
        except (OSError, BrokenProcessPool) as exc:
            # Process pools may be unavailable (restricted sandboxes); the
            # serial path below produces the same aggregate, just slower.
            warnings.warn(
                f"process pool unavailable ({exc!r}); "
                f"falling back to serial execution of {len(seeds)} trials",
                RuntimeWarning,
                stacklevel=2,
            )
            results = None
    if results is None:
        results = [
            run_protocol_trial(
                protocol,
                config,
                seed,
                dapes_config=dapes_config,
                parameters=parameters,
            )
            for seed in seeds
        ]
    point = aggregate_trials(label, parameters or {}, results, q=config.percentile)
    # Carry the raw trials so trial-level queries (ResultSet.trials()) and
    # trial-level diffs work on single-point runs too; excluded from
    # equality, so aggregates still compare identically without them.
    point.trial_results = list(results)
    return point
