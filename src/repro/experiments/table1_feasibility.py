"""Table I — the real-world feasibility study, reproduced as scripted scenarios.

The paper runs DAPES on five MacBooks in an outdoor campus setting (WiFi
range ≈ 50 m) under three scenarios (Fig. 8):

1. **Data sharing through a carrier** — peer A generates a collection; D
   fetches it from A and physically carries it to two other network
   segments where B and C download it.
2. **Data sharing through a repository** — C generates a collection; a
   stationary repository downloads it from C; A and B later download it
   from the repository at the same time.
3. **Data sharing among moving nodes** — A generates a collection and
   shares it with B, C and D while all four move around, with periods of
   complete disconnection and periods where everyone is within range.

This module recreates the movement patterns with scripted mobility and
reports, per scenario: the time until every downloader holds the collection,
the number of transmissions, and the system-load proxies defined in
:mod:`repro.core.stats` (memory overhead, context switches, system calls,
page faults).  Absolute OS-level numbers cannot be reproduced in a
simulation; the proxies are expected to preserve the *ordering* the paper
observes (scenario 3 fastest and cheapest in transmissions but heaviest in
memory because of the extra multi-hop state).

The study is registered as the ``table1`` spec with bespoke trial and
aggregation hooks (one scripted scenario per sweep point); the historical
:class:`FeasibilityStudy` class remains as a thin deprecated shim around
:func:`run_feasibility_scenario`.

Seeding note: the registry path derives each scenario's simulation seed
from ``config.base_seed`` (preset default 42), whereas the historical
class defaulted to its own ``seed=7``.  To reproduce the archived Table I
numbers through the new API, pass ``base_seed=7`` (CLI: ``run table1
--seed 7``) — with the same seed the two paths are identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.crypto.keys import KeyPair
from repro.crypto.trust import TrustAnchorStore
from repro.mobility import ScriptedMobility
from repro.simulation import Simulator
from repro.wireless import ChannelConfig, WirelessMedium
from repro.core import CollectionBuilder, build_dapes_peer, build_repository
from repro.experiments.metrics import RunResult, SweepPoint, SweepResult
from repro.experiments.scenario import ExperimentConfig, PRODUCER_IDENTITY
from repro.experiments.spec import (
    ExperimentSpec,
    Variant,
    deprecated_shim,
    register_experiment,
    warn_deprecated_shim,
)
from repro.experiments.sweep import run_experiment

REAL_WORLD_WIFI_RANGE = 50.0
DEFAULT_FEASIBILITY_SEED = 7
SCENARIO_NAMES = {1: "Scenario 1 (carrier)", 2: "Scenario 2 (repository)", 3: "Scenario 3 (moving nodes)"}


@dataclass
class FeasibilityScenarioResult:
    """Raw outcome of one feasibility scenario."""

    scenario: int
    download_time: float
    all_complete: bool
    transmissions: int
    memory_overhead_mb: float
    context_switches: int
    system_calls: int
    page_faults: int

    def as_row(self) -> Dict[str, object]:
        return {
            "scenario": self.scenario,
            "download_time_s": round(self.download_time, 1),
            "transmissions": self.transmissions,
            "memory_overhead_mb": round(self.memory_overhead_mb, 3),
            "context_switches": self.context_switches,
            "system_calls": self.system_calls,
            "page_faults": self.page_faults,
            "all_complete": self.all_complete,
        }


# ------------------------------------------------------ scenario scripts
def _scenario_carrier(mobility: ScriptedMobility):
    """Fig. 8a: D carries the collection from A's segment to B's and C's."""
    mobility.add_static_node("A", 0.0, 0.0)
    mobility.add_static_node("B", 150.0, 0.0)
    mobility.add_static_node("C", 150.0, 150.0)
    mobility.add_node(
        "D",
        [
            (0.0, 15.0, 0.0),     # next to A, fetching the collection
            (60.0, 15.0, 0.0),
            (100.0, 140.0, 0.0),  # walk to B's segment
            (160.0, 140.0, 0.0),
            (200.0, 140.0, 140.0),  # walk to C's segment
            (400.0, 140.0, 140.0),
        ],
    )
    return "A", ["B", "C", "D"], []


def _scenario_repository(mobility: ScriptedMobility):
    """Fig. 8b: the repo downloads from C; A and B download from the repo."""
    mobility.add_static_node("repo", 75.0, 75.0)
    mobility.add_node(
        "C",
        [
            (0.0, 80.0, 75.0),     # producer next to the repo
            (80.0, 80.0, 75.0),
            (120.0, 150.0, 150.0),  # then walks away
            (400.0, 150.0, 150.0),
        ],
    )
    mobility.add_node(
        "A",
        [
            (0.0, 0.0, 0.0),
            (60.0, 0.0, 0.0),
            (110.0, 70.0, 75.0),   # arrives at the repo
            (400.0, 70.0, 75.0),
        ],
    )
    mobility.add_node(
        "B",
        [
            (0.0, 0.0, 150.0),
            (60.0, 0.0, 150.0),
            (115.0, 75.0, 80.0),   # arrives at the repo at about the same time
            (400.0, 75.0, 80.0),
        ],
    )
    return "C", ["A", "B"], ["repo"]


def _scenario_moving(mobility: ScriptedMobility):
    """Fig. 8c: four peers move, sometimes disconnected, sometimes all in range."""
    centre = (75.0, 75.0)
    corners = {
        "A": (0.0, 0.0),
        "B": (150.0, 0.0),
        "C": (150.0, 150.0),
        "D": (0.0, 150.0),
    }
    for node_id, (x, y) in corners.items():
        mobility.add_node(
            node_id,
            [
                (0.0, x, y),            # start isolated in a corner
                (20.0, x, y),
                (50.0, *centre),        # first gathering: everyone in range
                (90.0, *centre),
                (120.0, x, y),          # disperse again
                (150.0, x, y),
                (180.0, *centre),       # second gathering
                (400.0, *centre),
            ],
        )
    return "A", ["B", "C", "D"], []


_SCENARIO_BUILDERS = {1: _scenario_carrier, 2: _scenario_repository, 3: _scenario_moving}


def run_feasibility_scenario(
    config: ExperimentConfig, scenario: int, seed: int = DEFAULT_FEASIBILITY_SEED
) -> FeasibilityScenarioResult:
    """Run one of the three scenarios and collect Table I metrics.

    The simulation seed is ``seed + scenario`` (each scenario gets its own
    deterministic world, as in the original study).
    """
    if scenario not in _SCENARIO_BUILDERS:
        raise ValueError("scenario must be 1, 2 or 3")
    sim = Simulator(seed=seed + scenario)
    mobility = ScriptedMobility()
    producer_id, downloader_ids, repository_ids = _SCENARIO_BUILDERS[scenario](mobility)

    medium = WirelessMedium(
        sim, mobility, ChannelConfig(wifi_range=REAL_WORLD_WIFI_RANGE, loss_rate=config.loss_rate)
    )
    producer_key = KeyPair.generate(PRODUCER_IDENTITY, seed=b"producer-key")
    trust = TrustAnchorStore()
    trust.add_anchor_key(producer_key)
    dapes_config = config.dapes

    nodes = {}
    for node_id in mobility.node_ids:
        if node_id in repository_ids:
            nodes[node_id] = build_repository(sim, medium, node_id, config=dapes_config, trust=trust)
        else:
            key = producer_key if node_id == producer_id else None
            nodes[node_id] = build_dapes_peer(
                sim, medium, node_id, config=dapes_config, trust=trust, key=key
            )

    collection = (
        CollectionBuilder(
            f"feasibility-{scenario}", 1533783192, packet_size=config.packet_size,
            producer=PRODUCER_IDENTITY,
        )
    )
    for index in range(config.num_files):
        collection.add_file(f"image-{index:03d}", size_bytes=config.file_size)
    collection = collection.build()
    metadata = nodes[producer_id].peer.publish_collection(collection)
    for node_id in downloader_ids:
        nodes[node_id].peer.join(metadata.collection)

    expected = set(downloader_ids) | set(repository_ids)
    completed: set = set()

    def _on_complete(peer, collection_id, when) -> None:
        completed.add(peer.node_id)
        if completed >= expected:
            sim.stop()

    for node_id in expected:
        nodes[node_id].peer.on_collection_complete(_on_complete)

    for node in nodes.values():
        node.start()
    sim.run(until=config.max_duration)

    completion_times = [
        nodes[node_id].peer.download_time(metadata.collection)
        for node_id in expected
    ]
    all_complete = all(time is not None for time in completion_times)
    download_time = max(
        (time for time in completion_times if time is not None), default=config.max_duration
    )
    if not all_complete:
        download_time = sim.now

    participant_loads = [nodes[node_id].peer.load for node_id in nodes]
    memory = max(load.memory_overhead_mb for load in participant_loads)
    return FeasibilityScenarioResult(
        scenario=scenario,
        download_time=download_time,
        all_complete=all_complete,
        transmissions=medium.stats.frames_transmitted,
        memory_overhead_mb=memory,
        context_switches=sum(load.context_switches for load in participant_loads),
        system_calls=sum(load.system_calls for load in participant_loads),
        page_faults=sum(load.page_faults for load in participant_loads),
    )


# ----------------------------------------------------------- spec hooks
def run_feasibility_trial(
    protocol: str,
    config: ExperimentConfig,
    seed: int,
    parameters: Dict[str, object],
) -> RunResult:
    """Sweep-scheduler trial hook: one scripted scenario per sweep point."""
    outcome = run_feasibility_scenario(config, parameters["scenario"], seed)
    return RunResult(
        protocol=protocol,
        seed=seed,
        parameters=dict(parameters),
        transmissions=outcome.transmissions,
        duration=outcome.download_time,
        extras={
            "download_time": outcome.download_time,
            "all_complete": 1.0 if outcome.all_complete else 0.0,
            "memory_overhead_mb": outcome.memory_overhead_mb,
            "context_switches": float(outcome.context_switches),
            "system_calls": float(outcome.system_calls),
            "page_faults": float(outcome.page_faults),
        },
    )


def aggregate_feasibility(
    label: str,
    parameters: Dict[str, object],
    results: Sequence[RunResult],
    q: float,
) -> SweepPoint:
    """Sweep-scheduler aggregation hook: Table I rows are single-trial."""
    result = results[0]
    extras = dict(result.extras)
    download_time = extras.pop("download_time")
    all_complete = extras.pop("all_complete")
    return SweepPoint(
        label=label,
        parameters=dict(parameters),
        download_time=download_time,
        transmissions=float(result.transmissions),
        completion_ratio=all_complete,
        trials=len(results),
        extras=extras,
    )


def _feasibility_config(config: ExperimentConfig) -> ExperimentConfig:
    """Pin the real-world WiFi range; each scenario is one scripted trial."""
    return config.with_overrides(wifi_range=REAL_WORLD_WIFI_RANGE, trials=1)


SPEC_TABLE1 = register_experiment(
    ExperimentSpec(
        name="table1",
        title="Table I — real-world feasibility study",
        description="Three scripted scenarios mirroring Fig. 8; system-load columns are proxies.",
        artefacts=("Table I",),
        aliases=("tablei", "table-i"),
        variants=tuple(
            Variant(label=SCENARIO_NAMES[scenario], parameters={"scenario": scenario})
            for scenario in (1, 2, 3)
        ),
        trial_fn=run_feasibility_trial,
        aggregate_fn=aggregate_feasibility,
        config_transform=_feasibility_config,
    )
)


# ------------------------------------------------- deprecated class shim
@deprecated_shim(SPEC_TABLE1)
class FeasibilityStudy:
    def __init__(self, config: Optional[ExperimentConfig] = None, seed: int = DEFAULT_FEASIBILITY_SEED):
        warn_deprecated_shim(self)
        base = config if config is not None else ExperimentConfig.small()
        self.config = base.with_overrides(wifi_range=REAL_WORLD_WIFI_RANGE)
        self.seed = seed

    # ------------------------------------------------------------------- API
    def run(self, scenarios: Optional[List[int]] = None) -> SweepResult:
        spec = self.spec
        if scenarios:  # falsy (None or []) has always meant "all three"
            for scenario in scenarios:
                if scenario not in _SCENARIO_BUILDERS:
                    raise ValueError("scenario must be 1, 2 or 3")
            spec = spec.with_variants(
                Variant(label=SCENARIO_NAMES[scenario], parameters={"scenario": scenario})
                for scenario in scenarios
            )
        return run_experiment(spec, self.config.with_overrides(base_seed=self.seed))

    def run_scenario(self, scenario: int) -> FeasibilityScenarioResult:
        """Run one of the three scenarios and collect Table I metrics."""
        return run_feasibility_scenario(self.config, scenario, self.seed)
