"""Pluggable scenario topologies.

A :class:`Topology` decides *where the nodes are and how they move*; the
protocol builders in :mod:`repro.experiments.scenario` decide *what runs on
them*.  Keeping the two orthogonal means every protocol can be exercised on
every topology, and new workloads only need to register a topology here.

Three topologies ship with the harness:

``quadrant``
    The paper's Fig. 7 setup: stationary repositories at the four quadrant
    centres of a square area, mobile nodes roaming the whole area with
    random direction and speed.
``clusters``
    Disaster zones: the area splits into four quadrant cells, each with its
    own repository at the cell centre, and mobile nodes confined to their
    home cell.  Data crosses zones only through repositories near borders
    and node encounters along cell edges — a much harsher partitioned
    workload than ``quadrant``.
``corridor``
    A sparse relay chain: a long thin strip (5:1 aspect) with repositories
    spaced along the centreline and mobile nodes roaming the strip.  Most
    node pairs are far beyond WiFi range, so delivery leans on multi-hop
    forwarding and physical data carriers.
``urban_grid``
    A Manhattan city: square blocks (buildings) separated by streets.
    Repositories sit at intersections, mobile nodes random-walk the street
    graph (:class:`~repro.mobility.street.StreetGridMobility`), and
    :meth:`Topology.build_environment` emits the buildings as obstacle
    geometry — pair it with ``propagation="obstacle"`` to make the
    buildings opaque to radio.  ``ExperimentConfig.obstacle_density``
    controls the fraction of blocks actually built.

A topology decides both *where the nodes are* (``build_mobility``) and what
the physical world looks like (``build_environment``, optional — the open
field returns ``None``).  Register additional topologies with
:func:`register_topology`::

    @register_topology("ring")
    class RingTopology(Topology):
        def build_mobility(self, config, sim, names): ...
"""

from __future__ import annotations

import hashlib
from abc import ABC, abstractmethod
from typing import Dict, List, Optional, Tuple, Type

from repro.mobility import (
    CompositeMobility,
    MobilityModel,
    RandomDirectionMobility,
    StaticPlacement,
    StreetGridMobility,
)
from repro.simulation import Simulator
from repro.wireless.environment import Environment, Obstacle

_TOPOLOGIES: Dict[str, Type["Topology"]] = {}


def register_topology(name: str):
    """Class decorator: make a :class:`Topology` available under ``name``."""

    def decorator(cls: Type["Topology"]) -> Type["Topology"]:
        if name in _TOPOLOGIES:
            raise ValueError(f"topology {name!r} is already registered")
        cls.name = name
        _TOPOLOGIES[name] = cls
        return cls

    return decorator


def get_topology(name: str) -> "Topology":
    """Instantiate the topology registered under ``name``."""
    try:
        cls = _TOPOLOGIES[name]
    except KeyError:
        raise ValueError(
            f"unknown topology {name!r}; available: {sorted(_TOPOLOGIES)}"
        ) from None
    return cls()


def available_topologies() -> List[str]:
    """Names of all registered topologies."""
    return sorted(_TOPOLOGIES)


class Topology(ABC):
    """Node naming plus placement/mobility for one scenario layout."""

    name: str = ""

    def node_names(self, config) -> Dict[str, List[str]]:
        """Stable node ids per role (same roles for every topology)."""
        return {
            "stationary": [f"repo-{index}" for index in range(config.stationary_nodes)],
            "downloaders": [f"mobile-{index}" for index in range(config.mobile_downloaders)],
            "pure": [f"fwd-{index}" for index in range(config.pure_forwarders)],
            "intermediate": [f"relay-{index}" for index in range(config.intermediate_nodes)],
        }

    @abstractmethod
    def build_mobility(
        self, config, sim: Simulator, names: Dict[str, List[str]]
    ) -> MobilityModel:
        """Place the stationary nodes and wire up mobile-node movement."""

    def build_environment(self, config) -> Optional[Environment]:
        """Obstacle geometry of this layout, or ``None`` for an open field.

        The scenario builder threads the environment into the wireless
        medium, where obstacle-aware propagation models ray-test links
        against it.  Topologies without physical structure (the default)
        return ``None``.
        """
        return None

    @staticmethod
    def mobile_ids(names: Dict[str, List[str]]) -> List[str]:
        return names["downloaders"] + names["pure"] + names["intermediate"]


@register_topology("quadrant")
class QuadrantTopology(Topology):
    """The paper's Fig. 7 layout: quadrant-centre repositories, free roaming."""

    def build_mobility(self, config, sim, names):
        mobility = CompositeMobility()
        static = StaticPlacement()
        anchors = [
            (config.area_size * 0.25, config.area_size * 0.25),
            (config.area_size * 0.75, config.area_size * 0.25),
            (config.area_size * 0.25, config.area_size * 0.75),
            (config.area_size * 0.75, config.area_size * 0.75),
        ]
        for index, node_id in enumerate(names["stationary"]):
            x, y = anchors[index % len(anchors)]
            static.place(node_id, x, y)
            mobility.assign(node_id, static)
        mobile = RandomDirectionMobility(
            width=config.area_size,
            height=config.area_size,
            min_speed=config.min_speed,
            max_speed=config.max_speed,
            rng=sim.rng("mobility"),
        )
        for node_id in self.mobile_ids(names):
            mobile.add_node(node_id)
            mobility.assign(node_id, mobile)
        return mobility


@register_topology("clusters")
class ClusteredTopology(Topology):
    """Disaster zones: four quadrant cells, nodes confined to their home cell."""

    GRID = 2  # 2x2 cells

    def build_mobility(self, config, sim, names):
        mobility = CompositeMobility()
        static = StaticPlacement()
        grid = self.GRID
        cell_size = config.area_size / grid
        cells = [
            (column * cell_size, row * cell_size)
            for row in range(grid)
            for column in range(grid)
        ]
        # One repository at each cell centre (cycling when there are more).
        for index, node_id in enumerate(names["stationary"]):
            origin_x, origin_y = cells[index % len(cells)]
            static.place(node_id, origin_x + cell_size / 2, origin_y + cell_size / 2)
            mobility.assign(node_id, static)
        # Mobile nodes are dealt round-robin to cells and never leave them.
        walkers = [
            RandomDirectionMobility(
                width=cell_size,
                height=cell_size,
                min_speed=config.min_speed,
                max_speed=config.max_speed,
                rng=sim.rng(f"mobility.cell-{index}"),
                origin=origin,
            )
            for index, origin in enumerate(cells)
        ]
        for index, node_id in enumerate(self.mobile_ids(names)):
            walker = walkers[index % len(walkers)]
            walker.add_node(node_id)
            mobility.assign(node_id, walker)
        return mobility


@register_topology("corridor")
class CorridorTopology(Topology):
    """Sparse relay chain along a long thin strip (length 5x the width)."""

    ASPECT = 5.0

    def build_mobility(self, config, sim, names):
        mobility = CompositeMobility()
        static = StaticPlacement()
        length = config.area_size * self.ASPECT
        width = config.area_size
        # Repositories form the relay backbone, evenly spaced on the midline.
        count = max(len(names["stationary"]), 1)
        for index, node_id in enumerate(names["stationary"]):
            x = length * (index + 1) / (count + 1)
            static.place(node_id, x, width / 2)
            mobility.assign(node_id, static)
        mobile = RandomDirectionMobility(
            width=length,
            height=width,
            min_speed=config.min_speed,
            max_speed=config.max_speed,
            rng=sim.rng("mobility"),
        )
        for node_id in self.mobile_ids(names):
            mobile.add_node(node_id)
            mobility.assign(node_id, mobile)
        return mobility


@register_topology("urban_grid")
class UrbanGridTopology(Topology):
    """Manhattan blocks: nodes on the street graph, buildings in between.

    The area splits into ``BLOCKS`` x ``BLOCKS`` square blocks; streets run
    between them (and along the area boundary) with a width of
    ``STREET_FRACTION`` of the block pitch.  Mobile nodes random-walk the
    street centrelines, repositories sit at evenly spread intersections,
    and :meth:`build_environment` emits the built blocks — shrunk to leave
    the streets clear — as rectangular obstacles.

    :attr:`ExperimentConfig.obstacle_density` selects which fraction of the
    blocks is actually built (the rest are open plazas).  Selection is a
    deterministic pseudo-random order over block coordinates, independent
    of the trial seed, so a density sweep grows the same city monotonically
    across every variant and trial.
    """

    BLOCKS = 3               # blocks per side; streets = BLOCKS + 1 per direction
    STREET_FRACTION = 0.15   # street width as a fraction of the block pitch
    TRACE_MARGIN = 60.0      # extra seconds of trace beyond max_duration

    def geometry(self, config) -> Tuple[Tuple[float, ...], float]:
        """``(street centrelines, street width)`` for one axis (square area)."""
        pitch = config.area_size / self.BLOCKS
        centrelines = tuple(index * pitch for index in range(self.BLOCKS + 1))
        return centrelines, pitch * self.STREET_FRACTION

    def block_order(self) -> List[Tuple[int, int]]:
        """Every block coordinate, in the deterministic build order."""
        blocks = [(column, row) for row in range(self.BLOCKS) for column in range(self.BLOCKS)]
        blocks.sort(
            key=lambda cell: hashlib.sha256(f"block:{cell[0]}:{cell[1]}".encode()).digest()
        )
        return blocks

    def build_mobility(self, config, sim, names):
        mobility = CompositeMobility()
        static = StaticPlacement()
        lines, _width = self.geometry(config)
        intersections = [(x, y) for y in lines for x in lines]
        # Repositories walk the intersection list at a stride of one row
        # plus one column (coprime with the row-major width), so successive
        # repositories land on a diagonal across the city; a row-multiple
        # stride would collapse them all onto one boundary street.
        stride = len(lines) + 1
        for index, node_id in enumerate(names["stationary"]):
            x, y = intersections[(index * stride) % len(intersections)]
            static.place(node_id, x, y)
            mobility.assign(node_id, static)
        walkers = StreetGridMobility(
            xs=lines,
            ys=lines,
            min_speed=config.min_speed,
            max_speed=config.max_speed,
            rng=sim.rng("mobility.street"),
            duration=config.max_duration + self.TRACE_MARGIN,
        )
        for node_id in self.mobile_ids(names):
            walkers.add_node(node_id)
            mobility.assign(node_id, walkers)
        return mobility

    def build_environment(self, config) -> Optional[Environment]:
        density = getattr(config, "obstacle_density", 1.0)
        if density <= 0.0:
            return Environment()
        lines, street_width = self.geometry(config)
        half = street_width / 2
        blocks = self.block_order()
        built = blocks[: max(0, min(len(blocks), round(density * len(blocks))))]
        obstacles = []
        for column, row in built:
            obstacles.append(
                Obstacle(
                    lines[column] + half,
                    lines[row] + half,
                    lines[column + 1] - half,
                    lines[row + 1] - half,
                )
            )
        return Environment(obstacles=obstacles)
