"""Throughput scaling: simulator events/sec as the node population grows.

Not a paper figure — a first-class *performance* artefact.  The ROADMAP's
perf trajectory tracks events/sec on one fixed benchmark config (fig9a);
this spec makes the other axis visible: how throughput scales with node
count, which is where the array-native hot path (``ChannelConfig.
array_backend``) pulls ahead of the scalar reference paths.  Per-trial
profiles are always collected (the ``profile`` override below), so
``profile.engine.events_per_sec`` is a queryable metric::

    repro-experiments run scaling --store
    repro-experiments export <key> --metric profile.engine.events_per_sec --level trial

The swept axis scales the preset's mobile-downloader population, the group
that dominates both medium traffic and neighbor-query load; the resolved
count is recorded under ``mobile_downloaders`` in every row.  Wall-clock
derived metrics vary machine to machine — compare scaling *shapes* (and
check the metadata's ``array_backend``) rather than absolute rates, and
note ``repro-experiments diff`` flags cross-backend comparisons.
"""

from __future__ import annotations

from repro.experiments.spec import Axis, ExperimentSpec, Variant, register_experiment

#: Multipliers over the preset's mobile-downloader count (small preset: 6,
#: so the default sweep runs 6/12/24/48 mobile downloaders).
DEFAULT_NODE_FACTORS = (1, 2, 4, 8)

SPEC_SCALING = register_experiment(
    ExperimentSpec(
        name="scaling",
        title="Throughput scaling — events/sec vs node count",
        description=(
            "Simulator throughput (profile.engine.events_per_sec) as the "
            "mobile-downloader population scales; the perf counterpart to "
            "the paper-figure specs."
        ),
        axes=(
            Axis(
                name="node_factor",
                values=DEFAULT_NODE_FACTORS,
                scale_by="mobile_downloaders",
            ),
        ),
        variants=(
            Variant(label="Mobile downloaders={mobile_downloaders}"),
            # The region-sharded medium (repro.wireless.sharded): byte-
            # identical download/overhead results to the unsharded variant
            # (asserted in tests/test_sharded_medium.py), so any events/sec
            # difference between the two series is pure medium overhead /
            # speedup — the interleaved A/B the ROADMAP perf trajectory and
            # the BENCH_scaling artifact record.
            Variant(
                label="Mobile downloaders={mobile_downloaders}, sharded K=4",
                overrides={"shards": 4, "shard_workers": 4},
                parameters={"sharded": 1},
            ),
        ),
        # Profiles are the point of this spec: events/sec lives there.
        # (trials stays CLI-controllable; spec overrides would shadow it.)
        overrides={"profile": True},
    )
)
