"""Fig. 9g / Fig. 9h — the impact of multi-hop forwarding.

One experiment produces both figures: the download time (Fig. 9g) and the
number of transmissions (Fig. 9h) when intermediate nodes (pure forwarders
and DAPES nodes with no knowledge about the requested data) forward
0 % (single-hop), 20 %, 40 % or 60 % of received Interests.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.metrics import SweepResult
from repro.experiments.runner import run_trials
from repro.experiments.scenario import ExperimentConfig

DEFAULT_WIFI_RANGES = (20.0, 40.0, 60.0, 80.0, 100.0)
DEFAULT_PROBABILITIES = (None, 0.2, 0.4, 0.6)  # None == single-hop


def _probability_label(probability) -> str:
    if probability is None:
        return "Single-hop"
    return f"Multi-hop, forwarding probability={int(probability * 100)}%"


class ForwardingProbabilityExperiment:
    """Figs. 9g and 9h: download time and overhead vs forwarding probability."""

    def __init__(
        self,
        config: Optional[ExperimentConfig] = None,
        wifi_ranges: Sequence[float] = DEFAULT_WIFI_RANGES,
        probabilities: Sequence[Optional[float]] = DEFAULT_PROBABILITIES,
    ):
        self.config = config if config is not None else ExperimentConfig.small()
        self.wifi_ranges = list(wifi_ranges)
        self.probabilities = list(probabilities)

    def run(self) -> SweepResult:
        result = SweepResult(
            name="Fig. 9g/9h — impact of multi-hop forwarding probability",
            description=(
                "download_time_s reproduces Fig. 9g; transmissions reproduces Fig. 9h "
                "for the same sweep."
            ),
        )
        for wifi_range in self.wifi_ranges:
            for probability in self.probabilities:
                config = self.config.with_overrides(wifi_range=wifi_range)
                if probability is None:
                    dapes = config.dapes.with_overrides(multi_hop=False, forwarding_probability=0.0)
                else:
                    dapes = config.dapes.with_overrides(
                        multi_hop=True, forwarding_probability=probability
                    )
                point = run_trials(
                    "dapes",
                    config,
                    _probability_label(probability),
                    parameters={"wifi_range": wifi_range, "forwarding_probability": probability},
                    dapes_config=dapes,
                )
                result.add_point(point)
        return result
