"""Fig. 9g / Fig. 9h — the impact of multi-hop forwarding.

One registered spec (``fig9gh``, aliases ``fig9g`` / ``fig9h``) produces
both figures: the download time (Fig. 9g) and the number of transmissions
(Fig. 9h) when intermediate nodes (pure forwarders and DAPES nodes with no
knowledge about the requested data) forward 0 % (single-hop), 20 %, 40 % or
60 % of received Interests.  The historical class remains as a thin
deprecated shim.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.experiments.metrics import SweepResult
from repro.experiments.scenario import ExperimentConfig
from repro.experiments.spec import (
    Axis,
    ExperimentSpec,
    Variant,
    deprecated_shim,
    register_experiment,
    warn_deprecated_shim,
)
from repro.experiments.sweep import run_experiment

DEFAULT_WIFI_RANGES = (20.0, 40.0, 60.0, 80.0, 100.0)
DEFAULT_PROBABILITIES = (None, 0.2, 0.4, 0.6)  # None == single-hop


def _probability_label(probability) -> str:
    if probability is None:
        return "Single-hop"
    return f"Multi-hop, forwarding probability={int(probability * 100)}%"


def probability_variants(
    probabilities: Sequence[Optional[float]],
) -> Tuple[Variant, ...]:
    variants = []
    for probability in probabilities:
        if probability is None:
            overrides = {"dapes_multi_hop": False, "dapes_forwarding_probability": 0.0}
        else:
            overrides = {"dapes_multi_hop": True, "dapes_forwarding_probability": probability}
        variants.append(
            Variant(
                label=_probability_label(probability),
                overrides=overrides,
                parameters={"forwarding_probability": probability},
            )
        )
    return tuple(variants)


SPEC_FIG9GH = register_experiment(
    ExperimentSpec(
        name="fig9gh",
        title="Fig. 9g/9h — impact of multi-hop forwarding probability",
        description=(
            "download_time_s reproduces Fig. 9g; transmissions reproduces Fig. 9h "
            "for the same sweep."
        ),
        artefacts=("Fig. 9g", "Fig. 9h"),
        aliases=("fig9g", "fig9h"),
        axes=(Axis(name="wifi_range", values=DEFAULT_WIFI_RANGES, config_key="wifi_range"),),
        variants=probability_variants(DEFAULT_PROBABILITIES),
    )
)


# ------------------------------------------------- deprecated class shim
@deprecated_shim(SPEC_FIG9GH)
class ForwardingProbabilityExperiment:
    def __init__(
        self,
        config: Optional[ExperimentConfig] = None,
        wifi_ranges: Sequence[float] = DEFAULT_WIFI_RANGES,
        probabilities: Sequence[Optional[float]] = DEFAULT_PROBABILITIES,
    ):
        warn_deprecated_shim(self)
        self.config = config if config is not None else ExperimentConfig.small()
        self.wifi_ranges = list(wifi_ranges)
        self.probabilities = list(probabilities)

    def run(self) -> SweepResult:
        spec = self.spec.with_variants(probability_variants(self.probabilities))
        return run_experiment(
            spec, self.config, axes={"wifi_range": tuple(self.wifi_ranges)}
        )
