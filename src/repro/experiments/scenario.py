"""Scenario builders: pluggable topology x protocol experiment assembly.

Historically this module hard-coded the paper's Fig. 7 topology (a 300 m x
300 m area with 4 stationary repositories and 40 mobile nodes) into one
builder per protocol family.  It now separates the two axes:

* **Topology** — where nodes sit and how they move — comes from the registry
  in :mod:`repro.experiments.topology` (``quadrant`` reproduces Fig. 7;
  ``clusters`` and ``corridor`` open new workloads), selected by
  :attr:`ExperimentConfig.topology`.
* **Protocol** — what runs on the nodes — comes from the
  :func:`register_protocol` registry in this module.  Every builder wires
  the same node roles (producer, measured downloaders, intermediate nodes,
  pure forwarders) and returns a :class:`Scenario` exposing the uniform
  hooks the trial runner needs.

:class:`ExperimentConfig` carries both the paper-scale parameters
(:meth:`ExperimentConfig.paper`) and reduced-scale presets used by the test
suite and the benchmark harness (:meth:`ExperimentConfig.small`,
:meth:`ExperimentConfig.tiny`); EXPERIMENTS.md documents the scaling, the
topology catalogue and the parallel trial runner.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import asdict, dataclass, field, replace
from typing import Callable, Dict, List, Optional, Type

from repro.crypto.keys import KeyPair
from repro.crypto.trust import TrustAnchorStore
from repro.simulation import Simulator
from repro.wireless import ChannelConfig, WirelessMedium
from repro.baselines import DhtKeySpace, SwarmDescriptor, build_bithoc_peer, build_ekta_peer
from repro.core import (
    CollectionBuilder,
    DapesConfig,
    DapesNode,
    FileCollection,
    PureForwarderNode,
    build_dapes_peer,
    build_pure_forwarder,
)
from repro.churn import build_churn_manager
from repro.faults import build_fault_manager
from repro.experiments.topology import get_topology

PRODUCER_IDENTITY = "/residents/producer"
COLLECTION_LABEL = "damaged-bridge"
COLLECTION_TIMESTAMP = 1533783192


@dataclass
class ExperimentConfig:
    """All knobs of one experiment run."""

    # Topology (paper defaults).
    area_size: float = 300.0
    stationary_nodes: int = 4
    mobile_downloaders: int = 20
    pure_forwarders: int = 10
    intermediate_nodes: int = 10
    min_speed: float = 2.0
    max_speed: float = 10.0
    wifi_range: float = 60.0
    loss_rate: float = 0.10
    topology: str = "quadrant"
    # Radio propagation (see repro.wireless.propagation): the backend, its
    # parameters, and — for topologies that emit obstacle geometry — the
    # fraction of candidate obstacles actually built.
    propagation: str = "unit_disk"
    propagation_params: Dict[str, object] = field(default_factory=dict)
    obstacle_density: float = 1.0

    # Workload (paper defaults: ten 1 MB files of 1 KB packets).
    num_files: int = 10
    file_size: int = 1_000_000
    packet_size: int = 1024

    # Run control.
    max_duration: float = 600.0
    trials: int = 10
    base_seed: int = 42
    percentile: float = 90.0
    workers: int = 1
    neighbor_index: str = "grid"
    delivery: str = "batched"
    # Hot-path implementation selector (see repro.arrays): "auto" picks the
    # array-native NumPy path when importable, scalar otherwise; results are
    # byte-identical across backends.
    array_backend: str = "auto"
    # Region sharding (see repro.wireless.sharded): shards=1 keeps the single
    # world-spanning index; K > 1 partitions the area into K x-stripe regions
    # of area_size/K metres each, with deterministic epoch-synchronized
    # membership.  shard_workers > 1 steps shard snapshot builds concurrently
    # at each epoch barrier (shard_executor: thread/process/serial).  All
    # combinations are byte-identical — sharding is purely a
    # scalability/parallelism switch.
    shards: int = 1
    shard_workers: int = 1
    shard_executor: str = "thread"
    # Population threshold for the array-native index's scalar/vectorized
    # crossover (None keeps the measured defaults: 256 for "grid", 1 for
    # "grid_array"); see ChannelConfig.scalar_query_limit.
    scalar_query_limit: Optional[int] = None
    # Collect a performance profile per trial (repro.profiling); the profile
    # rides along in RunResult.profile and the CLI's --profile output.  Off
    # by default: profiles hold wall-clock numbers, which are not
    # deterministic, unlike every simulation result.
    profile: bool = False
    # Population dynamics (see repro.churn): the churn model name and its
    # parameters.  "none" keeps the fixed population — byte-identical to a
    # build without the churn subsystem.
    churn: str = "none"
    churn_params: Dict[str, object] = field(default_factory=dict)
    # Fault injection (see repro.faults): the fault model name and its
    # parameters.  "none" injects nothing — byte-identical to a build
    # without the fault subsystem (no manager, no RNG streams, no events).
    faults: str = "none"
    fault_params: Dict[str, object] = field(default_factory=dict)
    # Runtime safety/liveness invariant monitoring (repro.faults.invariants).
    # Pure observation — enabling it draws no randomness and schedules no
    # events, so it never perturbs results; a violation raises at trial end.
    invariants: bool = False

    # DAPES protocol configuration.
    dapes: DapesConfig = field(default_factory=DapesConfig)

    # ----------------------------------------------------------------- presets
    @classmethod
    def paper(cls) -> "ExperimentConfig":
        """The paper-scale configuration (slow to simulate in pure Python)."""
        return cls()

    @classmethod
    def small(cls) -> "ExperimentConfig":
        """Reduced scale used by the benchmark harness (shape-preserving)."""
        return cls(
            stationary_nodes=2,
            mobile_downloaders=6,
            pure_forwarders=3,
            intermediate_nodes=3,
            num_files=2,
            file_size=20_000,
            packet_size=1024,
            max_duration=400.0,
            trials=2,
            area_size=220.0,
        )

    @classmethod
    def tiny(cls) -> "ExperimentConfig":
        """Minimal configuration for fast unit/integration tests."""
        return cls(
            stationary_nodes=1,
            mobile_downloaders=3,
            pure_forwarders=1,
            intermediate_nodes=1,
            num_files=1,
            file_size=10_000,
            packet_size=1024,
            max_duration=240.0,
            trials=1,
            area_size=120.0,
            wifi_range=80.0,
        )

    @classmethod
    def preset(cls, name: str) -> "ExperimentConfig":
        """Look up a preset by name (``tiny``, ``small`` or ``paper``)."""
        presets = {"tiny": cls.tiny, "small": cls.small, "paper": cls.paper}
        try:
            return presets[name]()
        except KeyError:
            raise ValueError(
                f"unknown preset {name!r}; available: {sorted(presets)}"
            ) from None

    def with_overrides(self, **overrides) -> "ExperimentConfig":
        """Copy with selected fields replaced.

        ``dapes_`` prefixed keys reach the nested DAPES config; ``churn_``
        prefixed keys (other than the literal ``churn_params`` field) merge
        into ``churn_params``; ``fault_`` prefixed keys (other than the
        literal ``fault_params`` field) merge into ``fault_params`` — so a
        spec axis or CLI ``--axis`` can sweep e.g. ``churn_mean_session``
        or ``fault_mean_down`` directly.
        """
        dapes_overrides = {
            key[len("dapes_"):]: value for key, value in overrides.items() if key.startswith("dapes_")
        }
        churn_overrides = {
            key[len("churn_"):]: value
            for key, value in overrides.items()
            if key.startswith("churn_") and key != "churn_params"
        }
        fault_overrides = {
            key[len("fault_"):]: value
            for key, value in overrides.items()
            if key.startswith("fault_") and key != "fault_params"
        }
        plain = {
            key: value
            for key, value in overrides.items()
            if not key.startswith("dapes_")
            and (not key.startswith("churn_") or key == "churn_params")
            and (not key.startswith("fault_") or key == "fault_params")
        }
        config = replace(self, **plain)
        if dapes_overrides:
            config = replace(config, dapes=config.dapes.with_overrides(**dapes_overrides))
        if churn_overrides:
            merged = dict(config.churn_params)
            merged.update(churn_overrides)
            config = replace(config, churn_params=merged)
        if fault_overrides:
            merged = dict(config.fault_params)
            merged.update(fault_overrides)
            config = replace(config, fault_params=merged)
        return config

    # --------------------------------------------------------- serialization
    def as_dict(self) -> Dict[str, object]:
        """A JSON-safe dict of every knob (nested DAPES config included)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ExperimentConfig":
        """Rebuild a config from :meth:`as_dict` output."""
        from repro.core import DapesConfig

        plain = dict(data)
        dapes = plain.pop("dapes", None)
        config = cls(**plain)
        if dapes is not None:
            config = replace(config, dapes=DapesConfig(**dapes))
        return config

    # --------------------------------------------------------------- derived
    @property
    def downloader_count(self) -> int:
        """Nodes whose download time is measured (producer excluded)."""
        return self.stationary_nodes + self.mobile_downloaders - 1

    @property
    def total_packets(self) -> int:
        per_file = max(1, -(-self.file_size // self.packet_size))
        return per_file * self.num_files

    def channel(self) -> ChannelConfig:
        # Region width defaults to area/shards so the K shards tile the
        # simulation area evenly (the ChannelConfig-level default — the grid
        # cell edge — is for direct medium users who have no area to tile).
        region_width = None
        if self.shards > 1:
            region_width = max(self.area_size / self.shards, 1e-9)
        return ChannelConfig(
            wifi_range=self.wifi_range,
            loss_rate=self.loss_rate,
            neighbor_index=self.neighbor_index,
            array_backend=self.array_backend,
            delivery=self.delivery,
            propagation=self.propagation,
            propagation_params=dict(self.propagation_params),
            shards=self.shards,
            shard_workers=self.shard_workers,
            shard_executor=self.shard_executor,
            shard_region_width=region_width,
            scalar_query_limit=self.scalar_query_limit,
        )


def build_collection(config: ExperimentConfig) -> FileCollection:
    """The shared file collection (a set of image files, per the paper's use case)."""
    builder = CollectionBuilder(
        COLLECTION_LABEL,
        COLLECTION_TIMESTAMP,
        packet_size=config.packet_size,
        producer=PRODUCER_IDENTITY,
    )
    for index in range(config.num_files):
        builder.add_file(f"image-{index:03d}", size_bytes=config.file_size)
    return builder.build()


# =============================================================== scenarios
@dataclass
class Scenario(ABC):
    """A fully wired simulation plus the uniform hooks the runner needs."""

    sim: Simulator
    medium: WirelessMedium
    config: ExperimentConfig
    protocol: str
    downloader_ids: List[str]
    # The churn lifecycle manager, or None for a fixed population (the
    # zero-churn byte-identity path: no manager, no events, no RNG streams).
    churn: Optional[object] = None
    # The fault manager, or None for a fault-free run (the zero-fault
    # byte-identity path, same discipline as churn).
    faults: Optional[object] = None

    @property
    def environment(self):
        """The obstacle geometry this scenario runs in (``None`` = open field)."""
        return self.medium.environment

    @abstractmethod
    def start(self) -> None:
        """Start every node's application."""

    @abstractmethod
    def watch_completion(self, callback: Callable[[str, float], None]) -> None:
        """Invoke ``callback(node_id, when)`` as each measured downloader finishes."""

    @abstractmethod
    def download_time(self, node_id: str) -> Optional[float]:
        """Seconds ``node_id`` took to finish, or ``None`` if it has not."""

    @abstractmethod
    def node_loads(self) -> Dict[str, Dict[str, float]]:
        """Per-node load counters for the run result."""


@dataclass
class DapesScenario(Scenario):
    """A fully wired DAPES simulation ready to run."""

    collection: FileCollection = None
    collection_id: str = ""
    producer_id: str = ""
    nodes: Dict[str, DapesNode] = field(default_factory=dict)
    pure_forwarders: Dict[str, PureForwarderNode] = field(default_factory=dict)

    def start(self) -> None:
        if self.faults is not None:
            self.faults.activate()
        if self.churn is not None:
            self.churn.activate()
            for node in self.nodes.values():
                if self.churn.online(node.node_id):
                    node.start()
            return
        for node in self.nodes.values():
            node.start()

    def downloaders(self) -> List[DapesNode]:
        return [self.nodes[node_id] for node_id in self.downloader_ids]

    def watch_completion(self, callback: Callable[[str, float], None]) -> None:
        def _on_complete(peer, collection_id, when) -> None:
            if collection_id == self.collection_id:
                callback(peer.node_id, when)

        for node_id in self.downloader_ids:
            self.nodes[node_id].peer.on_collection_complete(_on_complete)

    def download_time(self, node_id: str) -> Optional[float]:
        return self.nodes[node_id].peer.download_time(self.collection_id)

    def node_loads(self) -> Dict[str, Dict[str, float]]:
        return {node_id: node.peer.load.as_dict() for node_id, node in self.nodes.items()}


@dataclass
class IpScenario(Scenario):
    """A fully wired Bithoc or Ekta simulation ready to run."""

    descriptor: SwarmDescriptor = None
    seed_id: str = ""
    peers: Dict[str, object] = field(default_factory=dict)

    def start(self) -> None:
        if self.faults is not None:
            self.faults.activate()
        if self.churn is not None:
            self.churn.activate()
            for node_id, peer in self.peers.items():
                if self.churn.online(node_id):
                    peer.start()
            return
        for peer in self.peers.values():
            peer.start()

    def downloaders(self) -> List[object]:
        return [self.peers[node_id] for node_id in self.downloader_ids]

    def watch_completion(self, callback: Callable[[str, float], None]) -> None:
        def _on_complete(peer, collection_id, when) -> None:
            callback(peer.node_id, when)

        for node_id in self.downloader_ids:
            self.peers[node_id].on_complete(_on_complete)

    def download_time(self, node_id: str) -> Optional[float]:
        return self.peers[node_id].download_time()

    def node_loads(self) -> Dict[str, Dict[str, float]]:
        return {node_id: peer.load.as_dict() for node_id, peer in self.peers.items()}


# ================================================================ builders
_BUILDERS: Dict[str, Type["ScenarioBuilder"]] = {}


def register_protocol(name: str):
    """Class decorator: make a :class:`ScenarioBuilder` available under ``name``."""

    def decorator(cls: Type["ScenarioBuilder"]) -> Type["ScenarioBuilder"]:
        if name in _BUILDERS:
            raise ValueError(f"protocol {name!r} is already registered")
        _BUILDERS[name] = cls
        return cls

    return decorator


def get_builder(protocol: str) -> "ScenarioBuilder":
    """Instantiate the scenario builder registered for ``protocol``."""
    try:
        cls = _BUILDERS[protocol]
    except KeyError:
        raise ValueError(
            f"unknown protocol {protocol!r}; available: {sorted(_BUILDERS)}"
        ) from None
    return cls(protocol)


def available_protocols() -> List[str]:
    """Names of all registered protocols."""
    return sorted(_BUILDERS)


class ScenarioBuilder(ABC):
    """Assembles the configured topology with one protocol on every node."""

    def __init__(self, protocol: str):
        self.protocol = protocol

    def world(self, config: ExperimentConfig, seed: int):
        """The parts every protocol shares: sim, node names, mobility, medium.

        The topology's environment (obstacle geometry, if it emits one) is
        threaded into the medium, where obstacle-aware propagation models
        ray-test links against it.
        """
        sim = Simulator(seed=seed)
        topology = get_topology(config.topology)
        names = topology.node_names(config)
        mobility = topology.build_mobility(config, sim, names)
        environment = topology.build_environment(config)
        medium = WirelessMedium(sim, mobility, config.channel(), environment=environment)
        churn = build_churn_manager(config, sim, medium, names)
        faults = build_fault_manager(config, sim, medium, names)
        return sim, names, medium, churn, faults

    @abstractmethod
    def build(
        self,
        config: ExperimentConfig,
        seed: int,
        dapes_config: Optional[DapesConfig] = None,
    ) -> Scenario:
        """Assemble a ready-to-run scenario."""


@register_protocol("dapes")
class DapesScenarioBuilder(ScenarioBuilder):
    """DAPES on every participating node, pure NDN forwarders elsewhere."""

    def build(self, config, seed, dapes_config=None):
        dapes_config = dapes_config if dapes_config is not None else config.dapes
        sim, names, medium, churn, faults = self.world(config, seed)

        producer_key = KeyPair.generate(PRODUCER_IDENTITY, seed=b"producer-key")
        trust = TrustAnchorStore()
        trust.add_anchor_key(producer_key)

        collection = build_collection(config)
        collection_id = collection.collection_id

        nodes: Dict[str, DapesNode] = {}
        pure: Dict[str, PureForwarderNode] = {}

        producer_id = names["downloaders"][0]
        downloader_ids = names["downloaders"][1:] + names["stationary"]

        # Mobile peers (the producer plus the measured downloaders).
        for node_id in names["downloaders"]:
            node = build_dapes_peer(sim, medium, node_id, config=dapes_config, trust=trust,
                                    key=producer_key if node_id == producer_id else None)
            nodes[node_id] = node

        # Stationary repositories also download the collection of interest.
        for node_id in names["stationary"]:
            node = build_dapes_peer(sim, medium, node_id, config=dapes_config, trust=trust,
                                    cs_capacity=16384)
            nodes[node_id] = node

        # Intermediate DAPES nodes: run the application but join nothing.
        for node_id in names["intermediate"]:
            nodes[node_id] = build_dapes_peer(sim, medium, node_id, config=dapes_config, trust=trust)

        # Pure forwarders: NDN only.
        for node_id in names["pure"]:
            pure[node_id] = build_pure_forwarder(
                sim, medium, node_id, forward_probability=dapes_config.forwarding_probability
            )

        metadata = nodes[producer_id].peer.publish_collection(collection)
        for node_id in downloader_ids:
            nodes[node_id].peer.join(metadata.collection)

        if churn is not None:
            # Every node is built up front; the manager toggles presence.
            # Full DAPES nodes churn their whole application; pure
            # forwarders are radio-only (nothing to start or stop).
            for node_id in churn.node_ids:
                node = nodes.get(node_id)
                if node is not None:
                    churn.register(node_id, node.radio,
                                   start=node.start, stop=node.stop, kill=node.kill)
                elif node_id in pure:
                    churn.register(node_id, pure[node_id].radio)

        if faults is not None:
            # Recovery nudge: when a partition heals or a stall resumes, the
            # affected DAPES peers re-announce immediately instead of waiting
            # out the periodic discovery timer.  Pure forwarders have no
            # application to nudge.
            for node_id, node in sorted(nodes.items()):
                faults.register_heal(node_id, node.peer.reannounce)

        return DapesScenario(
            sim=sim,
            medium=medium,
            config=config,
            protocol=self.protocol,
            downloader_ids=downloader_ids,
            churn=churn,
            faults=faults,
            collection=collection,
            collection_id=collection_id,
            producer_id=producer_id,
            nodes=nodes,
            pure_forwarders=pure,
        )


@register_protocol("bithoc")
@register_protocol("ekta")
class IpScenarioBuilder(ScenarioBuilder):
    """One of the IP baselines (Bithoc or Ekta) on every node."""

    def build(self, config, seed, dapes_config=None):
        sim, names, medium, churn, faults = self.world(config, seed)

        per_file = max(1, -(-config.file_size // config.packet_size))
        descriptor = SwarmDescriptor(
            collection_id=f"{COLLECTION_LABEL}-{COLLECTION_TIMESTAMP}",
            total_pieces=per_file * config.num_files,
            piece_size=config.packet_size,
            files=config.num_files,
        )

        seed_id = names["downloaders"][0]
        downloader_ids = names["downloaders"][1:] + names["stationary"]
        swarm_members = [seed_id] + downloader_ids

        peers: Dict[str, object] = {}
        keyspace = DhtKeySpace()
        for node_id in swarm_members:
            if self.protocol == "bithoc":
                peer = build_bithoc_peer(sim, medium, node_id, descriptor, seed_all=(node_id == seed_id))
            else:
                peer = build_ekta_peer(sim, medium, node_id, descriptor, keyspace,
                                       seed_all=(node_id == seed_id))
            peers[node_id] = peer

        # The remaining nodes forward packets based on their routing tables.
        for node_id in names["pure"] + names["intermediate"]:
            if self.protocol == "bithoc":
                build_bithoc_peer(sim, medium, node_id, descriptor, forwarder_only=True)
            else:
                build_ekta_peer(sim, medium, node_id, descriptor, keyspace, forwarder_only=True)

        for peer in peers.values():
            peer.set_swarm(swarm_members)

        if churn is not None:
            # Swarm peers churn their application; forwarder-only nodes are
            # radio-only (their build functions return None by contract, so
            # the radio comes from the medium's registry).  Neither baseline
            # has a distinct abrupt path — kill falls back to stop.
            for node_id in churn.node_ids:
                peer = peers.get(node_id)
                if peer is not None:
                    churn.register(node_id, peer.ip_node.radio,
                                   start=peer.start, stop=peer.stop)
                else:
                    churn.register(node_id, medium.radio_of(node_id))

        return IpScenario(
            sim=sim,
            medium=medium,
            config=config,
            protocol=self.protocol,
            downloader_ids=downloader_ids,
            churn=churn,
            faults=faults,
            descriptor=descriptor,
            seed_id=seed_id,
            peers=peers,
        )


# ------------------------------------------------- backwards-compatible API
def build_dapes_scenario(
    config: ExperimentConfig,
    seed: int,
    dapes_config: Optional[DapesConfig] = None,
) -> DapesScenario:
    """Assemble the configured topology with DAPES on every participating node."""
    return get_builder("dapes").build(config, seed, dapes_config=dapes_config)


def build_ip_scenario(config: ExperimentConfig, seed: int, protocol: str) -> IpScenario:
    """Assemble the same topology with one of the IP baselines on every node."""
    if protocol not in ("bithoc", "ekta"):
        raise ValueError(f"unknown IP baseline {protocol!r}")
    return get_builder(protocol).build(config, seed)
