"""Scenario builders: the paper's simulation topology for every protocol.

The simulated topology (Fig. 7) is a 300 m x 300 m area with 4 stationary
nodes (data repositories) and 40 mobile nodes moving with random direction
and speed (2-10 m/s).  One mobile node produces the file collection; the
other 19 mobile downloaders and the 4 stationary nodes download it.  Of the
remaining 20 mobile nodes, half are pure forwarders and half are
intermediate nodes that understand the protocol semantics (DAPES nodes not
interested in the collection, or plain routing forwarders for the IP
baselines).

:class:`ExperimentConfig` carries both the paper-scale parameters
(:meth:`ExperimentConfig.paper`) and reduced-scale presets used by the test
suite and the benchmark harness (:meth:`ExperimentConfig.small`,
:meth:`ExperimentConfig.tiny`); EXPERIMENTS.md documents the scaling.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

from repro.crypto.keys import KeyPair
from repro.crypto.trust import TrustAnchorStore
from repro.mobility import CompositeMobility, RandomDirectionMobility, StaticPlacement
from repro.simulation import Simulator
from repro.wireless import ChannelConfig, WirelessMedium
from repro.baselines import DhtKeySpace, SwarmDescriptor, build_bithoc_peer, build_ekta_peer
from repro.core import (
    CollectionBuilder,
    DapesConfig,
    DapesNode,
    FileCollection,
    PureForwarderNode,
    build_dapes_peer,
    build_pure_forwarder,
    build_repository,
)

PRODUCER_IDENTITY = "/residents/producer"
COLLECTION_LABEL = "damaged-bridge"
COLLECTION_TIMESTAMP = 1533783192


@dataclass
class ExperimentConfig:
    """All knobs of one experiment run."""

    # Topology (paper defaults).
    area_size: float = 300.0
    stationary_nodes: int = 4
    mobile_downloaders: int = 20
    pure_forwarders: int = 10
    intermediate_nodes: int = 10
    min_speed: float = 2.0
    max_speed: float = 10.0
    wifi_range: float = 60.0
    loss_rate: float = 0.10

    # Workload (paper defaults: ten 1 MB files of 1 KB packets).
    num_files: int = 10
    file_size: int = 1_000_000
    packet_size: int = 1024

    # Run control.
    max_duration: float = 600.0
    trials: int = 10
    base_seed: int = 42
    percentile: float = 90.0

    # DAPES protocol configuration.
    dapes: DapesConfig = field(default_factory=DapesConfig)

    # ----------------------------------------------------------------- presets
    @classmethod
    def paper(cls) -> "ExperimentConfig":
        """The paper-scale configuration (slow to simulate in pure Python)."""
        return cls()

    @classmethod
    def small(cls) -> "ExperimentConfig":
        """Reduced scale used by the benchmark harness (shape-preserving)."""
        return cls(
            stationary_nodes=2,
            mobile_downloaders=6,
            pure_forwarders=3,
            intermediate_nodes=3,
            num_files=2,
            file_size=20_000,
            packet_size=1024,
            max_duration=400.0,
            trials=2,
            area_size=220.0,
        )

    @classmethod
    def tiny(cls) -> "ExperimentConfig":
        """Minimal configuration for fast unit/integration tests."""
        return cls(
            stationary_nodes=1,
            mobile_downloaders=3,
            pure_forwarders=1,
            intermediate_nodes=1,
            num_files=1,
            file_size=10_000,
            packet_size=1024,
            max_duration=240.0,
            trials=1,
            area_size=120.0,
            wifi_range=80.0,
        )

    def with_overrides(self, **overrides) -> "ExperimentConfig":
        """Copy with selected fields replaced (``dapes_`` prefixed keys reach the DAPES config)."""
        dapes_overrides = {
            key[len("dapes_"):]: value for key, value in overrides.items() if key.startswith("dapes_")
        }
        plain = {key: value for key, value in overrides.items() if not key.startswith("dapes_")}
        config = replace(self, **plain)
        if dapes_overrides:
            config = replace(config, dapes=config.dapes.with_overrides(**dapes_overrides))
        return config

    # --------------------------------------------------------------- derived
    @property
    def downloader_count(self) -> int:
        """Nodes whose download time is measured (producer excluded)."""
        return self.stationary_nodes + self.mobile_downloaders - 1

    @property
    def total_packets(self) -> int:
        per_file = max(1, -(-self.file_size // self.packet_size))
        return per_file * self.num_files

    def channel(self) -> ChannelConfig:
        return ChannelConfig(wifi_range=self.wifi_range, loss_rate=self.loss_rate)


def _node_names(config: ExperimentConfig) -> Dict[str, List[str]]:
    """Stable node ids per role."""
    return {
        "stationary": [f"repo-{index}" for index in range(config.stationary_nodes)],
        "downloaders": [f"mobile-{index}" for index in range(config.mobile_downloaders)],
        "pure": [f"fwd-{index}" for index in range(config.pure_forwarders)],
        "intermediate": [f"relay-{index}" for index in range(config.intermediate_nodes)],
    }


def _build_mobility(config: ExperimentConfig, sim: Simulator, names: Dict[str, List[str]]) -> CompositeMobility:
    mobility = CompositeMobility()
    static = StaticPlacement()
    # Repositories sit at the four quadrant centres of the area (Fig. 7).
    anchors = [
        (config.area_size * 0.25, config.area_size * 0.25),
        (config.area_size * 0.75, config.area_size * 0.25),
        (config.area_size * 0.25, config.area_size * 0.75),
        (config.area_size * 0.75, config.area_size * 0.75),
    ]
    for index, node_id in enumerate(names["stationary"]):
        x, y = anchors[index % len(anchors)]
        static.place(node_id, x, y)
        mobility.assign(node_id, static)
    mobile = RandomDirectionMobility(
        width=config.area_size,
        height=config.area_size,
        min_speed=config.min_speed,
        max_speed=config.max_speed,
        rng=sim.rng("mobility"),
    )
    for node_id in names["downloaders"] + names["pure"] + names["intermediate"]:
        mobile.add_node(node_id)
        mobility.assign(node_id, mobile)
    return mobility


def build_collection(config: ExperimentConfig) -> FileCollection:
    """The shared file collection (a set of image files, per the paper's use case)."""
    builder = CollectionBuilder(
        COLLECTION_LABEL,
        COLLECTION_TIMESTAMP,
        packet_size=config.packet_size,
        producer=PRODUCER_IDENTITY,
    )
    for index in range(config.num_files):
        builder.add_file(f"image-{index:03d}", size_bytes=config.file_size)
    return builder.build()


@dataclass
class DapesScenario:
    """A fully wired DAPES simulation ready to run."""

    sim: Simulator
    medium: WirelessMedium
    config: ExperimentConfig
    collection: FileCollection
    collection_id: str
    producer_id: str
    downloader_ids: List[str]
    nodes: Dict[str, DapesNode]
    pure_forwarders: Dict[str, PureForwarderNode]

    def start(self) -> None:
        for node in self.nodes.values():
            node.start()

    def downloaders(self) -> List[DapesNode]:
        return [self.nodes[node_id] for node_id in self.downloader_ids]


def build_dapes_scenario(
    config: ExperimentConfig,
    seed: int,
    dapes_config: Optional[DapesConfig] = None,
) -> DapesScenario:
    """Assemble the Fig. 7 topology with DAPES on every participating node."""
    dapes_config = dapes_config if dapes_config is not None else config.dapes
    sim = Simulator(seed=seed)
    names = _node_names(config)
    mobility = _build_mobility(config, sim, names)
    medium = WirelessMedium(sim, mobility, config.channel())

    producer_key = KeyPair.generate(PRODUCER_IDENTITY, seed=b"producer-key")
    trust = TrustAnchorStore()
    trust.add_anchor_key(producer_key)

    collection = build_collection(config)
    collection_id = collection.collection_id

    nodes: Dict[str, DapesNode] = {}
    pure: Dict[str, PureForwarderNode] = {}

    producer_id = names["downloaders"][0]
    downloader_ids = names["downloaders"][1:] + names["stationary"]

    # Mobile peers (the producer plus the measured downloaders).
    for node_id in names["downloaders"]:
        node = build_dapes_peer(sim, medium, node_id, config=dapes_config, trust=trust,
                                key=producer_key if node_id == producer_id else None)
        nodes[node_id] = node

    # Stationary repositories also download the collection of interest.
    for node_id in names["stationary"]:
        node = build_dapes_peer(sim, medium, node_id, config=dapes_config, trust=trust, cs_capacity=16384)
        nodes[node_id] = node

    # Intermediate DAPES nodes: run the application but join nothing.
    for node_id in names["intermediate"]:
        nodes[node_id] = build_dapes_peer(sim, medium, node_id, config=dapes_config, trust=trust)

    # Pure forwarders: NDN only.
    for node_id in names["pure"]:
        pure[node_id] = build_pure_forwarder(
            sim, medium, node_id, forward_probability=dapes_config.forwarding_probability
        )

    metadata = nodes[producer_id].peer.publish_collection(collection)
    for node_id in downloader_ids:
        nodes[node_id].peer.join(metadata.collection)

    return DapesScenario(
        sim=sim,
        medium=medium,
        config=config,
        collection=collection,
        collection_id=collection_id,
        producer_id=producer_id,
        downloader_ids=downloader_ids,
        nodes=nodes,
        pure_forwarders=pure,
    )


@dataclass
class IpScenario:
    """A fully wired Bithoc or Ekta simulation ready to run."""

    sim: Simulator
    medium: WirelessMedium
    config: ExperimentConfig
    protocol: str
    descriptor: SwarmDescriptor
    seed_id: str
    downloader_ids: List[str]
    peers: Dict[str, object]

    def start(self) -> None:
        for peer in self.peers.values():
            peer.start()

    def downloaders(self) -> List[object]:
        return [self.peers[node_id] for node_id in self.downloader_ids]


def build_ip_scenario(config: ExperimentConfig, seed: int, protocol: str) -> IpScenario:
    """Assemble the same topology with one of the IP baselines on every node."""
    if protocol not in ("bithoc", "ekta"):
        raise ValueError(f"unknown IP baseline {protocol!r}")
    sim = Simulator(seed=seed)
    names = _node_names(config)
    mobility = _build_mobility(config, sim, names)
    medium = WirelessMedium(sim, mobility, config.channel())

    per_file = max(1, -(-config.file_size // config.packet_size))
    descriptor = SwarmDescriptor(
        collection_id=f"{COLLECTION_LABEL}-{COLLECTION_TIMESTAMP}",
        total_pieces=per_file * config.num_files,
        piece_size=config.packet_size,
        files=config.num_files,
    )

    seed_id = names["downloaders"][0]
    downloader_ids = names["downloaders"][1:] + names["stationary"]
    swarm_members = [seed_id] + downloader_ids

    peers: Dict[str, object] = {}
    keyspace = DhtKeySpace()
    for node_id in swarm_members:
        if protocol == "bithoc":
            peer = build_bithoc_peer(sim, medium, node_id, descriptor, seed_all=(node_id == seed_id))
        else:
            peer = build_ekta_peer(sim, medium, node_id, descriptor, keyspace, seed_all=(node_id == seed_id))
        peers[node_id] = peer

    # The remaining 20 nodes forward packets based on their routing tables.
    for node_id in names["pure"] + names["intermediate"]:
        if protocol == "bithoc":
            build_bithoc_peer(sim, medium, node_id, descriptor, forwarder_only=True)
        else:
            build_ekta_peer(sim, medium, node_id, descriptor, keyspace, forwarder_only=True)

    for peer in peers.values():
        peer.set_swarm(swarm_members)

    return IpScenario(
        sim=sim,
        medium=medium,
        config=config,
        protocol=protocol,
        descriptor=descriptor,
        seed_id=seed_id,
        downloader_ids=downloader_ids,
        peers=peers,
    )
