"""Typed metric queries over sweep results: the :class:`ResultSet` API.

A :class:`ResultSet` is an immutable, chainable view over result rows at
one of two levels:

* **point level** (the default) — one row per aggregated
  :class:`~repro.experiments.metrics.SweepPoint`;
* **trial level** (via :meth:`ResultSet.trials`) — one row per raw
  :class:`~repro.experiments.metrics.RunResult`, parameters inherited from
  its point.

Every scalar a row carries is selectable by name through one uniform
resolver: dataclass fields (``download_time``, ``transmissions``,
``collisions`` …), derived properties (``mean_download_time``,
``completion_ratio``), ``extras`` and ``profile`` entries (bare keys or the
explicit ``extras.<key>`` / ``profile.<key>`` forms) and recorded sweep
parameters (``wifi_range`` …).  This replaces the historical
``SweepResult.series()``, which hardcoded exactly two metrics.

Verbs compose left to right::

    rs = ResultSet.from_sweep(run_experiment("fig9a"))
    rs.where(wifi_range=40.0).select("download_time")
    rs.group_by("label")                     # {label: ResultSet}
    rs.pivot("wifi_range")                   # {label: {40.0: value, ...}}
    rs.p90("transmissions")                  # reuses metrics.percentile
    rs.ratio_to(baseline, "download_time")   # e.g. "1.4x faster"
    rs.trials().select("profile.events_per_sec_wall")

Aggregate verbs reuse :func:`repro.experiments.metrics.percentile` and
:func:`~repro.experiments.metrics.mean`, so a query reports exactly what
the paper's aggregation pipeline would.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Mapping, Sequence, Tuple, Union

from repro.experiments.metrics import (
    RunResult,
    SweepPoint,
    SweepResult,
    mean,
    percentile,
)

#: Scalar SweepPoint attributes selectable at point level.
POINT_FIELDS: Tuple[str, ...] = (
    "download_time",
    "transmissions",
    "completion_ratio",
    "trials",
)

#: Scalar RunResult attributes (fields and derived properties) selectable
#: at trial level.
TRIAL_FIELDS: Tuple[str, ...] = (
    "mean_download_time",
    "completion_ratio",
    "transmissions",
    "collisions",
    "losses",
    "duration",
    "events",
    "seed",
)


class Row:
    """One queryable result row: a label, parameters, and scalar metrics."""

    __slots__ = ("label", "parameters", "_record", "_fields", "_maps")

    def __init__(
        self,
        label: str,
        parameters: Mapping[str, object],
        record: object,
        fields: Sequence[str],
        maps: Mapping[str, Mapping[str, float]],
    ):
        self.label = label
        self.parameters = parameters
        self._record = record
        self._fields = fields
        self._maps = maps

    @classmethod
    def from_point(cls, point: SweepPoint) -> "Row":
        return cls(
            point.label, point.parameters, point, POINT_FIELDS, {"extras": point.extras}
        )

    @classmethod
    def from_trial(cls, point: SweepPoint, trial: RunResult) -> "Row":
        parameters = {**point.parameters, **trial.parameters}
        return cls(
            point.label,
            parameters,
            trial,
            TRIAL_FIELDS,
            {"extras": trial.extras, "profile": trial.profile},
        )

    # -------------------------------------------------------------- metrics
    def value(self, metric: str) -> float:
        """Resolve ``metric`` against this row, or raise ``KeyError``.

        Resolution order: dataclass fields/properties, then ``extras`` (and
        ``profile`` for trial rows) by bare key, then recorded parameters.
        Qualified names (``extras.events``, ``profile.sim.events``) address
        one map explicitly and win over any bare-name collision.
        """
        if metric == "label":
            return self.label
        namespace, _, key = metric.partition(".")
        if key and namespace in self._maps:
            mapping = self._maps[namespace]
            if key in mapping:
                return mapping[key]
            raise KeyError(
                f"unknown {namespace} key {key!r}; available: {sorted(mapping)}"
            )
        if metric in self._fields:
            return getattr(self._record, metric)
        for mapping in self._maps.values():
            if metric in mapping:
                return mapping[metric]
        if metric in self.parameters:
            return self.parameters[metric]
        raise KeyError(
            f"unknown metric {metric!r}; available: {sorted(self.metrics())}"
        )

    def metrics(self) -> List[str]:
        """Every metric name this row can resolve."""
        names = ["label", *self._fields]
        for namespace, mapping in self._maps.items():
            names.extend(f"{namespace}.{key}" for key in mapping)
        names.extend(self.parameters)
        return names

    def matches(self, criteria: Mapping[str, object]) -> bool:
        for key, value in criteria.items():
            if key == "label":
                if self.label != value:
                    return False
            elif self.parameters.get(key, _MISSING) != value:
                return False
        return True


_MISSING = object()


class ResultSet:
    """An immutable, chainable set of result rows (see module docstring)."""

    def __init__(self, rows: Sequence[Row]):
        self._rows = list(rows)

    # --------------------------------------------------------- construction
    @classmethod
    def from_sweep(cls, sweep: SweepResult) -> "ResultSet":
        """Point-level rows over one :class:`SweepResult`."""
        return cls.from_points(sweep.points)

    @classmethod
    def from_points(cls, points: Sequence[SweepPoint]) -> "ResultSet":
        return cls([Row.from_point(point) for point in points])

    def trials(self) -> "ResultSet":
        """Drop to trial level: one row per raw :class:`RunResult`.

        Only points that carried their per-trial results (the sweep
        scheduler and JSON persistence both do) contribute rows.
        """
        rows: List[Row] = []
        for row in self._rows:
            point = row._record
            if isinstance(point, SweepPoint):
                rows.extend(Row.from_trial(point, trial) for trial in point.trial_results)
            else:  # already trial level: no-op
                rows.append(row)
        return ResultSet(rows)

    # ----------------------------------------------------------- inspection
    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def __bool__(self) -> bool:
        return bool(self._rows)

    @property
    def rows(self) -> List[Row]:
        return list(self._rows)

    def labels(self) -> List[str]:
        """Distinct row labels, first-seen order."""
        return list(dict.fromkeys(row.label for row in self._rows))

    def metrics(self) -> List[str]:
        """Every metric name resolvable by at least one row."""
        names: Dict[str, None] = {}
        for row in self._rows:
            names.update(dict.fromkeys(row.metrics()))
        return list(names)

    # ---------------------------------------------------------------- verbs
    def where(self, **criteria: object) -> "ResultSet":
        """Rows whose label/parameters equal every given value."""
        return ResultSet([row for row in self._rows if row.matches(criteria)])

    def select(self, metric: str) -> List[float]:
        """The metric's value for every row, in row order."""
        return [row.value(metric) for row in self._rows]

    def group_by(self, key: str = "label") -> Dict[object, "ResultSet"]:
        """Partition rows by a label/parameter value, first-seen order."""
        grouped: Dict[object, List[Row]] = {}
        for row in self._rows:
            value = row.label if key == "label" else row.parameters.get(key)
            grouped.setdefault(value, []).append(row)
        return {value: ResultSet(rows) for value, rows in grouped.items()}

    def series(self, metric: str, by: str = "label") -> Dict[object, List[float]]:
        """Per-group metric series — the generalized ``SweepResult.series()``."""
        return {
            value: subset.select(metric) for value, subset in self.group_by(by).items()
        }

    def pivot(self, axis: str, metric: str = "download_time") -> Dict[str, Dict[object, float]]:
        """A label × axis-value table of the metric (one cell per row).

        Duplicate (label, axis value) cells keep the first row, mirroring
        :meth:`SweepResult.point` semantics.
        """
        table: Dict[str, Dict[object, float]] = {}
        for row in self._rows:
            cells = table.setdefault(row.label, {})
            cells.setdefault(row.parameters.get(axis), row.value(metric))
        return table

    # ----------------------------------------------------------- aggregates
    def mean(self, metric: str) -> float:
        """Arithmetic mean of the metric (reuses :func:`metrics.mean`)."""
        return mean([float(value) for value in self.select(metric)])

    def percentile(self, metric: str, q: float) -> float:
        """The q-th percentile of the metric (reuses :func:`metrics.percentile`)."""
        return percentile([float(value) for value in self.select(metric)], q)

    def p90(self, metric: str) -> float:
        """The paper's aggregate: the 90th percentile of the metric."""
        return self.percentile(metric, 90.0)

    def ratio_to(
        self,
        baseline: "ResultSet",
        metric: str,
        aggregate: Union[str, Callable[["ResultSet", str], float]] = "mean",
    ) -> float:
        """``aggregate(self) / aggregate(baseline)`` for one metric.

        ``aggregate`` is ``"mean"``, ``"p90"``, or any callable taking
        ``(result_set, metric)`` — e.g. ``ratio_to(base, "duration")`` < 1
        means this set is faster than the baseline.
        """
        if callable(aggregate):
            ours, theirs = aggregate(self, metric), aggregate(baseline, metric)
        elif aggregate in ("mean", "p90"):
            ours = getattr(self, aggregate)(metric)
            theirs = getattr(baseline, aggregate)(metric)
        else:
            raise ValueError(
                f"unknown aggregate {aggregate!r}; use 'mean', 'p90' or a callable"
            )
        if theirs == 0:
            raise ZeroDivisionError(f"baseline aggregate of {metric!r} is zero")
        return ours / theirs
