"""Experiments CLI: list and run the paper's artefacts from the command line.

Usage (also installed as the ``repro-experiments`` console script)::

    python -m repro.experiments list
    python -m repro.experiments run fig9a --preset tiny --workers 2
    python -m repro.experiments run all --preset small --workers 8 --out sweeps
    python -m repro.experiments run fig10 --axis wifi_range=40,80 --trials 2
    python -m repro.experiments run fig9a --profile
    python -m repro.experiments perf-gate

``run`` flattens every requested experiment into one task grid executed
over a single persistent process pool; with ``--out`` each finished task is
persisted (content-hash keyed), so an interrupted sweep resumes from the
completed tasks on the next invocation.  ``--profile`` collects per-trial
performance counters (see :mod:`repro.profiling`) and prints the aggregated
per-subsystem breakdown.  ``perf-gate`` re-runs the Fig. 9a benchmark
workload and fails when simulation throughput regresses below the committed
``BENCH_*.json`` baseline — the CI perf smoke job.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time
from typing import Dict, List, Optional, Sequence

from repro.experiments.scenario import ExperimentConfig
from repro.experiments.spec import available_experiments, get_experiment
from repro.experiments.sweep import SweepRequest, run_experiment, run_suite
from repro.profiling import format_profile, merge_profiles

_GATE_BASELINE_NAME = "BENCH_fig-9a-download-time-per-rpf-strategy.json"


def _default_gate_baseline() -> pathlib.Path:
    """Committed fig9a baseline: the repo checkout when running from src/,
    else ./benchmark_results (installed console script run from a checkout)."""
    in_repo = pathlib.Path(__file__).resolve().parents[3] / "benchmark_results" / _GATE_BASELINE_NAME
    if in_repo.is_file():
        return in_repo
    return pathlib.Path("benchmark_results") / _GATE_BASELINE_NAME


DEFAULT_GATE_BASELINE = _default_gate_baseline()


def _parse_axis_value(token: str) -> object:
    token = token.strip()
    if token.lower() in ("none", "null"):
        return None
    for parse in (int, float):
        try:
            return parse(token)
        except ValueError:
            continue
    return token


def _parse_axis_overrides(entries: Sequence[str]) -> Dict[str, tuple]:
    axes: Dict[str, tuple] = {}
    for entry in entries:
        if "=" not in entry:
            raise SystemExit(f"--axis expects NAME=V1,V2,... (got {entry!r})")
        name, _, values = entry.partition("=")
        axes[name.strip()] = tuple(_parse_axis_value(value) for value in values.split(","))
    return axes


def _resolve_names(names: Sequence[str]) -> List[str]:
    if any(name.lower() == "all" for name in names):
        return available_experiments()
    resolved: List[str] = []
    for name in names:
        spec = get_experiment(name)  # raises with the available list on typos
        if spec.name not in resolved:
            resolved.append(spec.name)
    return resolved


def _cmd_list(args: argparse.Namespace) -> int:
    rows = []
    for name in available_experiments():
        spec = get_experiment(name)
        rows.append((name, ", ".join(spec.artefacts), spec.task_count(), spec.title))
    name_width = max(len(row[0]) for row in rows)
    artefact_width = max(len(row[1]) for row in rows)
    print(f"{'name':<{name_width}}  {'artefacts':<{artefact_width}}  tasks  title")
    for name, artefacts, tasks, title in rows:
        print(f"{name:<{name_width}}  {artefacts:<{artefact_width}}  {tasks:>5}  {title}")
    print("\n(tasks = points x trials at the default small() preset and axes)")
    if getattr(args, "registries", False):
        from repro.experiments.scenario import available_protocols
        from repro.experiments.topology import available_topologies
        from repro.wireless.propagation import available_propagation_models

        print()
        print("registries (select via ExperimentConfig / ChannelConfig / --topology):")
        print(f"  topologies  : {', '.join(available_topologies())}")
        print(f"  protocols   : {', '.join(available_protocols())}")
        print(f"  propagation : {', '.join(available_propagation_models())}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    names = _resolve_names(args.experiments)
    overrides: Dict[str, object] = {}
    if args.trials is not None:
        overrides["trials"] = args.trials
    if args.seed is not None:
        overrides["base_seed"] = args.seed
    if args.topology is not None:
        overrides["topology"] = args.topology
    if args.propagation is not None:
        overrides["propagation"] = args.propagation
    if args.workers is not None:
        overrides["workers"] = args.workers
    if args.profile:
        overrides["profile"] = True
    config = ExperimentConfig.preset(args.preset).with_overrides(**overrides)
    axes = _parse_axis_overrides(args.axis)

    requests = []
    matched_axes = set()
    for name in names:
        spec = get_experiment(name)
        spec_axes = {axis.name for axis in spec.axes}
        matched_axes |= spec_axes & set(axes)
        requests.append(
            SweepRequest(
                spec=spec,
                config=config,
                axes={key: values for key, values in axes.items() if key in spec_axes} or None,
            )
        )
    shadowed = sorted({
        key
        for name in names
        for variant in get_experiment(name).variants
        for key in variant.overrides
        if key in overrides
    })
    if shadowed:
        print(
            f"note: variant overrides pin {', '.join(shadowed)} for the requested "
            f"experiment(s); the corresponding command-line value(s) only apply to "
            f"variants that do not set them"
        )
    unmatched = set(axes) - matched_axes
    if unmatched:
        known = sorted({axis.name for name in names for axis in get_experiment(name).axes})
        raise SystemExit(
            f"--axis {'/'.join(sorted(unmatched))} matches no axis of the requested "
            f"experiment(s); available axes: {known}"
        )

    total = sum(
        request.spec.with_axes(request.axes).task_count(config) for request in requests
    )
    print(
        f"running {len(requests)} experiment(s), {total} tasks, "
        f"preset={args.preset}, workers={args.workers or config.workers}"
        + (f", out={args.out}" if args.out else "")
    )

    def progress(what: str, done: int, task_total: int) -> None:
        if args.quiet:
            return
        print(f"  [{done:>4}/{task_total}] {what}", flush=True)

    results = run_suite(
        requests,
        workers=args.workers,
        out_dir=args.out,
        resume=not args.no_resume,
        progress=progress,
    )
    for result in results:
        print()
        print(result.summary())
        if args.profile:
            profiles = [
                trial.profile
                for point in result.points
                for trial in point.trial_results
                if trial.profile
            ]
            if profiles:
                print()
                print(format_profile(merge_profiles(profiles), title=f"profile: {result.name}"))
    if args.out:
        print(f"\nresults persisted under {args.out}/ (one <experiment>.json per sweep)")
    return 0


def _cmd_perf_gate(args: argparse.Namespace) -> int:
    """Run the Fig. 9a workload and compare events/sec against a BENCH baseline."""
    baseline_path = pathlib.Path(args.baseline)
    if not baseline_path.is_file():
        raise SystemExit(f"perf-gate: baseline {baseline_path} not found")
    baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
    baseline_rate = baseline.get("events_per_sec")
    if not baseline_rate:
        raise SystemExit(f"perf-gate: baseline {baseline_path} has no events_per_sec")

    config = ExperimentConfig.small().with_overrides(
        trials=args.trials, max_duration=400.0
    )
    axes = {"wifi_range": tuple(float(v) for v in args.wifi_range.split(","))}
    spec = get_experiment(args.experiment)
    # Warm-up pass (imports, name/classification caches), then the timed run.
    if args.warmup:
        run_experiment(spec, config, axes=axes)
    start = time.perf_counter()
    result = run_experiment(spec, config, axes=axes)
    wall = time.perf_counter() - start
    events = sum(int(point.extras.get("events", 0)) for point in result.points)
    rate = events / wall if wall > 0 else 0.0
    ratio = rate / baseline_rate
    floor = args.min_ratio * baseline_rate
    print(
        f"perf-gate: {args.experiment} events={events} wall={wall:.3f}s "
        f"events/sec={rate:,.1f} baseline={baseline_rate:,.1f} "
        f"ratio={ratio:.2f} (min {args.min_ratio:.2f})"
    )
    if rate < floor:
        print(
            f"perf-gate: FAIL — throughput below {args.min_ratio:.0%} of the committed "
            f"baseline ({rate:,.1f} < {floor:,.1f} events/sec). If this machine is "
            f"genuinely slower, refresh benchmark_results/BENCH_*.json (see "
            f"EXPERIMENTS.md, 'Profiling & performance')."
        )
        return 1
    print("perf-gate: OK")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="List and run the paper's experiments (declarative sweep registry).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    list_parser = sub.add_parser("list", help="list registered experiments")
    list_parser.add_argument(
        "--registries", action="store_true",
        help="also list the topology/protocol/propagation registries",
    )
    list_parser.set_defaults(func=_cmd_list)

    run_parser = sub.add_parser("run", help="run one or more experiments (or 'all')")
    run_parser.add_argument(
        "experiments", nargs="+", metavar="EXPERIMENT",
        help="experiment names/aliases (fig9a ... table1), or 'all'",
    )
    run_parser.add_argument("--preset", choices=("tiny", "small", "paper"), default="small",
                            help="scale preset (default: small)")
    run_parser.add_argument("--workers", type=int, default=None,
                            help="process-pool size for the whole task grid (default: preset)")
    run_parser.add_argument("--trials", type=int, default=None, help="trials per sweep point")
    run_parser.add_argument("--seed", type=int, default=None, help="base seed")
    run_parser.add_argument("--topology", default=None,
                            help="registered topology name (quadrant, clusters, corridor, ...)")
    run_parser.add_argument("--propagation", default=None,
                            help="registered propagation model (unit_disk, log_distance, obstacle)")
    run_parser.add_argument("--out", default=None, metavar="DIR",
                            help="persist per-task results + aggregated JSON under DIR (enables resume)")
    run_parser.add_argument("--no-resume", action="store_true",
                            help="ignore previously persisted task results")
    run_parser.add_argument("--axis", action="append", default=[], metavar="NAME=V1,V2",
                            help="override an axis, e.g. --axis wifi_range=40,80 (repeatable)")
    run_parser.add_argument("--quiet", action="store_true", help="suppress per-task progress lines")
    run_parser.add_argument("--profile", action="store_true",
                            help="collect per-trial performance counters and print the breakdown")
    run_parser.set_defaults(func=_cmd_run)

    gate_parser = sub.add_parser(
        "perf-gate",
        help="fail if fig9a events/sec regressed vs the committed BENCH baseline",
    )
    gate_parser.add_argument("--experiment", default="fig9a",
                             help="experiment to time (default: fig9a)")
    gate_parser.add_argument("--baseline", default=str(DEFAULT_GATE_BASELINE), metavar="JSON",
                             help="BENCH_*.json baseline to compare against")
    gate_parser.add_argument("--min-ratio", type=float, default=0.75,
                             help="fail below this fraction of the baseline events/sec (default: 0.75)")
    gate_parser.add_argument("--trials", type=int, default=1,
                             help="trials per sweep point for the timed run (default: 1)")
    gate_parser.add_argument("--wifi-range", default="40,80", metavar="V1,V2",
                             help="wifi_range axis of the timed run (default: 40,80 — the BENCH axes)")
    gate_parser.add_argument("--no-warmup", dest="warmup", action="store_false",
                             help="skip the untimed warm-up pass")
    gate_parser.set_defaults(func=_cmd_perf_gate)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
