"""Experiments CLI: list and run the paper's artefacts from the command line.

Usage (also installed as the ``repro-experiments`` console script)::

    python -m repro.experiments list
    python -m repro.experiments run fig9a --preset tiny --workers 2
    python -m repro.experiments run all --preset small --workers 8 --out sweeps
    python -m repro.experiments run fig10 --axis wifi_range=40,80 --trials 2

``run`` flattens every requested experiment into one task grid executed
over a single persistent process pool; with ``--out`` each finished task is
persisted (content-hash keyed), so an interrupted sweep resumes from the
completed tasks on the next invocation.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional, Sequence

from repro.experiments.scenario import ExperimentConfig
from repro.experiments.spec import available_experiments, get_experiment
from repro.experiments.sweep import SweepRequest, run_suite


def _parse_axis_value(token: str) -> object:
    token = token.strip()
    if token.lower() in ("none", "null"):
        return None
    for parse in (int, float):
        try:
            return parse(token)
        except ValueError:
            continue
    return token


def _parse_axis_overrides(entries: Sequence[str]) -> Dict[str, tuple]:
    axes: Dict[str, tuple] = {}
    for entry in entries:
        if "=" not in entry:
            raise SystemExit(f"--axis expects NAME=V1,V2,... (got {entry!r})")
        name, _, values = entry.partition("=")
        axes[name.strip()] = tuple(_parse_axis_value(value) for value in values.split(","))
    return axes


def _resolve_names(names: Sequence[str]) -> List[str]:
    if any(name.lower() == "all" for name in names):
        return available_experiments()
    resolved: List[str] = []
    for name in names:
        spec = get_experiment(name)  # raises with the available list on typos
        if spec.name not in resolved:
            resolved.append(spec.name)
    return resolved


def _cmd_list(_args: argparse.Namespace) -> int:
    rows = []
    for name in available_experiments():
        spec = get_experiment(name)
        rows.append((name, ", ".join(spec.artefacts), spec.task_count(), spec.title))
    name_width = max(len(row[0]) for row in rows)
    artefact_width = max(len(row[1]) for row in rows)
    print(f"{'name':<{name_width}}  {'artefacts':<{artefact_width}}  tasks  title")
    for name, artefacts, tasks, title in rows:
        print(f"{name:<{name_width}}  {artefacts:<{artefact_width}}  {tasks:>5}  {title}")
    print("\n(tasks = points x trials at the default small() preset and axes)")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    names = _resolve_names(args.experiments)
    overrides: Dict[str, object] = {}
    if args.trials is not None:
        overrides["trials"] = args.trials
    if args.seed is not None:
        overrides["base_seed"] = args.seed
    if args.topology is not None:
        overrides["topology"] = args.topology
    if args.workers is not None:
        overrides["workers"] = args.workers
    config = ExperimentConfig.preset(args.preset).with_overrides(**overrides)
    axes = _parse_axis_overrides(args.axis)

    requests = []
    matched_axes = set()
    for name in names:
        spec = get_experiment(name)
        spec_axes = {axis.name for axis in spec.axes}
        matched_axes |= spec_axes & set(axes)
        requests.append(
            SweepRequest(
                spec=spec,
                config=config,
                axes={key: values for key, values in axes.items() if key in spec_axes} or None,
            )
        )
    unmatched = set(axes) - matched_axes
    if unmatched:
        known = sorted({axis.name for name in names for axis in get_experiment(name).axes})
        raise SystemExit(
            f"--axis {'/'.join(sorted(unmatched))} matches no axis of the requested "
            f"experiment(s); available axes: {known}"
        )

    total = sum(
        request.spec.with_axes(request.axes).task_count(config) for request in requests
    )
    print(
        f"running {len(requests)} experiment(s), {total} tasks, "
        f"preset={args.preset}, workers={args.workers or config.workers}"
        + (f", out={args.out}" if args.out else "")
    )

    def progress(what: str, done: int, task_total: int) -> None:
        if args.quiet:
            return
        print(f"  [{done:>4}/{task_total}] {what}", flush=True)

    results = run_suite(
        requests,
        workers=args.workers,
        out_dir=args.out,
        resume=not args.no_resume,
        progress=progress,
    )
    for result in results:
        print()
        print(result.summary())
    if args.out:
        print(f"\nresults persisted under {args.out}/ (one <experiment>.json per sweep)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="List and run the paper's experiments (declarative sweep registry).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    list_parser = sub.add_parser("list", help="list registered experiments")
    list_parser.set_defaults(func=_cmd_list)

    run_parser = sub.add_parser("run", help="run one or more experiments (or 'all')")
    run_parser.add_argument(
        "experiments", nargs="+", metavar="EXPERIMENT",
        help="experiment names/aliases (fig9a ... table1), or 'all'",
    )
    run_parser.add_argument("--preset", choices=("tiny", "small", "paper"), default="small",
                            help="scale preset (default: small)")
    run_parser.add_argument("--workers", type=int, default=None,
                            help="process-pool size for the whole task grid (default: preset)")
    run_parser.add_argument("--trials", type=int, default=None, help="trials per sweep point")
    run_parser.add_argument("--seed", type=int, default=None, help="base seed")
    run_parser.add_argument("--topology", default=None,
                            help="registered topology name (quadrant, clusters, corridor, ...)")
    run_parser.add_argument("--out", default=None, metavar="DIR",
                            help="persist per-task results + aggregated JSON under DIR (enables resume)")
    run_parser.add_argument("--no-resume", action="store_true",
                            help="ignore previously persisted task results")
    run_parser.add_argument("--axis", action="append", default=[], metavar="NAME=V1,V2",
                            help="override an axis, e.g. --axis wifi_range=40,80 (repeatable)")
    run_parser.add_argument("--quiet", action="store_true", help="suppress per-task progress lines")
    run_parser.set_defaults(func=_cmd_run)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
