"""Experiments CLI: list, run, store, report and diff the paper's artefacts.

Usage (also installed as the ``repro-experiments`` console script)::

    python -m repro.experiments list
    python -m repro.experiments run fig9a --preset tiny --workers 2
    python -m repro.experiments run all --preset small --workers 8 --out sweeps
    python -m repro.experiments run fig10 --axis wifi_range=40,80 --trials 2
    python -m repro.experiments run fig9a --store results-store --tag nightly
    python -m repro.experiments report fig9a --store results-store
    python -m repro.experiments report fig9a@nightly --metric extras.events
    python -m repro.experiments diff fig9a@nightly benchmark_results/BENCH_fig-9a-*.json
    python -m repro.experiments export fig9a --format gnuplot --axis wifi_range
    python -m repro.experiments store list
    python -m repro.experiments store gc --keep 3
    python -m repro.experiments perf-gate
    python -m repro.experiments run fig9a --preset tiny --dry-run
    python -m repro.experiments serve --store results-store --port 7341
    python -m repro.experiments worker --port 7341 --exit-when-idle
    python -m repro.experiments submit fig9a --preset tiny --tag cluster
    python -m repro.experiments status --port 7341
    python -m repro.experiments stop --port 7341

``run`` flattens every requested experiment into one task grid executed
over a single persistent process pool; with ``--out`` or ``--store`` each
finished task is persisted (content-hash keyed), so an interrupted sweep
resumes from the completed tasks on the next invocation.  ``--store``
additionally saves every aggregate into a content-addressed
:class:`~repro.experiments.store.ResultStore` (optionally ``--tag``-ged).
``report``/``diff``/``export`` consume stored runs by reference (``fig9a``,
``fig9a@latest``, ``fig9a@<tag>``, ``fig9a@<key>``) or persisted JSON files
(full ``SweepResult`` dumps and the row-based ``BENCH_*.json`` artifacts
alike).  ``--profile`` collects per-trial performance counters (see
:mod:`repro.profiling`) and prints the aggregated per-subsystem breakdown.
``perf-gate`` re-runs the Fig. 9a benchmark workload and fails when the
:func:`repro.experiments.report.throughput_verdict` against the committed
``BENCH_*.json`` baseline regresses — the CI perf smoke job.

``serve``/``worker``/``submit``/``status``/``stop`` drive the distributed
sweep cluster (:mod:`repro.cluster`): a coordinator serves the same task
grid ``run`` would execute to worker loops over localhost/LAN TCP, merging
results through the shared store so cluster, pool and serial runs are
byte-identical and resume each other.  ``run --dry-run`` prints that grid
(point/variant/trial × content-hash task key) without executing — the exact
listing ``submit`` sends.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time
from typing import Dict, List, Optional, Sequence

from repro.experiments import report as report_mod
from repro.experiments.metrics import SweepResult
from repro.experiments.query import ResultSet
from repro.experiments.scenario import ExperimentConfig
from repro.experiments.spec import available_experiments, get_experiment
from repro.experiments.store import ResultStore, StoredRun, content_key
from repro.experiments.sweep import (
    SweepRequest,
    run_experiment,
    run_suite,
    task_listing,
)
from repro.profiling import format_profile, merge_profiles

DEFAULT_STORE = "results-store"

_GATE_BASELINE_NAME = "BENCH_fig-9a-download-time-per-rpf-strategy.json"


def _default_gate_baseline() -> pathlib.Path:
    """Committed fig9a baseline: the repo checkout when running from src/,
    else ./benchmark_results (installed console script run from a checkout)."""
    in_repo = pathlib.Path(__file__).resolve().parents[3] / "benchmark_results" / _GATE_BASELINE_NAME
    if in_repo.is_file():
        return in_repo
    return pathlib.Path("benchmark_results") / _GATE_BASELINE_NAME


DEFAULT_GATE_BASELINE = _default_gate_baseline()


def _parse_axis_value(token: str) -> object:
    token = token.strip()
    if token.lower() in ("none", "null"):
        return None
    for parse in (int, float):
        try:
            return parse(token)
        except ValueError:
            continue
    return token


def _parse_axis_overrides(entries: Sequence[str]) -> Dict[str, tuple]:
    axes: Dict[str, tuple] = {}
    for entry in entries:
        if "=" not in entry:
            raise SystemExit(f"--axis expects NAME=V1,V2,... (got {entry!r})")
        name, _, values = entry.partition("=")
        axes[name.strip()] = tuple(_parse_axis_value(value) for value in values.split(","))
    return axes


def _resolve_names(names: Sequence[str]) -> List[str]:
    if any(name.lower() == "all" for name in names):
        return available_experiments()
    resolved: List[str] = []
    for name in names:
        spec = get_experiment(name)  # raises with the available list on typos
        if spec.name not in resolved:
            resolved.append(spec.name)
    return resolved


def _cmd_list(args: argparse.Namespace) -> int:
    rows = []
    for name in available_experiments():
        spec = get_experiment(name)
        rows.append((name, ", ".join(spec.artefacts), spec.task_count(), spec.title))
    name_width = max(len(row[0]) for row in rows)
    artefact_width = max(len(row[1]) for row in rows)
    print(f"{'name':<{name_width}}  {'artefacts':<{artefact_width}}  tasks  title")
    for name, artefacts, tasks, title in rows:
        print(f"{name:<{name_width}}  {artefacts:<{artefact_width}}  {tasks:>5}  {title}")
    print("\n(tasks = points x trials at the default small() preset and axes)")
    if getattr(args, "registries", False):
        from repro.churn import available_churn_models
        from repro.experiments.scenario import available_protocols
        from repro.experiments.topology import available_topologies
        from repro.faults import available_fault_models
        from repro.wireless.propagation import available_propagation_models

        print()
        print("registries (select via ExperimentConfig / ChannelConfig / --topology):")
        print(f"  topologies  : {', '.join(available_topologies())}")
        print(f"  protocols   : {', '.join(available_protocols())}")
        print(f"  propagation : {', '.join(available_propagation_models())}")
        print(f"  churn       : {', '.join(available_churn_models())}")
        print(f"  faults      : {', '.join(available_fault_models())}")
    return 0


def _config_from_args(args: argparse.Namespace) -> tuple:
    """``(config, overrides)`` from the shared sweep-config flags."""
    overrides: Dict[str, object] = {}
    if args.trials is not None:
        overrides["trials"] = args.trials
    if args.seed is not None:
        overrides["base_seed"] = args.seed
    if args.topology is not None:
        overrides["topology"] = args.topology
    if args.propagation is not None:
        overrides["propagation"] = args.propagation
    if args.churn is not None:
        overrides["churn"] = args.churn
    if args.faults is not None:
        overrides["faults"] = args.faults
    if args.invariants:
        overrides["invariants"] = True
    if args.array_backend is not None:
        overrides["array_backend"] = args.array_backend
    if args.shards is not None:
        overrides["shards"] = args.shards
    if args.shard_workers is not None:
        overrides["shard_workers"] = args.shard_workers
    if args.shard_executor is not None:
        overrides["shard_executor"] = args.shard_executor
    if args.scalar_query_limit is not None:
        overrides["scalar_query_limit"] = args.scalar_query_limit
    if getattr(args, "workers", None) is not None:
        overrides["workers"] = args.workers
    if args.profile:
        overrides["profile"] = True
    config = ExperimentConfig.preset(args.preset).with_overrides(**overrides)
    return config, overrides


def _build_requests(
    names: Sequence[str],
    config: ExperimentConfig,
    axes: Dict[str, tuple],
    overrides: Dict[str, object],
) -> List[SweepRequest]:
    """The suite's :class:`SweepRequest` list, with axis/override validation."""
    requests: List[SweepRequest] = []
    matched_axes = set()
    for name in names:
        spec = get_experiment(name)
        spec_axes = {axis.name for axis in spec.axes}
        matched_axes |= spec_axes & set(axes)
        requests.append(
            SweepRequest(
                spec=spec,
                config=config,
                axes={key: values for key, values in axes.items() if key in spec_axes} or None,
            )
        )
    shadowed = sorted({
        key
        for name in names
        for variant in get_experiment(name).variants
        for key in variant.overrides
        if key in overrides
    })
    if shadowed:
        print(
            f"note: variant overrides pin {', '.join(shadowed)} for the requested "
            f"experiment(s); the corresponding command-line value(s) only apply to "
            f"variants that do not set them"
        )
    unmatched = set(axes) - matched_axes
    if unmatched:
        known = sorted({axis.name for name in names for axis in get_experiment(name).axes})
        raise SystemExit(
            f"--axis {'/'.join(sorted(unmatched))} matches no axis of the requested "
            f"experiment(s); available axes: {known}"
        )
    return requests


def _print_task_listing(
    requests: Sequence[SweepRequest], store: Optional[str], resume: bool
) -> int:
    """Render the flattened grid (what run would execute / submit would send)."""
    rows = task_listing(requests, store=store, resume=resume)
    cached = sum(1 for row in rows if row["cached"])
    print(f"{'task':<44} {'protocol':<12} {'seed':>10}  label")
    for row in rows:
        params = ", ".join(f"{k}={v}" for k, v in row["parameters"].items())
        marker = "  [cached]" if row["cached"] else ""
        print(
            f"{row['task']:<44} {row['protocol']:<12} {row['seed']:>10}  "
            f"{row['label']}" + (f" ({params})" if params else "") + marker
        )
    print(
        f"\n{len(rows)} task(s)"
        + (f", {cached} already satisfied by the store's task cache" if cached else "")
        + " — nothing executed (--dry-run)"
    )
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    if args.tag and not args.store:
        raise SystemExit("--tag requires --store (tags live on stored runs)")
    names = _resolve_names(args.experiments)
    config, overrides = _config_from_args(args)
    axes = _parse_axis_overrides(args.axis)
    requests = _build_requests(names, config, axes, overrides)
    if args.dry_run:
        return _print_task_listing(requests, args.store, resume=not args.no_resume)

    total = sum(
        request.spec.with_axes(request.axes).task_count(config) for request in requests
    )
    print(
        f"running {len(requests)} experiment(s), {total} tasks, "
        f"preset={args.preset}, workers={args.workers or config.workers}"
        + (f", out={args.out}" if args.out else "")
        + (f", store={args.store}" if args.store else "")
    )

    def progress(what: str, done: int, task_total: int) -> None:
        if args.quiet:
            return
        print(f"  [{done:>4}/{task_total}] {what}", flush=True)

    results = run_suite(
        requests,
        workers=args.workers,
        out_dir=args.out,
        store=args.store,
        tag=args.tag,
        resume=not args.no_resume,
        progress=progress,
    )
    for result in results:
        print()
        print(report_mod.to_text(result))
        if args.profile:
            profiles = [
                trial.profile
                for point in result.points
                for trial in point.trial_results
                if trial.profile
            ]
            if profiles:
                print()
                print(format_profile(merge_profiles(profiles), title=f"profile: {result.name}"))
    if args.out:
        print(f"\nresults persisted under {args.out}/ (one <experiment>.json per sweep)")
    if args.store:
        store = ResultStore(args.store)
        print(f"\nstored under {args.store}/ (content-addressed; see 'store list'):")
        # Address each run by its own content key: latest() could name a
        # *different* run when this content was first stored earlier (saves
        # are idempotent and keep the original timestamp).
        for name, result in zip(names, results):
            record = store.resolve(f"{name}@{content_key(result)}")
            tags = f" tags={','.join(record.tags)}" if record.tags else ""
            print(f"  {name}@{record.key}{tags}")
    return 0


def _cmd_perf_gate(args: argparse.Namespace) -> int:
    """Run the Fig. 9a workload and compare events/sec against a BENCH baseline."""
    baseline_path = pathlib.Path(args.baseline)
    if not baseline_path.is_file():
        raise SystemExit(f"perf-gate: baseline {baseline_path} not found")
    baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
    baseline_rate = baseline.get("events_per_sec")
    if not baseline_rate:
        raise SystemExit(f"perf-gate: baseline {baseline_path} has no events_per_sec")

    overrides: Dict[str, object] = {"trials": args.trials, "max_duration": 400.0}
    if args.neighbor_index is not None:
        overrides["neighbor_index"] = args.neighbor_index
    config = ExperimentConfig.small().with_overrides(**overrides)
    # --axis generalizes the gate beyond fig9a (e.g. the scaling workload);
    # without it the historical wifi_range default keeps old invocations
    # (and the committed fig9a BENCH axes) working unchanged.
    if args.axis:
        axes = _parse_axis_overrides(args.axis)
    else:
        axes = {"wifi_range": tuple(float(v) for v in args.wifi_range.split(","))}
    spec = get_experiment(args.experiment)
    # Warm-up pass (imports, name/classification caches), then the timed run.
    if args.warmup:
        run_experiment(spec, config, axes=axes)
    start = time.perf_counter()
    result = run_experiment(spec, config, axes=axes)
    wall = time.perf_counter() - start
    events = sum(int(point.extras.get("events", 0)) for point in result.points)
    rate = events / wall if wall > 0 else 0.0
    # The gate is a direction-aware diff verdict: only a drop below
    # min_ratio * baseline regresses (report.throughput_verdict).
    verdict = report_mod.throughput_verdict(rate, baseline_rate, args.min_ratio)
    print(
        f"perf-gate: {args.experiment} events={events} wall={wall:.3f}s "
        f"events/sec={rate:,.1f} baseline={baseline_rate:,.1f} "
        f"ratio={rate / baseline_rate:.2f} (min {args.min_ratio:.2f}) "
        f"verdict={verdict.verdict}"
    )
    if verdict.verdict == report_mod.REGRESSED:
        print(
            f"perf-gate: FAIL — throughput below {args.min_ratio:.0%} of the committed "
            f"baseline ({rate:,.1f} < {args.min_ratio * baseline_rate:,.1f} events/sec). "
            f"If this machine is genuinely slower, refresh "
            f"benchmark_results/BENCH_*.json (see EXPERIMENTS.md, 'Profiling & "
            f"performance')."
        )
        return 1
    print("perf-gate: OK")
    return 0


# ==================================================== results API commands
def _load_run(token: str, store_root: str):
    """Resolve a run reference: a JSON file path, else a store reference.

    Returns ``(result, record)``: a :class:`SweepResult` for full
    dumps/stored runs or the raw rows payload for row-based files (the
    committed ``BENCH_*.json``), plus the :class:`StoredRun` metadata
    record when the reference resolved through the store (``None`` for
    files).
    """
    path = pathlib.Path(token)
    if path.is_file():
        return report_mod.load_result(path), None
    if path.suffix == ".json" or "/" in token:
        raise SystemExit(f"result file {token} not found")
    store = ResultStore(store_root)
    try:
        record = store.resolve(token)
        return store.load(record), record
    except KeyError as exc:
        raise SystemExit(f"{exc.args[0]} (did you run with --store {store_root}?)")


def _write_output(text: str, out: Optional[str]) -> None:
    if out:
        pathlib.Path(out).write_text(text + "\n", encoding="utf-8")
        print(f"wrote {out}")
    else:
        print(text)


def _meta_lines(record: StoredRun) -> List[str]:
    meta = record.meta
    registries = meta.get("registries") or {}
    pairs = [
        ("key", record.key),
        ("spec", record.spec),
        ("created", record.created),
        ("tags", ", ".join(record.tags) or "-"),
        ("points", meta.get("points")),
        ("trials (total)", meta.get("trials")),
        ("config hash", meta.get("config_hash", "-")),
        ("protocols", ", ".join(meta.get("protocols", [])) or "-"),
        (
            "registries",
            ", ".join(f"{key}={value}" for key, value in registries.items()) or "-",
        ),
    ]
    return [f"- **{key}**: {value}" for key, value in pairs]


def _select_rows(result: SweepResult, metrics: Sequence[str], level: str):
    result_set = ResultSet.from_sweep(result)
    if level == "trial":
        result_set = result_set.trials()
    return report_mod.tabulate(result_set, metrics)


def _rows_payload(result: object, fallback_name: str):
    """``(name, rows)`` for a row-based result: a payload dict or a bare list."""
    if isinstance(result, list):
        return fallback_name, result
    return result.get("name", fallback_name), result.get("points", [])


def _cmd_report(args: argparse.Namespace) -> int:
    result, record = _load_run(args.run, args.store)
    lines: List[str] = []
    if isinstance(result, SweepResult):
        lines.append(f"# {result.name}")
        lines.append("")
        if result.description:
            lines.extend([result.description, ""])
        if record is not None:
            lines.extend(_meta_lines(record))
            lines.append("")
        if args.metric:
            rows = _select_rows(result, args.metric, args.level)
        else:
            rows = result.rows()
    else:  # row-based payload (BENCH_*.json or a bare row list)
        if args.metric:
            raise SystemExit(
                "--metric needs a full SweepResult dump; row-based files "
                "(BENCH_*.json) only carry their archived columns"
            )
        name, rows = _rows_payload(result, args.run)
        lines.append(f"# {name}")
        lines.append("")
    lines.append(report_mod.rows_to_markdown(rows))
    _write_output("\n".join(lines), args.out)
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    side_a, record_a = _load_run(args.a, args.store)
    side_b, record_b = _load_run(args.b, args.store)
    diff_report = report_mod.diff(
        side_a, side_b, tolerance=args.tolerance, trial_level=not args.no_trials
    )
    text = diff_report.to_markdown() if args.format == "md" else diff_report.summary()
    note = _cross_backend_note(record_a, record_b)
    if note:
        text = f"{note}\n\n{text}"
    _write_output(text, args.out)
    return 1 if diff_report.verdict == report_mod.REGRESSED else 0


def _cross_backend_note(record_a, record_b) -> Optional[str]:
    """A warning line when the two runs used different hot-path backends.

    Simulation results are byte-identical across array backends, but any
    wall-clock/profile numbers are not comparable across them — flag it
    rather than letting a perf comparison silently span backends.
    """
    backends = []
    for record in (record_a, record_b):
        if record is None:
            return None
        registries = record.meta.get("registries") or {}
        backends.append(
            (registries.get("array_backend"), registries.get("numpy_version"))
        )
    if backends[0] == backends[1] or None in (backends[0][0], backends[1][0]):
        return None

    def label(entry):
        backend, version = entry
        return f"{backend} (numpy {version})" if version else str(backend)

    return (
        f"NOTE: cross-backend comparison — a ran array_backend={label(backends[0])}, "
        f"b ran array_backend={label(backends[1])}; results must still match, "
        "but wall-clock/profile numbers are not comparable."
    )


def _cmd_export(args: argparse.Namespace) -> int:
    result, _ = _load_run(args.run, args.store)
    if args.format == "gnuplot":
        if not isinstance(result, SweepResult):
            raise SystemExit("gnuplot export needs a full SweepResult dump")
        metric = args.metric[0] if args.metric else "download_time"
        text = report_mod.to_gnuplot(result, axis=args.axis, metric=metric)
    else:
        if isinstance(result, SweepResult):
            rows = (
                _select_rows(result, args.metric, args.level)
                if args.metric
                else result.rows()
            )
        else:
            _, rows = _rows_payload(result, args.run)
        if args.format == "csv":
            text = report_mod.rows_to_csv(rows).rstrip("\n")
        else:
            text = report_mod.rows_to_markdown(rows)
    _write_output(text, args.out)
    return 0


# ====================================================== cluster commands
def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.cluster import Coordinator

    coordinator = Coordinator(
        store=args.store,
        host=args.host,
        port=args.port,
        lease_ttl=args.lease_ttl,
        heartbeat_interval=args.heartbeat_interval,
        max_attempts=args.max_attempts,
        profile=args.profile,
        on_event=None if args.quiet else lambda text: print(text, flush=True),
    ).start()
    print(
        f"serving sweep tasks on {coordinator.endpoint} "
        f"(store={args.store}, lease_ttl={args.lease_ttl:g}s); "
        f"stop with 'repro-experiments stop --port {coordinator.port}' or Ctrl-C",
        flush=True,
    )
    try:
        while coordinator._server is not None:
            time.sleep(0.2)
    except KeyboardInterrupt:
        pass
    finally:
        coordinator.stop()
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    import signal

    from repro.cluster import ClusterWorker, CoordinatorUnavailable

    worker = ClusterWorker(
        args.host,
        args.port,
        worker_id=args.id,
        poll_interval=args.poll_interval,
        exit_when_idle=args.exit_when_idle,
        max_tasks=args.max_tasks,
        on_event=None if args.quiet else lambda text: print(text, flush=True),
    )
    # SIGTERM drains gracefully: the current lease finishes and uploads, then
    # the loop exits.  An abrupt kill is what the coordinator's lease TTL is
    # for — the task re-dispatches to another worker.
    signal.signal(signal.SIGTERM, lambda signum, frame: worker.request_drain())
    try:
        executed = worker.run()
    except CoordinatorUnavailable as exc:
        raise SystemExit(f"worker: {exc}")
    except KeyboardInterrupt:
        executed = worker.executed
    print(f"worker {worker.id}: {executed} task(s) executed, {worker.failed} failed")
    return 0


def _cluster_client(args: argparse.Namespace, retries: int = 5):
    from repro.cluster import ClusterClient

    return ClusterClient(args.host, args.port, retries=retries)


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.cluster import ClusterError, build_submission_payload

    names = _resolve_names(args.experiments)
    config, overrides = _config_from_args(args)
    axes = _parse_axis_overrides(args.axis)
    requests = _build_requests(names, config, axes, overrides)
    if args.dry_run:
        return _print_task_listing(requests, None, resume=not args.no_resume)
    payload = build_submission_payload(
        names,
        config,
        {
            request.spec.name: dict(request.axes)
            for request in requests
            if request.axes
        },
        tag=args.tag,
        resume=not args.no_resume,
    )
    try:
        reply = _cluster_client(args).request("submit", **payload)
    except ClusterError as exc:
        raise SystemExit(f"submit: {exc}")
    print(
        f"submission {reply['submission']} accepted by {args.host}:{args.port}: "
        f"{reply['tasks']} task(s) queued, {reply['resumed']} resumed from the "
        f"store's task cache ({', '.join(reply['experiments'])})"
    )
    return 0


def _cmd_status(args: argparse.Namespace) -> int:
    from repro.cluster import ClusterError, render_status

    client = _cluster_client(args, retries=0)
    try:
        if args.watch:
            for snapshot in client.stream("status", watch=True, interval=args.interval):
                print(json.dumps(snapshot) if args.json else render_status(snapshot))
                print(flush=True)
            return 0
        snapshot = client.request("status")
        print(json.dumps(snapshot) if args.json else render_status(snapshot))
        return 0
    except ClusterError as exc:
        raise SystemExit(f"status: {exc}")


def _cmd_stop(args: argparse.Namespace) -> int:
    from repro.cluster import ClusterError

    try:
        _cluster_client(args, retries=0).request("stop")
    except ClusterError as exc:
        raise SystemExit(f"stop: {exc}")
    print(f"coordinator at {args.host}:{args.port} stopping")
    return 0


def _cmd_store_list(args: argparse.Namespace) -> int:
    records = ResultStore(args.store).list(spec=args.spec, tag=args.tag)
    if not records:
        print(f"no stored runs under {args.store}/")
        return 0
    spec_width = max(len(record.spec) for record in records)
    print(f"{'spec':<{spec_width}}  {'key':<16}  {'created':<25}  tags")
    for record in records:
        print(
            f"{record.spec:<{spec_width}}  {record.key:<16}  "
            f"{record.created:<25}  {', '.join(record.tags) or '-'}"
        )
    return 0


def _cmd_store_gc(args: argparse.Namespace) -> int:
    removed = ResultStore(args.store).gc(
        keep=args.keep, spec=args.spec, keep_tagged=not args.prune_tagged
    )
    for record in removed:
        print(f"removed {record.spec}@{record.key}")
    print(f"{len(removed)} run(s) removed (kept {args.keep} most recent per spec)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="List and run the paper's experiments (declarative sweep registry).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    list_parser = sub.add_parser("list", help="list registered experiments")
    list_parser.add_argument(
        "--registries", action="store_true",
        help="also list the topology/protocol/propagation/churn/faults registries",
    )
    list_parser.set_defaults(func=_cmd_list)

    def add_config_flags(target: argparse.ArgumentParser) -> None:
        """Sweep-config flags shared by ``run`` and ``submit``."""
        target.add_argument(
            "experiments", nargs="+", metavar="EXPERIMENT",
            help="experiment names/aliases (fig9a ... table1), or 'all'",
        )
        target.add_argument("--preset", choices=("tiny", "small", "paper"), default="small",
                            help="scale preset (default: small)")
        target.add_argument("--trials", type=int, default=None, help="trials per sweep point")
        target.add_argument("--seed", type=int, default=None, help="base seed")
        target.add_argument("--topology", default=None,
                            help="registered topology name (quadrant, clusters, corridor, ...)")
        target.add_argument("--propagation", default=None,
                            help="registered propagation model (unit_disk, log_distance, obstacle)")
        target.add_argument("--churn", default=None,
                            help="registered churn model (none, poisson, flashcrowd, trace)")
        target.add_argument("--faults", default=None,
                            help="registered fault model (none, link_flap, partition, stall, degrade)")
        target.add_argument("--invariants", action="store_true",
                            help="enable runtime safety/liveness invariant monitoring "
                                 "(pure observation; a violation fails the trial)")
        target.add_argument("--array-backend", default=None,
                            choices=["auto", "numpy", "scalar"],
                            help="hot-path implementation (results are byte-identical; "
                                 "'auto' uses NumPy when importable)")
        target.add_argument("--shards", type=int, default=None,
                            help="region-shard the medium into K x-stripe regions "
                                 "(byte-identical results; see repro.wireless.sharded)")
        target.add_argument("--shard-workers", type=int, default=None,
                            help="step shard snapshot builds with this many workers "
                                 "at each epoch barrier (default 1 = serial)")
        target.add_argument("--shard-executor", default=None,
                            choices=["thread", "process", "serial"],
                            help="intra-trial shard executor (default thread; only "
                                 "consulted when --shard-workers > 1)")
        target.add_argument("--scalar-query-limit", type=int, default=None,
                            help="population threshold for the array index's "
                                 "scalar/vectorized crossover (default: 256 for grid, "
                                 "1 for grid_array)")
        target.add_argument("--tag", default=None,
                            help="tag saved runs, e.g. --tag nightly")
        target.add_argument("--no-resume", action="store_true",
                            help="ignore previously persisted task results")
        target.add_argument("--axis", action="append", default=[], metavar="NAME=V1,V2",
                            help="override an axis, e.g. --axis wifi_range=40,80 (repeatable)")
        target.add_argument("--profile", action="store_true",
                            help="collect per-trial performance counters")
        target.add_argument("--dry-run", action="store_true",
                            help="print the flattened task grid (point/variant/trial x "
                                 "content-hash key) without executing anything")

    def add_cluster_flags(target: argparse.ArgumentParser) -> None:
        from repro.cluster import DEFAULT_HOST, DEFAULT_PORT

        target.add_argument("--host", default=DEFAULT_HOST,
                            help=f"coordinator host (default: {DEFAULT_HOST})")
        target.add_argument("--port", type=int, default=DEFAULT_PORT,
                            help=f"coordinator port (default: {DEFAULT_PORT})")

    run_parser = sub.add_parser("run", help="run one or more experiments (or 'all')")
    add_config_flags(run_parser)
    run_parser.add_argument("--workers", type=int, default=None,
                            help="process-pool size for the whole task grid (default: preset)")
    run_parser.add_argument("--out", default=None, metavar="DIR",
                            help="persist per-task results + aggregated JSON under DIR (enables resume)")
    run_parser.add_argument("--store", default=None, metavar="DIR",
                            help="save aggregates into a content-addressed ResultStore under DIR "
                                 "(enables resume; see 'report'/'diff'/'export'/'store')")
    run_parser.add_argument("--quiet", action="store_true", help="suppress per-task progress lines")
    run_parser.set_defaults(func=_cmd_run)

    serve_parser = sub.add_parser(
        "serve", help="serve a sweep task grid to cluster workers (coordinator)"
    )
    add_cluster_flags(serve_parser)
    serve_parser.add_argument("--store", default=DEFAULT_STORE, metavar="DIR",
                              help=f"shared ResultStore root (default: {DEFAULT_STORE})")
    serve_parser.add_argument("--lease-ttl", type=float, default=15.0,
                              help="seconds without a heartbeat before a lease expires "
                                   "and its task re-dispatches (default: 15)")
    serve_parser.add_argument("--heartbeat-interval", type=float, default=3.0,
                              help="heartbeat cadence advertised to workers (default: 3)")
    serve_parser.add_argument("--max-attempts", type=int, default=5,
                              help="attempts before a task is poisoned and its "
                                   "submission fails (default: 5)")
    serve_parser.add_argument("--profile", action="store_true",
                              help="record cluster.* counters in stored run metadata")
    serve_parser.add_argument("--quiet", action="store_true",
                              help="suppress per-event log lines")
    serve_parser.set_defaults(func=_cmd_serve)

    worker_parser = sub.add_parser(
        "worker", help="claim and execute tasks from a coordinator (worker loop)"
    )
    add_cluster_flags(worker_parser)
    worker_parser.add_argument("--id", default=None,
                               help="worker id (default: <hostname>-<pid>)")
    worker_parser.add_argument("--poll-interval", type=float, default=0.5,
                               help="idle poll cadence in seconds (default: 0.5)")
    worker_parser.add_argument("--exit-when-idle", action="store_true",
                               help="exit once the coordinator has no live work "
                                    "(CI smoke runs)")
    worker_parser.add_argument("--max-tasks", type=int, default=None,
                               help="exit after executing this many tasks")
    worker_parser.add_argument("--quiet", action="store_true",
                               help="suppress per-task log lines")
    worker_parser.set_defaults(func=_cmd_worker)

    submit_parser = sub.add_parser(
        "submit", help="submit experiments to a running coordinator"
    )
    add_config_flags(submit_parser)
    add_cluster_flags(submit_parser)
    submit_parser.set_defaults(func=_cmd_submit)

    status_parser = sub.add_parser(
        "status", help="show a coordinator's per-task progress and worker table"
    )
    add_cluster_flags(status_parser)
    status_parser.add_argument("--watch", action="store_true",
                               help="stream snapshots until all work settles")
    status_parser.add_argument("--interval", type=float, default=2.0,
                               help="snapshot cadence with --watch (default: 2)")
    status_parser.add_argument("--json", action="store_true",
                               help="print raw JSON snapshots instead of the table")
    status_parser.set_defaults(func=_cmd_status)

    stop_parser = sub.add_parser("stop", help="stop a running coordinator")
    add_cluster_flags(stop_parser)
    stop_parser.set_defaults(func=_cmd_stop)

    run_ref_help = (
        "stored run reference (SPEC, SPEC@latest, SPEC@TAG, SPEC@KEY or a bare key) "
        "or a persisted JSON file path"
    )

    report_parser = sub.add_parser("report", help="render a stored run as a Markdown report")
    report_parser.add_argument("run", metavar="RUN", help=run_ref_help)
    report_parser.add_argument("--store", default=DEFAULT_STORE, metavar="DIR",
                               help=f"ResultStore root (default: {DEFAULT_STORE})")
    report_parser.add_argument("--metric", action="append", default=[], metavar="NAME",
                               help="select metrics (any scalar field, extras.<key> or "
                                    "profile.<key>; repeatable; default: the archived row columns)")
    report_parser.add_argument("--level", choices=("point", "trial"), default="point",
                               help="query level for --metric (default: point)")
    report_parser.add_argument("-o", "--out", default=None, metavar="FILE",
                               help="write to FILE instead of stdout")
    report_parser.set_defaults(func=_cmd_report)

    diff_parser = sub.add_parser(
        "diff", help="three-way field-by-field comparison of two runs (exit 1 on regression)"
    )
    diff_parser.add_argument("a", metavar="RUN_A", help=run_ref_help)
    diff_parser.add_argument("b", metavar="RUN_B", help=run_ref_help)
    diff_parser.add_argument("--store", default=DEFAULT_STORE, metavar="DIR",
                             help=f"ResultStore root (default: {DEFAULT_STORE})")
    diff_parser.add_argument("--tolerance", type=float, default=0.0,
                             help="relative tolerance below which differences pass (default: 0 = identical)")
    diff_parser.add_argument("--no-trials", action="store_true",
                             help="compare aggregates only, not per-trial results")
    diff_parser.add_argument("--format", choices=("text", "md"), default="text",
                             help="output format (default: text)")
    diff_parser.add_argument("-o", "--out", default=None, metavar="FILE",
                             help="write to FILE instead of stdout")
    diff_parser.set_defaults(func=_cmd_diff)

    export_parser = sub.add_parser("export", help="export a run as CSV, Markdown or gnuplot columns")
    export_parser.add_argument("run", metavar="RUN", help=run_ref_help)
    export_parser.add_argument("--store", default=DEFAULT_STORE, metavar="DIR",
                               help=f"ResultStore root (default: {DEFAULT_STORE})")
    export_parser.add_argument("--format", choices=("csv", "md", "gnuplot"), default="csv",
                               help="output format (default: csv)")
    export_parser.add_argument("--metric", action="append", default=[], metavar="NAME",
                               help="metrics to export (repeatable; gnuplot uses the first; "
                                    "default: archived row columns / download_time)")
    export_parser.add_argument("--axis", default=None,
                               help="gnuplot x-axis parameter (default: first varying parameter)")
    export_parser.add_argument("--level", choices=("point", "trial"), default="point",
                               help="query level for --metric (default: point)")
    export_parser.add_argument("-o", "--out", default=None, metavar="FILE",
                               help="write to FILE instead of stdout")
    export_parser.set_defaults(func=_cmd_export)

    store_parser = sub.add_parser("store", help="inspect and maintain a ResultStore")
    store_sub = store_parser.add_subparsers(dest="store_command", required=True)
    store_list = store_sub.add_parser("list", help="list stored runs (newest first)")
    store_list.add_argument("--store", default=DEFAULT_STORE, metavar="DIR",
                            help=f"ResultStore root (default: {DEFAULT_STORE})")
    store_list.add_argument("--spec", default=None, help="only this experiment")
    store_list.add_argument("--tag", default=None, help="only runs carrying this tag")
    store_list.set_defaults(func=_cmd_store_list)
    store_gc = store_sub.add_parser("gc", help="delete old untagged runs")
    store_gc.add_argument("--store", default=DEFAULT_STORE, metavar="DIR",
                          help=f"ResultStore root (default: {DEFAULT_STORE})")
    store_gc.add_argument("--keep", type=int, default=3,
                          help="runs to keep per spec (default: 3)")
    store_gc.add_argument("--spec", default=None, help="only this experiment")
    store_gc.add_argument("--prune-tagged", action="store_true",
                          help="also delete tagged runs (default: tagged runs are kept)")
    store_gc.set_defaults(func=_cmd_store_gc)

    gate_parser = sub.add_parser(
        "perf-gate",
        help="fail if fig9a events/sec regressed vs the committed BENCH baseline",
    )
    gate_parser.add_argument("--experiment", default="fig9a",
                             help="experiment to time (default: fig9a)")
    gate_parser.add_argument("--baseline", default=str(DEFAULT_GATE_BASELINE), metavar="JSON",
                             help="BENCH_*.json baseline to compare against")
    gate_parser.add_argument("--min-ratio", type=float, default=0.75,
                             help="fail below this fraction of the baseline events/sec (default: 0.75)")
    gate_parser.add_argument("--trials", type=int, default=1,
                             help="trials per sweep point for the timed run (default: 1)")
    gate_parser.add_argument("--wifi-range", default="40,80", metavar="V1,V2",
                             help="wifi_range axis of the timed run (fig9a only; "
                                  "default: 40,80 — the BENCH axes)")
    gate_parser.add_argument("--axis", action="append", default=[], metavar="NAME=V1,V2",
                             help="axis values of the timed run, e.g. --axis node_factor=4,8 "
                                  "for the scaling workload (repeatable; replaces the "
                                  "fig9a wifi_range default)")
    gate_parser.add_argument("--neighbor-index", default=None,
                             choices=["grid", "grid_array", "brute"],
                             help="neighbor index of the timed run (match the baseline's "
                                  "recorded configuration, e.g. grid_array for scaling)")
    gate_parser.add_argument("--no-warmup", dest="warmup", action="store_false",
                             help="skip the untimed warm-up pass")
    gate_parser.set_defaults(func=_cmd_perf_gate)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
