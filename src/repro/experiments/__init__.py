"""Experiment harness: regenerates every figure and table of the paper.

Every paper artefact is a registered, declarative :class:`ExperimentSpec`
(name, sweep axes, labelled variants, protocol, config overrides) executed
by the whole-grid sweep scheduler in :mod:`repro.experiments.sweep` —
``run_experiment("fig9a")`` from Python, or ``python -m repro.experiments
run fig9a`` (also installed as ``repro-experiments``) from the command
line.  The mapping between paper artefacts and registered experiments is:

=============  =============================================  ==========  =============================
Paper artefact  What it shows                                 Experiment  Module (spec + deprecated shim)
=============  =============================================  ==========  =============================
Fig. 9a        download time vs WiFi range per RPF variant   ``fig9a``   ``fig9_rpf`` (``RpfStrategyExperiment``)
Fig. 9b        transmissions, RPF variants with/without PEBA  ``fig9b``   ``fig9_rpf`` (``PebaExperiment``)
Fig. 9c        download time, bitmaps exchanged before data   ``fig9c``   ``fig9_bitmaps`` (``BitmapsBeforeDataExperiment``)
Fig. 9d        download time, bitmaps interleaved with data   ``fig9d``   ``fig9_bitmaps`` (``BitmapsInterleavedExperiment``)
Fig. 9e        download time vs number of files               ``fig9e``   ``fig9_scaling`` (``FileCountExperiment``)
Fig. 9f        download time vs file size                     ``fig9f``   ``fig9_scaling`` (``FileSizeExperiment``)
Fig. 9g        download time vs forwarding probability        ``fig9gh``  ``fig9_multihop`` (``ForwardingProbabilityExperiment``)
Fig. 9h        transmissions vs forwarding probability        ``fig9gh``  ``fig9_multihop`` (``ForwardingProbabilityExperiment``)
Fig. 10a       download time, DAPES vs Bithoc vs Ekta         ``fig10``   ``fig10_comparison`` (``ComparisonExperiment``)
Fig. 10b       transmissions, DAPES vs Bithoc vs Ekta         ``fig10``   ``fig10_comparison`` (``ComparisonExperiment``)
Table I        real-world feasibility scenarios               ``table1``  ``table1_feasibility`` (``FeasibilityStudy``)
=============  =============================================  ==========  =============================

Aliases resolve too (``fig9g``/``fig9h`` → ``fig9gh``, ``fig10a``/``fig10b``
→ ``fig10``, ``tablei`` → ``table1``).  Beyond the paper, ``urban``
(``repro.experiments.urban``) sweeps obstacle density on the Manhattan
``urban_grid`` topology under unit-disk vs obstacle propagation, and
``scaling`` (``repro.experiments.scaling``) measures simulator events/sec
against node count — the performance artefact behind the ROADMAP's
array-native hot-path trajectory.  ``churn`` and ``flashcrowd``
(``repro.experiments.churn``) exercise population dynamics — sustained
Poisson churn with graceful/abrupt departures, and burst arrivals into an
initially empty swarm (see :mod:`repro.churn`) — and ``faults`` and
``partition`` (``repro.experiments.faults``) exercise network faults —
link flapping and mid-run partitions with invariant monitoring and
recovery metrics (see :mod:`repro.faults`).

Results are first-class: :class:`ResultStore` persists runs under
content-addressed keys with metadata headers (``store.py``),
:class:`ResultSet` answers typed metric queries down to trial level
(``query.py``), and ``report.py`` renders Markdown/CSV/gnuplot exports and
three-way cross-run diffs (the ``report``/``diff``/``export``/``store``
CLI subcommands).  EXPERIMENTS.md documents the spec schema,
resume/caching semantics, the store layout and CLI examples.
"""

from repro.experiments.fig10_comparison import ComparisonExperiment, SPEC_FIG10, improvements
from repro.experiments.fig9_bitmaps import (
    SPEC_FIG9C,
    SPEC_FIG9D,
    BitmapsBeforeDataExperiment,
    BitmapsInterleavedExperiment,
)
from repro.experiments.fig9_multihop import SPEC_FIG9GH, ForwardingProbabilityExperiment
from repro.experiments.fig9_rpf import SPEC_FIG9A, SPEC_FIG9B, PebaExperiment, RpfStrategyExperiment
from repro.experiments.fig9_scaling import SPEC_FIG9E, SPEC_FIG9F, FileCountExperiment, FileSizeExperiment
from repro.experiments.metrics import RunResult, SweepPoint, SweepResult, percentile
from repro.experiments.query import ResultSet
from repro.experiments.report import DiffReport, diff, to_csv, to_gnuplot, to_markdown, to_text
from repro.experiments.runner import run_protocol_trial, run_trials
from repro.experiments.store import ResultStore, StoredRun, TaskCache
from repro.experiments.scenario import (
    ExperimentConfig,
    Scenario,
    ScenarioBuilder,
    available_protocols,
    get_builder,
    register_protocol,
)
from repro.experiments.spec import (
    Axis,
    ExperimentSpec,
    Variant,
    available_experiments,
    get_experiment,
    register_experiment,
)
from repro.experiments.sweep import SweepRequest, run_experiment, run_suite
from repro.experiments.churn import SPEC_CHURN, SPEC_FLASHCROWD
from repro.experiments.faults import SPEC_FAULTS, SPEC_PARTITION
from repro.experiments.scaling import SPEC_SCALING
from repro.experiments.table1_feasibility import SPEC_TABLE1, FeasibilityStudy, run_feasibility_scenario
from repro.experiments.urban import SPEC_URBAN
from repro.experiments.topology import (
    Topology,
    available_topologies,
    get_topology,
    register_topology,
)

__all__ = [
    "Axis",
    "BitmapsBeforeDataExperiment",
    "BitmapsInterleavedExperiment",
    "ComparisonExperiment",
    "DiffReport",
    "ExperimentConfig",
    "ExperimentSpec",
    "FeasibilityStudy",
    "FileCountExperiment",
    "FileSizeExperiment",
    "ForwardingProbabilityExperiment",
    "PebaExperiment",
    "ResultSet",
    "ResultStore",
    "RpfStrategyExperiment",
    "RunResult",
    "Scenario",
    "ScenarioBuilder",
    "StoredRun",
    "SweepPoint",
    "SweepRequest",
    "SweepResult",
    "TaskCache",
    "Topology",
    "Variant",
    "available_experiments",
    "available_protocols",
    "available_topologies",
    "diff",
    "get_builder",
    "get_experiment",
    "get_topology",
    "improvements",
    "percentile",
    "register_experiment",
    "register_protocol",
    "register_topology",
    "run_experiment",
    "run_feasibility_scenario",
    "run_protocol_trial",
    "run_suite",
    "run_trials",
    "to_csv",
    "to_gnuplot",
    "to_markdown",
    "to_text",
]
