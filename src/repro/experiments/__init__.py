"""Experiment harness: regenerates every figure and table of the paper.

Each experiment module exposes a class with a ``run()`` method returning a
result object whose ``rows()`` / ``summary()`` methods print the same series
the paper reports.  The mapping between paper artefacts and modules is:

=============  =============================================  =========================================
Paper artefact  What it shows                                 Module / class
=============  =============================================  =========================================
Fig. 9a        download time vs WiFi range per RPF variant   ``fig9_rpf.RpfStrategyExperiment``
Fig. 9b        transmissions, RPF variants with/without PEBA  ``fig9_rpf.PebaExperiment``
Fig. 9c        download time, bitmaps exchanged before data   ``fig9_bitmaps.BitmapsBeforeDataExperiment``
Fig. 9d        download time, bitmaps interleaved with data   ``fig9_bitmaps.BitmapsInterleavedExperiment``
Fig. 9e        download time vs number of files               ``fig9_scaling.FileCountExperiment``
Fig. 9f        download time vs file size                     ``fig9_scaling.FileSizeExperiment``
Fig. 9g        download time vs forwarding probability        ``fig9_multihop.ForwardingProbabilityExperiment``
Fig. 9h        transmissions vs forwarding probability        ``fig9_multihop.ForwardingProbabilityExperiment``
Fig. 10a       download time, DAPES vs Bithoc vs Ekta         ``fig10_comparison.ComparisonExperiment``
Fig. 10b       transmissions, DAPES vs Bithoc vs Ekta         ``fig10_comparison.ComparisonExperiment``
Table I        real-world feasibility scenarios               ``table1_feasibility.FeasibilityStudy``
=============  =============================================  =========================================
"""

from repro.experiments.fig10_comparison import ComparisonExperiment
from repro.experiments.fig9_bitmaps import BitmapsBeforeDataExperiment, BitmapsInterleavedExperiment
from repro.experiments.fig9_multihop import ForwardingProbabilityExperiment
from repro.experiments.fig9_rpf import PebaExperiment, RpfStrategyExperiment
from repro.experiments.fig9_scaling import FileCountExperiment, FileSizeExperiment
from repro.experiments.metrics import RunResult, SweepResult, percentile
from repro.experiments.runner import run_protocol_trial, run_trials
from repro.experiments.scenario import (
    ExperimentConfig,
    Scenario,
    ScenarioBuilder,
    available_protocols,
    get_builder,
    register_protocol,
)
from repro.experiments.table1_feasibility import FeasibilityStudy
from repro.experiments.topology import (
    Topology,
    available_topologies,
    get_topology,
    register_topology,
)

__all__ = [
    "BitmapsBeforeDataExperiment",
    "BitmapsInterleavedExperiment",
    "ComparisonExperiment",
    "ExperimentConfig",
    "FeasibilityStudy",
    "FileCountExperiment",
    "FileSizeExperiment",
    "ForwardingProbabilityExperiment",
    "PebaExperiment",
    "RpfStrategyExperiment",
    "RunResult",
    "Scenario",
    "ScenarioBuilder",
    "SweepResult",
    "Topology",
    "available_protocols",
    "available_topologies",
    "get_builder",
    "get_topology",
    "percentile",
    "register_protocol",
    "register_topology",
    "run_protocol_trial",
    "run_trials",
]
