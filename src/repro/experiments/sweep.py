"""Whole-grid sweep scheduler: one process pool for an entire experiment suite.

The historical figure classes called :func:`repro.experiments.runner.run_trials`
once per sweep point, so the process pool was created, barriered and torn
down at every point.  This module flattens an :class:`ExperimentSpec` — or a
whole suite of specs — into one list of ``(point, trial)`` tasks executed
over a *single persistent* ``ProcessPoolExecutor``:

* **Deterministic seeds** — every task's seed is derived from its point
  config exactly as in the serial path (``base_seed + trial * 1009``).
* **Order-independent aggregation** — results are keyed by
  ``(experiment, point, trial)`` and aggregated in plan order, so serial
  and parallel sweeps produce byte-identical :class:`SweepResult`s.
* **Persistence & resume** — with ``out_dir`` set, every finished task is
  written to ``<out_dir>/<experiment>-<key>/task-P-T.json`` where ``key``
  is a content hash of the flattened plan (configs, seeds, labels).  A
  killed sweep re-run with the same plan resumes from the completed tasks;
  any config/axis change produces a different key and a cold start.  The
  aggregated :class:`SweepResult` lands at ``<out_dir>/<experiment>.json``.
* **Result store** — with ``store`` set (a :class:`ResultStore` or a root
  directory), the per-task cache lives inside the store and every
  aggregated :class:`SweepResult` is saved under a content-addressed key
  with a metadata header (spec, config hash, registries, tags); see
  :mod:`repro.experiments.store`.  Both persistence paths are thin clients
  of the same :class:`~repro.experiments.store.TaskCache`.
"""

from __future__ import annotations

import hashlib
import json
import pickle
import warnings
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.experiments.metrics import RunResult, SweepResult, aggregate_trials
from repro.experiments.scenario import ExperimentConfig
from repro.experiments.spec import ExperimentSpec, PointPlan, TrialFn, get_experiment
from repro.experiments.store import ResultStore, TaskCache

ProgressFn = Callable[[str, int, int], None]


@dataclass
class SweepRequest:
    """One experiment to run: a spec plus its base config and axis overrides."""

    spec: ExperimentSpec
    config: Optional[ExperimentConfig] = None
    axes: Optional[Mapping[str, Sequence[object]]] = None


@dataclass(frozen=True)
class SweepTask:
    """One schedulable unit: one trial of one sweep point of one experiment.

    ``trial_fn`` travels with the task (module-level hooks pickle by
    reference, so pool workers resolve them by importing their module —
    correct under both the fork and spawn start methods); ``None`` means
    the default :func:`run_protocol_trial` path.
    """

    experiment: str
    request: int
    point: int
    trial: int
    protocol: str
    config: ExperimentConfig
    seed: int
    parameters: Tuple[Tuple[str, object], ...]
    trial_fn: Optional[TrialFn] = None


def _default_trial(
    protocol: str,
    config: ExperimentConfig,
    seed: int,
    parameters: Dict[str, object],
) -> RunResult:
    from repro.experiments.runner import run_protocol_trial

    return run_protocol_trial(protocol, config, seed, parameters=parameters)


def _execute_task(task: SweepTask) -> RunResult:
    """Module-level worker entry point (picklable for the process pool)."""
    trial_fn = task.trial_fn or _default_trial
    return trial_fn(task.protocol, task.config, task.seed, dict(task.parameters))


# ============================================================== persistence
def sweep_cache_key(spec: ExperimentSpec, plans: Sequence[PointPlan]) -> str:
    """Content hash of a flattened plan: same plan ⇒ same key ⇒ resumable."""
    manifest = {
        "experiment": spec.name,
        "points": [
            {
                "index": plan.index,
                "label": plan.label,
                "parameters": plan.parameters,
                "protocol": plan.protocol,
                "seeds": plan.seeds,
                "config": plan.config.as_dict(),
            }
            for plan in plans
        ],
    }
    payload = json.dumps(manifest, sort_keys=True, default=str).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()[:16]


# ================================================================ scheduler
def _picklable(trial_fn: TrialFn) -> bool:
    try:
        return pickle.loads(pickle.dumps(trial_fn)) is trial_fn
    except Exception:
        return False


@dataclass
class _PreparedRequest:
    spec: ExperimentSpec
    plans: List[PointPlan]
    base: ExperimentConfig
    cache: Optional[TaskCache] = None
    cache_key: Optional[str] = None
    pool_safe: bool = True
    results: Dict[Tuple[int, int], RunResult] = field(default_factory=dict)


def _prepare(
    requests: Sequence[SweepRequest],
    out_dir: Optional[Union[str, Path]],
    store: Optional[ResultStore],
) -> List[_PreparedRequest]:
    prepared: List[_PreparedRequest] = []
    for request in requests:
        spec = request.spec
        plans = spec.plan(request.config, request.axes)
        cache: Optional[TaskCache] = None
        cache_key: Optional[str] = None
        if out_dir is not None or store is not None:
            cache_key = sweep_cache_key(spec, plans)
            # The store's task area and the historical --out layout are both
            # thin clients of the same TaskCache (identical file format).
            if store is not None:
                cache = store.task_cache(spec.name, cache_key)
            else:
                cache = TaskCache(Path(out_dir) / f"{spec.name}-{cache_key}").ensure()
        # A task's trial hook must survive a pickle round-trip to run in a
        # pool worker; hooks that don't (lambdas, closures, REPL-defined
        # functions) fall back to in-process serial execution.
        pool_safe = spec.trial_fn is None or _picklable(spec.trial_fn)
        prepared.append(
            _PreparedRequest(
                spec=spec,
                plans=plans,
                base=spec.base_config(request.config),
                cache=cache,
                cache_key=cache_key,
                pool_safe=pool_safe,
            )
        )
    return prepared


def _flatten_tasks(prepared: Sequence[_PreparedRequest]) -> List[SweepTask]:
    tasks: List[SweepTask] = []
    for index, item in enumerate(prepared):
        for plan in item.plans:
            for trial, seed in enumerate(plan.seeds):
                tasks.append(
                    SweepTask(
                        experiment=item.spec.name,
                        request=index,
                        point=plan.index,
                        trial=trial,
                        protocol=plan.protocol,
                        config=plan.config,
                        seed=seed,
                        parameters=tuple(plan.parameters.items()),
                        trial_fn=item.spec.trial_fn if item.pool_safe else None,
                    )
                )
    return tasks


def task_listing(
    requests: Sequence[SweepRequest],
    *,
    store: Optional[Union[ResultStore, str, Path]] = None,
    resume: bool = True,
) -> List[Dict[str, object]]:
    """The flattened task grid as rows, without executing anything.

    One row per ``(experiment, point, trial)`` cell — exactly the tasks
    ``run_suite`` would schedule and ``repro-experiments submit`` would send,
    including each cell's content-hash task key (the :class:`TaskCache` /
    cluster task id).  With ``store`` set and ``resume`` on, rows already
    satisfied by the store's task cache are flagged ``cached``.
    """
    if store is not None and not isinstance(store, ResultStore):
        store = ResultStore(store)
    prepared = _prepare(requests, None, store)
    rows: List[Dict[str, object]] = []
    for item in prepared:
        plan_key = item.cache_key or sweep_cache_key(item.spec, item.plans)
        for plan in item.plans:
            for trial, seed in enumerate(plan.seeds):
                cached = (
                    resume
                    and item.cache is not None
                    and item.cache.load(plan.index, trial, seed) is not None
                )
                rows.append(
                    {
                        "experiment": item.spec.name,
                        "point": plan.index,
                        "label": plan.label,
                        "protocol": plan.protocol,
                        "parameters": dict(plan.parameters),
                        "trial": trial,
                        "seed": seed,
                        "task": f"{item.spec.name}-{plan_key}/task-{plan.index:04d}-{trial:03d}",
                        "cached": cached,
                    }
                )
    return rows


def _aggregate(item: _PreparedRequest) -> SweepResult:
    sweep = SweepResult(name=item.spec.title, description=item.spec.description)
    aggregate_fn = item.spec.aggregate_fn or aggregate_trials
    for plan in item.plans:
        trial_results = [item.results[(plan.index, trial)] for trial in range(len(plan.seeds))]
        point = aggregate_fn(plan.label, plan.parameters, trial_results, plan.config.percentile)
        point.trial_results = list(trial_results)
        sweep.add_point(point)
    return sweep


def run_suite(
    requests: Sequence[SweepRequest],
    *,
    workers: Optional[int] = None,
    out_dir: Optional[Union[str, Path]] = None,
    store: Optional[Union[ResultStore, str, Path]] = None,
    tag: Optional[str] = None,
    resume: bool = True,
    progress: Optional[ProgressFn] = None,
) -> List[SweepResult]:
    """Run a whole suite of experiments over one persistent process pool.

    Returns one :class:`SweepResult` per request, in request order.  The
    aggregates are byte-identical whichever ``workers`` value produced them.
    With ``store`` set, the per-task cache lives in the store and every
    aggregate is saved under its content key (optionally tagged).
    """
    if store is not None and not isinstance(store, ResultStore):
        store = ResultStore(store)
    prepared = _prepare(requests, out_dir, store)
    tasks = _flatten_tasks(prepared)
    total = len(tasks)

    # Resume: satisfy tasks from the per-task cache before scheduling.
    pending: List[SweepTask] = []
    for task in tasks:
        item = prepared[task.request]
        cached = None
        if resume and item.cache is not None:
            cached = item.cache.load(task.point, task.trial, task.seed)
        if cached is not None:
            item.results[(task.point, task.trial)] = cached
        else:
            pending.append(task)
    done = total - len(pending)
    if progress is not None and done:
        progress("resumed from cache", done, total)

    if workers is None:
        workers = max((task.config.workers for task in tasks), default=1)

    def _finish(task: SweepTask, result: RunResult) -> None:
        nonlocal done
        item = prepared[task.request]
        item.results[(task.point, task.trial)] = result
        if item.cache is not None:
            item.cache.store(task.experiment, task.point, task.trial, task.seed, result)
        done += 1
        if progress is not None:
            progress(f"{task.experiment}[{task.point}] trial {task.trial}", done, total)

    parallelizable = [t for t in pending if prepared[t.request].pool_safe]
    serial_only = [t for t in pending if not prepared[t.request].pool_safe]
    if serial_only:
        # Say *why* these tasks bypass the pool: an unpicklable hook looks
        # exactly like workers=1 from the outside, and the two have very
        # different fixes (move the hook to module level vs raise workers).
        names = ", ".join(sorted({t.experiment for t in serial_only}))
        if workers > 1:
            reason = (
                "their trial hooks failed the pickle round-trip "
                "(lambdas/closures cannot reach pool workers; "
                "define the hook at module level to parallelize)"
            )
        else:
            reason = "workers=1 disables the process pool"
        warnings.warn(
            f"{len(serial_only)} task(s) from {names} will run serially: {reason}",
            RuntimeWarning,
            stacklevel=2,
        )
    if workers > 1 and len(parallelizable) > 1:
        try:
            with ProcessPoolExecutor(max_workers=min(workers, len(parallelizable))) as pool:
                futures = {pool.submit(_execute_task, task): task for task in parallelizable}
                for future in as_completed(futures):
                    _finish(futures[future], future.result())
            parallelizable = []
        except (OSError, BrokenProcessPool) as exc:
            remaining = [
                t for t in parallelizable
                if (t.point, t.trial) not in prepared[t.request].results
            ]
            warnings.warn(
                f"process pool unavailable ({exc!r}); "
                f"falling back to serial execution of {len(remaining)} remaining tasks",
                RuntimeWarning,
                stacklevel=2,
            )
            parallelizable = remaining
    for task in parallelizable + serial_only:
        item = prepared[task.request]
        if item.pool_safe:
            _finish(task, _execute_task(task))
        else:
            # Unpicklable hooks never reach a worker; run them in-process.
            trial_fn = item.spec.trial_fn or _default_trial
            _finish(task, trial_fn(task.protocol, task.config, task.seed, dict(task.parameters)))

    results: List[SweepResult] = []
    name_counts: Dict[str, int] = {}
    for item in prepared:
        name_counts[item.spec.name] = name_counts.get(item.spec.name, 0) + 1
    for item in prepared:
        sweep = _aggregate(item)
        if out_dir is not None:
            # Several requests for the same experiment (e.g. two configs of
            # fig9a) would clobber one <name>.json; disambiguate by plan key.
            stem = item.spec.name
            if name_counts[stem] > 1:
                stem = f"{stem}-{item.cache_key}"
            path = Path(out_dir) / f"{stem}.json"
            # With store set, the task cache lives in the store, so nothing
            # has created out_dir yet.
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(sweep.to_json() + "\n", encoding="utf-8")
        if store is not None:
            store.save(
                sweep,
                spec=item.spec,
                config=item.base,
                tags=(tag,) if tag else (),
            )
        results.append(sweep)
    return results


def run_experiment(
    experiment: Union[str, ExperimentSpec],
    config: Optional[ExperimentConfig] = None,
    *,
    axes: Optional[Mapping[str, Sequence[object]]] = None,
    workers: Optional[int] = None,
    out_dir: Optional[Union[str, Path]] = None,
    store: Optional[Union[ResultStore, str, Path]] = None,
    tag: Optional[str] = None,
    resume: bool = True,
    progress: Optional[ProgressFn] = None,
) -> SweepResult:
    """Run one registered experiment (or an ad-hoc spec) and aggregate it.

    ``axes`` overrides selected axis values by name, e.g.
    ``run_experiment("fig9a", axes={"wifi_range": (40.0, 80.0)})``; ``store``
    (a :class:`ResultStore` or its root directory) persists the aggregate
    under a content-addressed key, optionally tagged.
    """
    spec = get_experiment(experiment) if isinstance(experiment, str) else experiment
    [result] = run_suite(
        [SweepRequest(spec=spec, config=config, axes=axes)],
        workers=workers,
        out_dir=out_dir,
        store=store,
        tag=tag,
        resume=resume,
        progress=progress,
    )
    return result
