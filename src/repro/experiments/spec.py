"""Declarative experiment specifications and the experiment registry.

An :class:`ExperimentSpec` describes one paper artefact (or a family of
them) as data: the sweep :class:`Axis` list, the labelled
:class:`Variant` list, the protocol each variant runs, base config
overrides, and optional hooks for experiments that need a bespoke trial
runner (Table I's scripted scenarios).  The sweep scheduler in
:mod:`repro.experiments.sweep` flattens a spec — or a whole suite of
specs — into one ``(point, variant, trial)`` task grid executed over a
single persistent process pool.

Specs register under short names (``fig9a`` … ``fig9gh``, ``fig10``,
``table1``) via :func:`register_experiment`; :func:`get_experiment`
resolves names and aliases, and ``python -m repro.experiments`` exposes
the registry on the command line.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, replace
from itertools import product
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.experiments.metrics import RunResult, SweepPoint
from repro.experiments.scenario import ExperimentConfig

# Hook signatures (kept as plain callables so specs stay picklable-free:
# workers re-resolve hooks from the registry by spec name).
TrialFn = Callable[[str, ExperimentConfig, int, Dict[str, object]], RunResult]
AggregateFn = Callable[[str, Dict[str, object], Sequence[RunResult], float], SweepPoint]
ConfigTransform = Callable[[ExperimentConfig], ExperimentConfig]


@dataclass(frozen=True)
class Axis:
    """One sweep dimension of an experiment.

    When ``config_key`` is set, each swept value is applied to the
    per-point :class:`ExperimentConfig` under that key (``dapes_`` prefixes
    reach the nested DAPES config) and recorded in every result row under
    ``name``.  When ``scale_by`` names a base-config field, the swept
    values are *factors* over that field's preset value — this is how
    Fig. 9e/9f sweep "10-70 files" and "1-15 MB" as ratios that survive
    preset rescaling.  Scaled axes should be named for what the values are
    (e.g. ``num_files_factor``); the *resolved* value is recorded under the
    ``scale_by`` field name, and the raw factor is available to label
    templates as ``{<name>}``.
    """

    name: str
    values: Tuple[object, ...]
    config_key: Optional[str] = None
    scale_by: Optional[str] = None

    def resolve(self, base: ExperimentConfig, raw: object):
        """Return ``(param_key, param_value, config_overrides, format_extras)`` for one swept value."""
        if self.scale_by is not None:
            actual = getattr(base, self.scale_by) * raw
            key = self.config_key or self.scale_by
            return self.scale_by, actual, {key: actual}, {self.name: raw}
        if self.config_key is not None:
            return self.name, raw, {self.config_key: raw}, {}
        return self.name, raw, {}, {}


@dataclass(frozen=True)
class Variant:
    """One labelled series of an experiment (a curve in the figure).

    ``label`` may be a ``str.format`` template over the point's parameters
    (plus ``{<axis>_factor}`` for scaled axes).  ``overrides`` are config
    overrides applied on top of the axis overrides; ``parameters`` are
    recorded verbatim in every result row of the series.
    """

    label: str
    protocol: str = "dapes"
    overrides: Mapping[str, object] = field(default_factory=dict)
    parameters: Mapping[str, object] = field(default_factory=dict)


@dataclass
class PointPlan:
    """One fully resolved sweep point: what to run and how to label it."""

    index: int
    label: str
    parameters: Dict[str, object]
    protocol: str
    config: ExperimentConfig
    seeds: List[int]


@dataclass(frozen=True)
class ExperimentSpec:
    """A declarative description of one paper experiment.

    The default execution path runs ``run_protocol_trial(variant.protocol,
    config, seed)`` for every ``(point, trial)`` task and aggregates with
    :func:`repro.experiments.metrics.aggregate_trials`; ``trial_fn`` /
    ``aggregate_fn`` override that for experiments with bespoke
    measurement loops (Table I).  ``config_transform`` normalises the base
    config before planning (e.g. Table I pins the real-world WiFi range).
    """

    name: str
    title: str
    description: str
    artefacts: Tuple[str, ...] = ()
    axes: Tuple[Axis, ...] = ()
    variants: Tuple[Variant, ...] = (Variant(label="default"),)
    overrides: Mapping[str, object] = field(default_factory=dict)
    aliases: Tuple[str, ...] = ()
    trial_fn: Optional[TrialFn] = None
    aggregate_fn: Optional[AggregateFn] = None
    config_transform: Optional[ConfigTransform] = None

    # ------------------------------------------------------------- planning
    def base_config(self, config: Optional[ExperimentConfig] = None) -> ExperimentConfig:
        """The effective base config: preset default + transform + spec overrides."""
        base = config if config is not None else ExperimentConfig.small()
        if self.config_transform is not None:
            base = self.config_transform(base)
        if self.overrides:
            base = base.with_overrides(**self.overrides)
        return base

    def with_variants(self, variants: Sequence[Variant]) -> "ExperimentSpec":
        """Copy of this spec with its variant list replaced.

        The usual way to run a subset (or custom set) of a figure's series:
        ``SPEC_FIG10.with_variants(protocol_variants(("dapes", "ekta")))``.
        """
        return replace(self, variants=tuple(variants))

    def with_axes(self, axes: Optional[Mapping[str, Sequence[object]]]) -> "ExperimentSpec":
        """Copy of this spec with selected axis values replaced (by axis name)."""
        if not axes:
            return self
        unknown = set(axes) - {axis.name for axis in self.axes}
        if unknown:
            raise ValueError(
                f"experiment {self.name!r} has no axes {sorted(unknown)}; "
                f"available: {[axis.name for axis in self.axes]}"
            )
        replaced = tuple(
            replace(axis, values=tuple(axes[axis.name])) if axis.name in axes else axis
            for axis in self.axes
        )
        return replace(self, axes=replaced)

    def plan(
        self,
        config: Optional[ExperimentConfig] = None,
        axes: Optional[Mapping[str, Sequence[object]]] = None,
    ) -> List[PointPlan]:
        """Flatten the spec into ordered sweep points (axes outer, variants inner)."""
        from repro.experiments.runner import trial_seeds

        spec = self.with_axes(axes)
        base = spec.base_config(config)
        plans: List[PointPlan] = []
        axis_grids = [axis.values for axis in spec.axes]
        for combo in product(*axis_grids):
            axis_parameters: Dict[str, object] = {}
            axis_overrides: Dict[str, object] = {}
            format_extras: Dict[str, object] = {}
            for axis, raw in zip(spec.axes, combo):
                param_key, value, overrides, extras = axis.resolve(base, raw)
                axis_parameters[param_key] = value
                axis_overrides.update(overrides)
                format_extras.update(extras)
            for variant in spec.variants:
                point_config = base.with_overrides(
                    **{**axis_overrides, **variant.overrides}
                )
                parameters = {**axis_parameters, **variant.parameters}
                label = variant.label
                if "{" in label:
                    label = label.format(**parameters, **format_extras)
                plans.append(
                    PointPlan(
                        index=len(plans),
                        label=label,
                        parameters=parameters,
                        protocol=variant.protocol,
                        config=point_config,
                        seeds=trial_seeds(point_config),
                    )
                )
        return plans

    def task_count(
        self,
        config: Optional[ExperimentConfig] = None,
        axes: Optional[Mapping[str, Sequence[object]]] = None,
    ) -> int:
        """How many ``(point, trial)`` tasks the spec flattens into."""
        return sum(len(plan.seeds) for plan in self.plan(config, axes))


# ============================================================ shim support
def deprecated_shim(spec: ExperimentSpec):
    """Class decorator tying a historical figure class to its registry spec.

    Sets ``cls.spec`` (the single source of truth the shim's ``run()`` must
    forward to — tests assert no silent drift) and generates the one-line
    docstring, so shim modules carry neither duplicated docstrings nor
    duplicated spec references.
    """

    def apply(cls):
        cls.spec = spec
        cls.__doc__ = f"Deprecated shim over the registered ``{spec.name}`` spec."
        return cls

    return apply


def warn_deprecated_shim(instance: object) -> None:
    """Emit the standard shim deprecation warning (call from ``__init__``)."""
    cls = type(instance)
    warnings.warn(
        f"{cls.__name__} is deprecated; use run_experiment({cls.spec.name!r}, ...)",
        DeprecationWarning,
        stacklevel=3,
    )


# ================================================================= registry
_EXPERIMENTS: Dict[str, ExperimentSpec] = {}
_ALIASES: Dict[str, str] = {}


def register_experiment(spec: ExperimentSpec) -> ExperimentSpec:
    """Add ``spec`` to the registry (its aliases included); returns it unchanged."""
    key = spec.name.lower()
    if key in _EXPERIMENTS or key in _ALIASES:
        raise ValueError(f"experiment {spec.name!r} is already registered")
    for alias in spec.aliases:
        alias_key = alias.lower()
        if alias_key in _EXPERIMENTS or alias_key in _ALIASES:
            raise ValueError(f"experiment alias {alias!r} is already registered")
    _EXPERIMENTS[key] = spec
    for alias in spec.aliases:
        _ALIASES[alias.lower()] = key
    return spec


def _ensure_builtin_experiments() -> None:
    """Import the figure modules so their specs self-register (worker-safe)."""
    import repro.experiments  # noqa: F401  (side effect: registers every builtin spec)


def get_experiment(name: str) -> ExperimentSpec:
    """Resolve an experiment spec by name or alias (case-insensitive)."""
    _ensure_builtin_experiments()
    key = name.lower()
    key = _ALIASES.get(key, key)
    try:
        return _EXPERIMENTS[key]
    except KeyError:
        raise ValueError(
            f"unknown experiment {name!r}; available: {available_experiments()}"
        ) from None


def available_experiments() -> List[str]:
    """Registered experiment names, in registration order."""
    _ensure_builtin_experiments()
    return list(_EXPERIMENTS)


def experiment_aliases() -> Dict[str, str]:
    """Alias → canonical-name mapping for every registered experiment."""
    _ensure_builtin_experiments()
    return dict(_ALIASES)
