"""``urban`` — obstacle-aware city workload (beyond the paper).

Download time on the ``urban_grid`` topology as the city gets denser
(``obstacle_density`` sweeps the fraction of blocks actually built) under
two radio physics: the paper's open-field ``unit_disk`` and the
line-of-sight ``obstacle`` model that treats buildings as opaque.  DAPES
runs against the Bithoc baseline under both, so the sweep shows (a) how
much an open-field channel over-estimates delivery in a city and (b)
whether DAPES's encounter-driven design keeps its edge when walls carve
the network into street-level partitions.

Registered as an :class:`ExperimentSpec` like every paper artefact::

    python -m repro.experiments run urban --preset small
    run_experiment("urban", axes={"obstacle_density": (0.0, 1.0)})
"""

from __future__ import annotations

from repro.experiments.spec import Axis, ExperimentSpec, Variant, register_experiment

DEFAULT_DENSITIES = (0.0, 0.5, 1.0)

_VARIANTS = tuple(
    Variant(
        label=f"{protocol_label} / {propagation_label}",
        protocol=protocol,
        overrides={"propagation": propagation},
        parameters={"protocol": protocol, "propagation": propagation},
    )
    for protocol, protocol_label in (("dapes", "DAPES"), ("bithoc", "Bithoc"))
    for propagation, propagation_label in (
        ("unit_disk", "unit-disk"),
        ("obstacle", "obstacle"),
    )
)

SPEC_URBAN = register_experiment(
    ExperimentSpec(
        name="urban",
        title="Urban grid — download time vs obstacle density and propagation model",
        description=(
            "Manhattan-block city: nodes walk the street graph while buildings "
            "occlude radio links under the obstacle propagation model."
        ),
        artefacts=("beyond-paper",),
        axes=(
            Axis(
                name="obstacle_density",
                values=DEFAULT_DENSITIES,
                config_key="obstacle_density",
            ),
        ),
        variants=_VARIANTS,
        overrides={"topology": "urban_grid"},
        aliases=("urban_grid", "city"),
    )
)
