"""ResultStore: durable, content-addressed persistence for sweep results.

A :class:`ResultStore` is rooted at a directory and owns two areas:

* ``runs/<spec>/<key>.json`` — one file per saved
  :class:`~repro.experiments.metrics.SweepResult`, keyed by a content hash
  of its canonical JSON.  Each file carries a metadata header: spec name,
  frozen :class:`~repro.experiments.scenario.ExperimentConfig` hash, the
  topology/propagation/protocol registry entries used, trial count, schema
  version, ISO timestamp and free-form tags.  Saving an identical result
  twice is idempotent (tags merge; the original timestamp wins).
* ``tasks/<spec>-<plan_key>/task-*.json`` — the sweep scheduler's per-task
  resume cache (:class:`TaskCache`), byte-compatible with the historical
  ``--out`` layout so existing caches keep resuming.

Runs resolve by reference: a bare spec name (latest run), ``spec@tag``,
``spec@latest``, ``spec@<key>`` or a bare content key.  ``gc`` keeps the
most recent N runs per spec and never deletes tagged runs unless asked.

The schema is versioned (:data:`SCHEMA_VERSION`); loading a record written
by an incompatible future schema raises :class:`StoreSchemaError` instead
of silently misreading it.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import tempfile
from dataclasses import dataclass
from datetime import datetime, timezone
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.arrays import numpy_version, resolve_array_backend
from repro.experiments.metrics import RunResult, SweepResult

SCHEMA_VERSION = 1


class StoreSchemaError(ValueError):
    """A stored record's schema version is not readable by this code."""


def _slug(text: str) -> str:
    return re.sub(r"[^a-z0-9]+", "-", text.lower()).strip("-")[:60] or "run"


def _canonical_json(payload: object) -> str:
    return json.dumps(payload, sort_keys=True, default=str, allow_nan=False)


def _atomic_write_text(path: Path, text: str) -> None:
    """Write ``text`` to ``path`` so readers never observe a torn file.

    The temp file gets a *unique* name (``mkstemp``) in the target directory
    — a deterministic ``.tmp`` sibling would race when concurrent cluster
    workers flush the same task key, with one writer renaming the other's
    half-written file into place.  ``os.replace`` is atomic on POSIX and
    Windows, so a crash mid-write leaves the old content (or no file), never
    a truncated one; the stray ``.tmp`` is unlinked on any failure.
    """
    fd, tmp_name = tempfile.mkstemp(
        dir=str(path.parent), prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def content_key(sweep: SweepResult) -> str:
    """Content hash of a sweep's canonical JSON: same results ⇒ same key."""
    return hashlib.sha256(_canonical_json(sweep.to_dict()).encode("utf-8")).hexdigest()[:16]


def config_hash(config) -> str:
    """Content hash of a frozen :class:`ExperimentConfig` (nested DAPES included)."""
    return hashlib.sha256(
        _canonical_json(config.as_dict()).encode("utf-8")
    ).hexdigest()[:16]


@dataclass(frozen=True)
class StoredRun:
    """One saved run: its content key, on-disk path and metadata header."""

    key: str
    spec: str
    path: Path
    meta: Dict[str, object]

    @property
    def tags(self) -> List[str]:
        return list(self.meta.get("tags", []))

    @property
    def created(self) -> str:
        return str(self.meta.get("created", ""))

    @property
    def title(self) -> str:
        return str(self.meta.get("title", ""))


# ================================================================ task cache
class TaskCache:
    """Per-task resume cache, byte-compatible with the historical layout.

    One ``task-PPPP-TTT.json`` per finished ``(point, trial)`` task, written
    atomically (tmp + rename) with strict JSON.  Both the ``--out``
    directory and :meth:`ResultStore.task_cache` are thin clients of this
    class.
    """

    def __init__(self, directory: Union[str, Path]):
        self.directory = Path(directory)

    def ensure(self) -> "TaskCache":
        self.directory.mkdir(parents=True, exist_ok=True)
        return self

    def path(self, point: int, trial: int) -> Path:
        return self.directory / f"task-{point:04d}-{trial:03d}.json"

    def load(self, point: int, trial: int, seed: int) -> Optional[RunResult]:
        path = self.path(point, trial)
        if not path.is_file():
            return None
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
            if payload.get("seed") != seed:
                return None
            return RunResult.from_dict(payload["result"])
        except (ValueError, KeyError, TypeError, OSError):
            return None  # corrupt cache entry: re-run the task

    def store(
        self, experiment: str, point: int, trial: int, seed: int, result: RunResult
    ) -> None:
        payload = {
            "experiment": experiment,
            "point": point,
            "trial": trial,
            "seed": seed,
            "result": result.to_dict(),
        }
        _atomic_write_text(
            self.path(point, trial), json.dumps(payload, sort_keys=True, allow_nan=False)
        )


# ================================================================== store
class ResultStore:
    """A durable, queryable store of sweep results (see module docstring)."""

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)

    # ----------------------------------------------------------------- paths
    @property
    def runs_dir(self) -> Path:
        return self.root / "runs"

    def task_cache(self, spec_name: str, plan_key: str) -> TaskCache:
        """The scheduler's resume cache for one flattened plan."""
        return TaskCache(self.root / "tasks" / f"{spec_name}-{plan_key}").ensure()

    # ------------------------------------------------------------------ save
    def save(
        self,
        sweep: SweepResult,
        *,
        spec: Optional[object] = None,
        config: Optional[object] = None,
        tags: Sequence[str] = (),
        extra: Optional[Dict[str, object]] = None,
    ) -> StoredRun:
        """Persist one sweep under its content key and return the record.

        ``spec`` may be a registered :class:`ExperimentSpec` or a name;
        omitted, the sweep's title is slugified.  ``config`` (the run's base
        :class:`ExperimentConfig`) contributes its frozen hash and the
        topology/propagation/neighbor-index registry selections; protocols
        are recovered from the per-trial results.  Saving the same content
        twice merges tags and keeps the original timestamp.
        """
        spec_name = getattr(spec, "name", spec) or _slug(sweep.name)
        key = content_key(sweep)
        path = self.runs_dir / str(spec_name) / f"{key}.json"
        existing = self._read_meta(path) if path.is_file() else None

        protocols = sorted(
            {
                trial.protocol
                for point in sweep.points
                for trial in point.trial_results
            }
        )
        meta: Dict[str, object] = {
            "schema": SCHEMA_VERSION,
            "key": key,
            "spec": str(spec_name),
            "title": sweep.name,
            "created": (
                existing["created"]
                if existing is not None
                else datetime.now(timezone.utc).isoformat(timespec="seconds")
            ),
            "points": len(sweep.points),
            "trials": sum(point.trials for point in sweep.points),
            "tags": sorted(
                set(existing["tags"] if existing is not None else []) | set(tags)
            ),
            "protocols": protocols,
        }
        if config is not None:
            meta["config_hash"] = config_hash(config)
            resolved_backend = resolve_array_backend(
                getattr(config, "array_backend", "auto")
            )
            meta["registries"] = {
                "topology": getattr(config, "topology", None),
                "propagation": getattr(config, "propagation", None),
                "neighbor_index": getattr(config, "neighbor_index", None),
                # Resolved hot-path backend (never "auto"): results are
                # byte-identical across backends, but diff flags
                # cross-backend comparisons so perf numbers are not read
                # across different hot paths by accident.
                "array_backend": resolved_backend,
                "numpy_version": numpy_version() if resolved_backend == "numpy" else None,
                "churn": getattr(config, "churn", "none"),
                "faults": getattr(config, "faults", "none"),
                # Region sharding is byte-identity-neutral, but recording the
                # layout keeps throughput comparisons honest (a sharded and
                # an unsharded run are different perf regimes).
                "shards": getattr(config, "shards", 1),
                "shard_workers": getattr(config, "shard_workers", 1),
            }
        if extra:
            meta.update(extra)

        payload = {"meta": meta, "sweep": sweep.to_dict()}
        path.parent.mkdir(parents=True, exist_ok=True)
        _atomic_write_text(
            path, json.dumps(payload, indent=2, sort_keys=True, allow_nan=False) + "\n"
        )
        return StoredRun(key=key, spec=str(spec_name), path=path, meta=meta)

    # ------------------------------------------------------------------ list
    def _read_payload(self, path: Path) -> Dict[str, object]:
        """Parse one run file and validate its schema version (single parse)."""
        payload = json.loads(path.read_text(encoding="utf-8"))
        schema = payload.get("meta", {}).get("schema")
        if schema != SCHEMA_VERSION:
            raise StoreSchemaError(
                f"{path} has store schema {schema!r}; this code reads schema "
                f"{SCHEMA_VERSION} — upgrade the repro package or re-run the sweep"
            )
        return payload

    def _read_meta(self, path: Path) -> Dict[str, object]:
        return self._read_payload(path)["meta"]

    def list(
        self, spec: Optional[str] = None, tag: Optional[str] = None
    ) -> List[StoredRun]:
        """Saved runs (newest first), optionally filtered by spec and tag."""
        records: List[StoredRun] = []
        if not self.runs_dir.is_dir():
            return records
        for spec_dir in sorted(self.runs_dir.iterdir()):
            if not spec_dir.is_dir() or (spec is not None and spec_dir.name != spec):
                continue
            for path in sorted(spec_dir.glob("*.json")):
                record = self._record_at(path)
                if tag is None or tag in record.tags:
                    records.append(record)
        records.sort(key=lambda record: (record.created, record.key), reverse=True)
        return records

    def latest(
        self, spec: Optional[str] = None, tag: Optional[str] = None
    ) -> StoredRun:
        """The most recently created matching run, or ``KeyError``."""
        records = self.list(spec=spec, tag=tag)
        if not records:
            raise KeyError(
                f"no stored runs match spec={spec!r} tag={tag!r} under {self.root}"
            )
        return records[0]

    # --------------------------------------------------------------- resolve
    def _record_at(self, path: Path) -> StoredRun:
        meta = self._read_meta(path)
        return StoredRun(
            key=str(meta.get("key", path.stem)),
            spec=path.parent.name,
            path=path,
            meta=meta,
        )

    def resolve(self, ref: Union[str, StoredRun]) -> StoredRun:
        """Resolve a run reference (see module docstring for the syntax)."""
        if isinstance(ref, StoredRun):
            return ref
        spec, _, selector = ref.partition("@")
        if selector:
            if selector == "latest":
                return self.latest(spec=spec)
            # Key references resolve without scanning the whole store: the
            # path is derivable (runs/<spec>/<key>.json).
            direct = self.runs_dir / spec / f"{selector}.json"
            if direct.is_file():
                return self._record_at(direct)
            for record in self.list(spec=spec):
                if selector in record.tags:
                    return record
            raise KeyError(
                f"no stored {spec!r} run has key or tag {selector!r} under {self.root}"
            )
        # Bare token: a spec name (latest run) or a content key.
        if (self.runs_dir / spec).is_dir():
            return self.latest(spec=spec)
        matches = sorted(self.runs_dir.glob(f"*/{spec}.json")) if self.runs_dir.is_dir() else []
        if matches:
            return self._record_at(matches[0])
        raise KeyError(f"no stored run matches {ref!r} under {self.root}")

    def load(self, ref: Union[str, StoredRun]) -> SweepResult:
        """Load a run's :class:`SweepResult` by reference (schema-checked)."""
        record = self.resolve(ref)
        return SweepResult.from_dict(self._read_payload(record.path)["sweep"])

    # -------------------------------------------------------------------- gc
    def gc(
        self,
        keep: int = 3,
        spec: Optional[str] = None,
        keep_tagged: bool = True,
    ) -> List[StoredRun]:
        """Delete all but the newest ``keep`` runs per spec; returns removals.

        Tagged runs are protected unless ``keep_tagged`` is ``False`` —
        tags mark baselines other tooling (CI, docs) refers to by name.
        """
        if keep < 0:
            raise ValueError("keep must be >= 0")
        removed: List[StoredRun] = []
        by_spec: Dict[str, List[StoredRun]] = {}
        for record in self.list(spec=spec):
            by_spec.setdefault(record.spec, []).append(record)
        for records in by_spec.values():
            for record in records[keep:]:
                if keep_tagged and record.tags:
                    continue
                record.path.unlink()
                removed.append(record)
        return removed
