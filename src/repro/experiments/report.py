"""Reporting over sweep results: renderers, exporters and cross-run diffing.

One module owns every human- and tool-facing view of a
:class:`~repro.experiments.metrics.SweepResult`:

* :func:`to_text` — the plain-text table the benchmarks archive (this is
  the single rendering path behind the deprecated ``SweepResult.summary()``,
  byte-identical to its historical output);
* :func:`to_markdown` / :func:`to_csv` / :func:`to_gnuplot` — exporters for
  docs, spreadsheets and plot scripts, all driven by the same row model and
  working for every registered spec;
* :func:`tabulate` — arbitrary-metric rows over a
  :class:`~repro.experiments.query.ResultSet` (any scalar field, ``extras``
  or ``profile`` key, at point or trial level);
* :func:`diff` — field-by-field comparison of two runs with three-way
  verdicts (``identical`` / ``within_tolerance`` / ``regressed``), down to
  the per-trial level, usable against full ``SweepResult`` JSON or the
  committed row-based ``BENCH_*.json`` artifacts;
* :func:`throughput_verdict` — the direction-aware gate primitive the
  ``perf-gate`` CLI subcommand is built on.
"""

from __future__ import annotations

import csv
import io
import json
import math
import pathlib
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.experiments.metrics import SweepResult, _freeze_parameters
from repro.experiments.query import ResultSet

# Verdicts, mildest first; a report's overall verdict is its worst entry.
IDENTICAL = "identical"
WITHIN_TOLERANCE = "within_tolerance"
REGRESSED = "regressed"
_SEVERITY = {IDENTICAL: 0, WITHIN_TOLERANCE: 1, REGRESSED: 2}


# ================================================================ rendering
def to_text(result: SweepResult) -> str:
    """A plain-text table of every point (what the benchmarks archive)."""
    lines = [f"== {result.name} ==", result.description]
    if not result.points:
        return "\n".join(lines + ["(no data)"])
    columns = sorted({key for point in result.points for key in point.as_dict()})
    header = " | ".join(f"{column:>18}" for column in columns)
    lines.append(header)
    lines.append("-" * len(header))
    for point in result.points:
        row = point.as_dict()
        lines.append(" | ".join(f"{str(row.get(column, '')):>18}" for column in columns))
    return "\n".join(lines)


def _row_columns(rows: Sequence[Mapping[str, object]]) -> List[str]:
    """Union of row keys: ``label`` first, the rest sorted (stable tables)."""
    keys = {key for row in rows for key in row}
    ordered = ["label"] if "label" in keys else []
    ordered.extend(sorted(keys - {"label"}))
    return ordered


def _cell(value: object) -> str:
    if value is None:
        return ""
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


def tabulate(
    result_set: ResultSet,
    metrics: Sequence[str],
    include_parameters: bool = True,
) -> List[Dict[str, object]]:
    """One dict per row: label (+ parameters) + each requested metric.

    Metrics go through :meth:`ResultSet.select` semantics, so any scalar
    field, ``extras.<key>``/``profile.<key>`` entry or recorded parameter is
    addressable — at trial level too (``result_set.trials()``).
    """
    rows: List[Dict[str, object]] = []
    for row in result_set:
        record: Dict[str, object] = {"label": row.label}
        if include_parameters:
            record.update(row.parameters)
        for metric in metrics:
            record[metric] = row.value(metric)
        rows.append(record)
    return rows


def rows_to_markdown(rows: Sequence[Mapping[str, object]]) -> str:
    """A GitHub-flavoured Markdown table over arbitrary row dicts."""
    if not rows:
        return "*(no data)*"
    columns = _row_columns(rows)
    lines = [
        "| " + " | ".join(columns) + " |",
        "| " + " | ".join("---" for _ in columns) + " |",
    ]
    for row in rows:
        lines.append("| " + " | ".join(_cell(row.get(column)) for column in columns) + " |")
    return "\n".join(lines)


def to_markdown(result: SweepResult, description: bool = True) -> str:
    """The whole sweep as a Markdown section: title, description, row table."""
    lines = [f"## {result.name}", ""]
    if description and result.description:
        lines.extend([result.description, ""])
    lines.append(rows_to_markdown(result.rows()))
    return "\n".join(lines)


def rows_to_csv(rows: Sequence[Mapping[str, object]]) -> str:
    """Arbitrary row dicts as CSV text (union of columns, label first)."""
    columns = _row_columns(rows)
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=columns, extrasaction="ignore")
    writer.writeheader()
    for row in rows:
        writer.writerow({column: row.get(column, "") for column in columns})
    return buffer.getvalue()


def to_csv(result: SweepResult) -> str:
    """The sweep's point rows as CSV text."""
    return rows_to_csv(result.rows())


def default_axis(result: SweepResult) -> Optional[str]:
    """The first parameter that actually varies across points (plot x-axis)."""
    seen: Dict[str, set] = {}
    for point in result.points:
        for key, value in point.parameters.items():
            seen.setdefault(key, set()).add(repr(value))
    for key, values in seen.items():
        if len(values) > 1:
            return key
    return next(iter(seen), None)


def to_gnuplot(
    result: SweepResult,
    axis: Optional[str] = None,
    metric: str = "download_time",
) -> str:
    """Gnuplot-ready columns: the axis, then one metric column per label.

    Missing cells render as ``?`` (gnuplot's missing-datum marker); load
    with e.g. ``plot for [i=2:*] "fig.dat" using 1:i with linespoints``.
    """
    axis = axis if axis is not None else default_axis(result)
    if axis is None:
        raise ValueError(f"result {result.name!r} has no parameters to use as an axis")
    table = ResultSet.from_sweep(result).pivot(axis, metric)
    labels = list(table)
    values: List[object] = []
    for cells in table.values():
        values.extend(value for value in cells if value not in values)
    lines = [
        f"# {result.name}: {metric} vs {axis}",
        "# " + " ".join([axis] + [json.dumps(str(label)) for label in labels]),
    ]
    for value in values:
        cells = [_cell(value)]
        for label in labels:
            cell = table[label].get(value)
            cells.append("?" if cell is None else _cell(cell))
        lines.append(" ".join(cells))
    return "\n".join(lines)


# ================================================================== diffing
@dataclass(frozen=True)
class FieldDiff:
    """One compared field: where it lives, both values, and the verdict."""

    path: str
    a: object
    b: object
    verdict: str
    #: Relative difference ``|a-b| / max(|a|,|b|)`` for numeric pairs,
    #: ``None`` for type/shape mismatches.
    delta: Optional[float] = None

    def __str__(self) -> str:
        delta = f" (delta {self.delta:.2%})" if self.delta is not None else ""
        return f"{self.verdict:>16}  {self.path}: {self.a!r} vs {self.b!r}{delta}"


@dataclass
class DiffReport:
    """Outcome of :func:`diff`: totals plus every non-identical field."""

    a_name: str
    b_name: str
    tolerance: float
    fields_compared: int = 0
    differences: List[FieldDiff] = field(default_factory=list)

    @property
    def verdict(self) -> str:
        worst = IDENTICAL
        for entry in self.differences:
            if _SEVERITY[entry.verdict] > _SEVERITY[worst]:
                worst = entry.verdict
        return worst

    @property
    def regressions(self) -> List[FieldDiff]:
        return [entry for entry in self.differences if entry.verdict == REGRESSED]

    def summary(self) -> str:
        lines = [
            f"diff: {self.a_name} vs {self.b_name} "
            f"(tolerance {self.tolerance:g}, {self.fields_compared} fields)",
            f"verdict: {self.verdict} — {len(self.regressions)} regressed, "
            f"{len(self.differences) - len(self.regressions)} within tolerance",
        ]
        lines.extend(str(entry) for entry in self.differences)
        return "\n".join(lines)

    def to_markdown(self) -> str:
        lines = [
            f"### Diff: `{self.a_name}` vs `{self.b_name}`",
            "",
            f"**Verdict: {self.verdict}** — {self.fields_compared} fields compared, "
            f"{len(self.regressions)} regressed, "
            f"{len(self.differences) - len(self.regressions)} within tolerance "
            f"(tolerance {self.tolerance:g}).",
        ]
        if self.differences:
            lines.append("")
            lines.append(
                rows_to_markdown(
                    [
                        {
                            "field": entry.path,
                            "a": _cell(entry.a),
                            "b": _cell(entry.b),
                            "delta": "" if entry.delta is None else f"{entry.delta:.2%}",
                            "verdict": entry.verdict,
                        }
                        for entry in self.differences
                    ]
                )
            )
        return "\n".join(lines)


def _is_number(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def classify(a: object, b: object, tolerance: float = 0.0) -> Tuple[str, Optional[float]]:
    """Three-way verdict for one field pair: ``(verdict, relative delta)``.

    Equal values (NaN counting as equal to NaN) are ``identical``; numeric
    pairs within ``tolerance`` relative difference are ``within_tolerance``
    (the boundary is inclusive); everything else is ``regressed``.
    """
    if _is_number(a) and _is_number(b):
        if math.isnan(a) and math.isnan(b):
            return IDENTICAL, 0.0
        if a == b:
            return IDENTICAL, 0.0
        denominator = max(abs(a), abs(b))
        if not math.isfinite(denominator):
            return REGRESSED, None
        delta = abs(a - b) / denominator
        return (WITHIN_TOLERANCE if delta <= tolerance else REGRESSED), delta
    if type(a) is type(b) and a == b:
        return IDENTICAL, 0.0
    if a is None and b is None:
        return IDENTICAL, 0.0
    return REGRESSED, None


def _walk(report: DiffReport, path: str, a: object, b: object, tolerance: float) -> None:
    """Recursively compare JSON-shaped values, recording non-identical fields."""
    if isinstance(a, Mapping) and isinstance(b, Mapping):
        for key in sorted(set(a) | set(b), key=str):
            child = f"{path}.{key}" if path else str(key)
            if key not in a:
                report.fields_compared += 1
                report.differences.append(FieldDiff(child, None, b[key], REGRESSED))
            elif key not in b:
                report.fields_compared += 1
                report.differences.append(FieldDiff(child, a[key], None, REGRESSED))
            else:
                _walk(report, child, a[key], b[key], tolerance)
        return
    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        if len(a) != len(b):
            report.fields_compared += 1
            report.differences.append(
                FieldDiff(f"{path}.length", len(a), len(b), REGRESSED, None)
            )
            return
        for index, (item_a, item_b) in enumerate(zip(a, b)):
            _walk(report, f"{path}[{index}]", item_a, item_b, tolerance)
        return
    report.fields_compared += 1
    verdict, delta = classify(a, b, tolerance)
    if verdict != IDENTICAL:
        report.differences.append(FieldDiff(path, a, b, verdict, delta))


def _group_points(sweep: SweepResult) -> Dict[object, List]:
    """Points grouped by ``(label, frozen parameters)``, insertion-ordered."""
    groups: Dict[object, List] = {}
    for point in sweep.points:
        key = (point.label, _freeze_parameters(point.parameters))
        groups.setdefault(key, []).append(point)
    return groups


def _point_payload(point, trial_level: bool) -> Dict[str, object]:
    payload = point.to_dict()
    if trial_level:
        # Profiles carry wall-clock measurements — never comparable.
        for trial in payload["trial_results"]:
            trial.pop("profile", None)
    else:
        payload.pop("trial_results", None)
    return payload


DiffSide = Union[SweepResult, Mapping[str, object], Sequence[Mapping[str, object]]]


def _normalize_side(side: DiffSide) -> Tuple[str, object]:
    """``(name, SweepResult | rows list)`` for any supported diff input.

    Accepts a :class:`SweepResult`, a parsed ``SweepResult`` JSON payload, a
    row-based payload like the committed ``BENCH_*.json`` files (``points``
    holding flat row dicts), or a bare list of row dicts.
    """
    if isinstance(side, SweepResult):
        return side.name, side
    if isinstance(side, Mapping):
        points = side.get("points", [])
        name = str(side.get("name", "rows"))
        if points and isinstance(points[0], Mapping) and "parameters" in points[0]:
            return name, SweepResult.from_dict(side)
        return name, list(points)
    return "rows", list(side)


def diff(
    a: DiffSide,
    b: DiffSide,
    *,
    tolerance: float = 0.0,
    trial_level: bool = True,
) -> DiffReport:
    """Field-by-field comparison of two runs with three-way verdicts.

    Two full :class:`SweepResult`\\ s are matched point-by-point on
    ``(label, parameters)`` — unmatched points regress — and compared field
    by field, including every per-trial :class:`RunResult` when
    ``trial_level`` is set (``profile`` excluded: wall-clock is never
    comparable).  When either side only carries flat rows (the committed
    ``BENCH_*.json`` shape), both sides are compared as rows in plan order.

    ``tolerance`` is a relative bound: numeric fields within it verdict
    ``within_tolerance`` (inclusive); ``0.0`` demands byte-identical values.
    """
    a_name, a_data = _normalize_side(a)
    b_name, b_data = _normalize_side(b)
    report = DiffReport(a_name=a_name, b_name=b_name, tolerance=tolerance)

    if isinstance(a_data, SweepResult) and isinstance(b_data, SweepResult):
        # Group by (label, frozen parameters): duplicate points pair up in
        # insertion order, and a count mismatch within a group regresses —
        # extra/missing points can never silently verdict "identical".
        groups_a = _group_points(a_data)
        groups_b = _group_points(b_data)
        for key in list(groups_a) + [key for key in groups_b if key not in groups_a]:
            points_a = groups_a.get(key, [])
            points_b = groups_b.get(key, [])
            sample = (points_a or points_b)[0]
            path = f"{sample.label}{dict(sample.parameters)}"
            if len(points_a) != len(points_b):
                report.fields_compared += 1
                report.differences.append(
                    FieldDiff(f"{path}.point_count", len(points_a), len(points_b), REGRESSED)
                )
            for point, other in zip(points_a, points_b):
                _walk(
                    report,
                    path,
                    _point_payload(point, trial_level),
                    _point_payload(other, trial_level),
                    tolerance,
                )
        return report

    rows_a = a_data.rows() if isinstance(a_data, SweepResult) else a_data
    rows_b = b_data.rows() if isinstance(b_data, SweepResult) else b_data
    _walk(report, "points", list(rows_a), list(rows_b), tolerance)
    return report


# ================================================================ perf gate
def throughput_verdict(
    rate: float, baseline_rate: float, min_ratio: float = 0.75
) -> FieldDiff:
    """Direction-aware gate verdict for an events/sec measurement.

    Unlike the symmetric :func:`classify`, only a *drop* below
    ``min_ratio * baseline_rate`` regresses — running faster than the
    baseline is always fine.  This is the primitive behind the ``perf-gate``
    CLI subcommand (the CI perf smoke job).
    """
    if rate == baseline_rate:
        verdict = IDENTICAL
    elif rate >= min_ratio * baseline_rate:
        verdict = WITHIN_TOLERANCE
    else:
        verdict = REGRESSED
    delta = (
        abs(rate - baseline_rate) / max(abs(rate), abs(baseline_rate))
        if (rate or baseline_rate)
        else 0.0
    )
    return FieldDiff("events_per_sec", rate, baseline_rate, verdict, delta)


# ================================================================== loading
def load_result(path: Union[str, pathlib.Path]) -> DiffSide:
    """Parse a persisted result file for :func:`diff` / reporting.

    Understands full ``SweepResult`` JSON (CLI ``--out`` / store payloads,
    which wrap the sweep under a ``sweep`` key) and the row-based
    ``BENCH_*.json`` artifacts.
    """
    payload = json.loads(pathlib.Path(path).read_text(encoding="utf-8"))
    if isinstance(payload, Mapping) and "sweep" in payload:
        payload = payload["sweep"]
    _, data = _normalize_side(payload)
    if isinstance(data, SweepResult):
        return data
    return payload
