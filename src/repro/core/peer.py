"""The DAPES peer application.

A :class:`DapesPeer` implements the full protocol behaviour of Section IV on
top of a local NDN forwarder:

1. *Discovery* (Section IV-B) — periodic discovery Interests with an
   adaptive period; discovery Data lists the metadata names of the
   collections the responder can offer.
2. *Secure initialization* (Section IV-C) — retrieval of the signed
   collection metadata (segmented if necessary), authenticated against the
   peer's local trust anchors.
3. *Data advertisements* (Section IV-D) — bitmap Interests carrying the
   requester's bitmap; bitmap Data carrying the responder's bitmap, with
   transmission prioritization and PEBA collision mitigation (Section IV-F).
4. *Data fetching* (Section IV-E) — a pipeline of Interests for the packets
   chosen by the configured RPF strategy, with random transmission timers,
   retransmissions, and opportunistic use of overheard packets.

The same class also covers the producer role (:meth:`publish_collection`),
repositories (a peer with ``interested_in_all=True``) and intermediate DAPES
nodes (a peer that never joins a collection but still builds knowledge and
forwards for others through :class:`~repro.core.intermediate.DapesForwardingStrategy`).
"""

from __future__ import annotations

import base64
import json
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set

from repro.crypto.keys import KeyPair
from repro.crypto.signing import sign
from repro.crypto.trust import TrustAnchorStore
from repro.ndn.face import AppFace
from repro.ndn.forwarder import Forwarder
from repro.ndn.name import Name
from repro.ndn.packet import Data, Interest
from repro.simulation import PeriodicTimer, Simulator
from repro.core.advertisement import AdvertisementTracker
from repro.core.bitmap import Bitmap
from repro.core.collection import FileCollection, PacketStore
from repro.core.config import DapesConfig
from repro.core.knowledge import NeighborKnowledge
from repro.core.metadata import CollectionMetadata
from repro.core.namespace import DapesNamespace
from repro.core.peba import PebaScheduler
from repro.core.rpf import FetchStrategy, make_fetch_strategy
from repro.core.stats import NodeLoadStats

CompletionCallback = Callable[["DapesPeer", str, float], None]


@dataclass(slots=True)
class _OutstandingInterest:
    """Book-keeping for one outstanding data Interest."""

    name: Name
    retries: int = 0
    sent_at: float = 0.0


@dataclass
class CollectionSession:
    """A peer's state for one file collection."""

    collection_id: str
    interested: bool = True
    producer: bool = False
    metadata: Optional[CollectionMetadata] = None
    store: Optional[PacketStore] = None
    metadata_name: Optional[Name] = None
    metadata_segments: Dict[int, Data] = field(default_factory=dict)
    metadata_chunks: Dict[int, bytes] = field(default_factory=dict)
    metadata_total_segments: Optional[int] = None
    metadata_requested: bool = False
    fetch: Optional[FetchStrategy] = None
    outstanding: Dict[int, _OutstandingInterest] = field(default_factory=dict)
    pending_bitmap_targets: List[str] = field(default_factory=list)
    bitmaps_requested: Set[str] = field(default_factory=set)
    bitmaps_received: int = 0
    bitmap_serial: int = 0
    start_time: Optional[float] = None
    completion_time: Optional[float] = None
    distrusted: bool = False
    last_bitmap_response: Dict[str, float] = field(default_factory=dict)

    @property
    def own_bitmap(self) -> Optional[Bitmap]:
        return self.store.bitmap if self.store is not None else None

    @property
    def is_complete(self) -> bool:
        return self.store is not None and self.store.is_complete()


class DapesPeer:
    """One DAPES application instance, bound to a node's forwarder."""

    def __init__(
        self,
        sim: Simulator,
        node_id: str,
        forwarder: Forwarder,
        app_face: AppFace,
        config: Optional[DapesConfig] = None,
        key: Optional[KeyPair] = None,
        trust: Optional[TrustAnchorStore] = None,
    ):
        self.sim = sim
        self.node_id = node_id
        self.forwarder = forwarder
        self.app_face = app_face
        self.config = config if config is not None else DapesConfig()
        self.key = key if key is not None else KeyPair.generate(node_id, seed=node_id.encode())
        self.trust = trust if trust is not None else TrustAnchorStore()
        self.load = NodeLoadStats()
        self.knowledge = NeighborKnowledge(timeout=self.config.knowledge_timeout)
        self.adverts = AdvertisementTracker(encounter_timeout=self.config.neighbor_timeout)
        self._rng = sim.rng(f"dapes.peer.{node_id}")
        self.peba = PebaScheduler(
            transmission_window=self.config.transmission_window,
            slot_duration=self.config.peba_slot_duration,
            initial_slots=self.config.peba_initial_slots,
            priority_groups=self.config.peba_priority_groups,
            max_slots=self.config.peba_max_slots,
            enabled=self.config.peba_enabled,
            rng=self._rng,
        )
        self.sessions: Dict[str, CollectionSession] = {}
        self.join_targets: Set[str] = set()
        self.neighbors: Dict[str, float] = {}
        self._last_neighbor_heard = -1e9
        self._discovery_serial = 0
        self._pending_responses: Dict[Name, object] = {}
        self._outstanding_bitmaps: Dict[Name, str] = {}
        self._completion_callbacks: List[CompletionCallback] = []
        self._discovery_content_cache: Optional[tuple] = None
        self._started = False

        app_face.on_interest = self._on_app_interest
        app_face.on_data = self._on_app_data

        self._discovery_timer = PeriodicTimer(
            sim,
            self._send_discovery,
            period=self._discovery_period,
            jitter=0.2,
            rng=self._rng,
        )
        self._housekeeping_timer = PeriodicTimer(sim, self._housekeeping, period=1.0)

    # ------------------------------------------------------------------ setup
    def start(self) -> None:
        """Begin periodic discovery and housekeeping."""
        if self._started:
            return
        self._started = True
        self._discovery_timer.start(initial_delay=self._rng.uniform(0.0, 1.0))
        self._housekeeping_timer.start(initial_delay=1.0)
        self.load.timers_armed += 2

    def stop(self) -> None:
        """Stop timers (the peer keeps answering Interests already in flight)."""
        self._discovery_timer.stop()
        self._housekeeping_timer.stop()
        self._started = False

    def kill(self) -> None:
        """Abrupt departure: stop and cancel every pending response.

        Unlike :meth:`stop` (graceful — queued answers still drain), a
        killed peer transmits nothing further; its radio is about to be
        detached mid-transfer by the churn manager.
        """
        self.stop()
        for handle in self._pending_responses.values():
            self.sim.cancel(handle)
        self._pending_responses.clear()

    def on_collection_complete(self, callback: CompletionCallback) -> None:
        """Register a callback fired when a collection download completes."""
        self._completion_callbacks.append(callback)

    # -------------------------------------------------------------- producers
    def publish_collection(
        self, collection: FileCollection, metadata_format: Optional[str] = None
    ) -> CollectionMetadata:
        """Create, sign and start serving a file collection (producer role)."""
        metadata = collection.build_metadata(metadata_format or self.config.metadata_format)
        session = self._session(metadata.collection, create=True)
        session.producer = True
        session.interested = True
        session.metadata = metadata
        session.metadata_name = metadata.name()
        session.store = PacketStore(metadata)
        session.store.mark_all_present(collection, self.key)
        session.fetch = self._new_fetch_strategy()
        session.completion_time = self.sim.now
        session.metadata_segments = self._build_metadata_segments(metadata)
        return metadata

    def preload_collection(self, collection: FileCollection, metadata: CollectionMetadata) -> None:
        """Load a full copy of a collection produced elsewhere (e.g. a seeded repository)."""
        session = self._session(metadata.collection, create=True)
        session.interested = True
        session.metadata = metadata
        session.metadata_name = metadata.name()
        session.store = PacketStore(metadata)
        session.store.mark_all_present(collection, self.key)
        session.fetch = self._new_fetch_strategy()
        session.completion_time = self.sim.now
        session.metadata_segments = self._build_metadata_segments(metadata)

    def _build_metadata_segments(self, metadata: CollectionMetadata) -> Dict[int, Data]:
        encoded = metadata.encode()
        chunk_size = max(self.config.packet_size - 200, 256)
        chunks = [encoded[i:i + chunk_size] for i in range(0, len(encoded), chunk_size)] or [b""]
        segments: Dict[int, Data] = {}
        for index, chunk in enumerate(chunks):
            content = json.dumps(
                {
                    "segment": index,
                    "total": len(chunks),
                    "chunk": base64.b64encode(chunk).decode("ascii"),
                }
            ).encode("utf-8")
            name = metadata.name(segment=index)
            segments[index] = Data(
                name=name,
                content=content,
                signature=sign(str(name), content, self.key),
            )
        return segments

    # ------------------------------------------------------------ downloaders
    def join(self, collection_id: str) -> None:
        """Declare interest in downloading a collection (by its name component)."""
        collection_id = Name(collection_id)[0]
        self.join_targets.add(collection_id)
        session = self._session(collection_id, create=True)
        session.interested = True
        if session.start_time is None:
            session.start_time = self.sim.now

    def download_time(self, collection_id: str) -> Optional[float]:
        """Seconds from joining to completion, or ``None`` if not complete."""
        session = self.sessions.get(Name(collection_id)[0])
        if session is None or session.completion_time is None:
            return None
        start = session.start_time if session.start_time is not None else 0.0
        return session.completion_time - start

    @property
    def completed_collections(self) -> List[str]:
        return [cid for cid, session in self.sessions.items() if session.completion_time is not None]

    def progress(self, collection_id: str) -> float:
        session = self.sessions.get(Name(collection_id)[0])
        if session is None or session.store is None:
            return 0.0
        return session.store.progress()

    # ---------------------------------------------------- strategy interface
    def has_packet(self, collection_id: str, name) -> bool:
        """Whether this peer holds the packet ``name`` of ``collection_id``."""
        session = self.sessions.get(collection_id)
        if session is None or session.store is None or session.metadata is None:
            return False
        index = session.metadata.packet_index_of(name)
        return index is not None and session.store.has(index)

    def packet_index(self, collection_id: str, name) -> Optional[int]:
        session = self.sessions.get(collection_id)
        if session is None or session.metadata is None:
            return None
        return session.metadata.packet_index_of(name)

    def has_metadata(self, collection_id: str) -> bool:
        session = self.sessions.get(collection_id)
        return session is not None and session.metadata is not None

    # --------------------------------------------------------------- discovery
    def _discovery_period(self) -> float:
        recently = self.sim.now - self._last_neighbor_heard <= self.config.discovery_recent_window
        return self.config.discovery_period_active if recently else self.config.discovery_period_idle

    def _send_discovery(self) -> None:
        self.load.activation()
        self._discovery_serial += 1
        name = DapesNamespace.discovery_name(self.node_id, self._discovery_serial)
        interest = Interest(name=name, lifetime=1.0)
        self._express(interest)
        self.load.discovery_sent += 1

    def _respond_discovery(self, interest: Interest) -> None:
        # The offer list only depends on which sessions are announceable —
        # not on download progress — so the encoded content is cached until
        # that key changes (a new collection, metadata arriving, or a store
        # receiving its first packet).
        key = tuple(
            (session.collection_id, str(session.metadata_name or session.metadata.name()),
             session.metadata.total_packets)
            for session in self.sessions.values()
            if session.metadata is not None and session.store is not None
            and (session.store.bitmap.count() > 0 or session.producer)
        )
        if not key:
            return
        cached = self._discovery_content_cache
        if cached is not None and cached[0] == key:
            content = cached[1]
        else:
            offers = [
                {"id": collection_id, "metadata": metadata_name, "packets": packets}
                for collection_id, metadata_name, packets in key
            ]
            content = json.dumps({"peer": self.node_id, "collections": offers}).encode("utf-8")
            self._discovery_content_cache = (key, content)
        data = Data(
            name=interest.name,
            content=content,
            signature=sign(str(interest.name), content, self.key),
            freshness_period=1.0,
        )
        self._schedule_response(data, self._rng.uniform(0.0, self.config.transmission_window))

    # ----------------------------------------------------------- app callbacks
    def _on_app_interest(self, interest: Interest) -> None:
        """An Interest reached the application (we may be able to answer it)."""
        self.load.activation()
        self.load.messages_received += 1
        name = interest.name
        kind = DapesNamespace.classify(name)
        if kind == "discovery":
            sender = DapesNamespace.discovery_sender(name)
            if sender != self.node_id:
                self._touch_neighbor(sender)
                self.load.discovery_received += 1
                self._respond_discovery(interest)
        elif kind == "bitmap":
            if DapesNamespace.bitmap_target(name) == self.node_id:
                self._handle_bitmap_request(interest)
        elif kind == "metadata":
            self._respond_metadata(interest)
        else:
            self._respond_packet(interest)

    def _on_app_data(self, data: Data) -> None:
        """Data satisfying one of our Interests reached the application."""
        self.load.activation()
        self.load.messages_received += 1
        self._dispatch_data(data, solicited=True)

    # -------------------------------------------------- strategy observations
    def observe_interest(self, interest: Interest) -> None:
        """Called by the forwarding strategy for every Interest heard on the air."""
        name = interest.name
        kind = DapesNamespace.classify(name)
        if kind == "discovery":
            sender = DapesNamespace.discovery_sender(name)
            if sender != self.node_id:
                self._touch_neighbor(sender)
        elif kind == "bitmap":
            # The requester's bitmap travels in the Interest: overhear it.
            payload = self._decode_bitmap_payload(interest.application_parameters)
            if payload is not None:
                sender, collection, bitmap = payload
                if sender != self.node_id:
                    self._touch_neighbor(sender)
                    self._record_neighbor_bitmap(sender, collection, bitmap)
        elif kind == "collection-data":
            parsed = DapesNamespace.parse_packet_name(name)
            if parsed is not None:
                self.knowledge.observe_interest("(unknown)", parsed.collection, self.sim.now)

    def observe_data(self, data: Data) -> None:
        """Called by the forwarding strategy for every Data packet heard on the air."""
        self._cancel_pending_response(data.name)
        self._dispatch_data(data, solicited=False)

    def on_pit_expired(self, entry) -> None:
        """Called when a locally created PIT entry expired unsatisfied."""
        self._handle_expired_name(entry.name)

    # ----------------------------------------------------------- data dispatch
    def _dispatch_data(self, data: Data, solicited: bool) -> None:
        name = data.name
        kind = DapesNamespace.classify(name)
        if kind == "discovery":
            self._process_discovery_data(data)
        elif kind == "bitmap":
            self._process_bitmap_data(data)
        elif kind == "metadata":
            self._process_metadata_segment(data)
        else:
            self._process_packet(data, solicited=solicited)

    # ------------------------------------------------------------- responding
    def _schedule_response(self, data: Data, delay: float) -> None:
        """Schedule transmission of a response, cancellable if overheard first."""
        def _send() -> None:
            self._pending_responses.pop(data.name, None)
            self.load.activation()
            self.load.messages_sent += 1
            self.load.interests_answered += 1
            self.app_face.put_data(data)

        handle = self.sim.schedule(max(delay, 0.0), _send)
        self._pending_responses[data.name] = handle
        self.load.timers_armed += 1

    def _cancel_pending_response(self, name: Name) -> None:
        handle = self._pending_responses.pop(name, None)
        if handle is not None:
            self.sim.cancel(handle)

    def _respond_packet(self, interest: Interest) -> None:
        parsed = DapesNamespace.parse_packet_name(interest.name)
        if parsed is None:
            return
        session = self.sessions.get(parsed.collection)
        if session is None or session.store is None or session.metadata is None:
            return
        index = session.metadata.packet_index_of(interest.name)
        if index is None or not session.store.has(index):
            return
        data = session.store.packet(index)
        if data is None:
            return
        delay = self._rng.uniform(0.0, self.config.transmission_window)
        self._schedule_response(data, delay)

    def _respond_metadata(self, interest: Interest) -> None:
        collection = DapesNamespace.metadata_collection(interest.name)
        session = self.sessions.get(collection)
        if session is None or not session.metadata_segments:
            return
        segment = 0
        if len(interest.name) >= 4:
            try:
                segment = int(interest.name[-1])
            except ValueError:
                segment = 0
        data = session.metadata_segments.get(segment)
        if data is None or data.name != interest.name:
            # Serve only exact matches (digest must agree).
            if data is None:
                return
        delay = self._rng.uniform(0.0, self.config.transmission_window)
        self._schedule_response(data, delay)

    def _handle_bitmap_request(self, interest: Interest) -> None:
        collection = DapesNamespace.bitmap_collection(interest.name)
        session = self.sessions.get(collection)
        payload = self._decode_bitmap_payload(interest.application_parameters)
        requester = None
        if payload is not None:
            requester, payload_collection, requester_bitmap = payload
            self._touch_neighbor(requester)
            self._record_neighbor_bitmap(requester, payload_collection, requester_bitmap)
        if session is None or session.store is None or session.metadata is None:
            return
        # Collision inference: a repeated bitmap request from the same
        # requester shortly after we responded means our previous response
        # (or a concurrent one) was lost to a collision.  The window covers
        # the requester's Interest lifetime plus scheduling slack.
        if requester is not None:
            last = session.last_bitmap_response.get(requester)
            collision_window = self.config.interest_lifetime * 1.5
            if last is not None and self.sim.now - last < collision_window:
                self.peba.record_collision()
            session.last_bitmap_response[requester] = self.sim.now

        own_bitmap = session.store.bitmap
        priority = self.adverts.priority(collection, own_bitmap, self.sim.now)
        decision = self.peba.schedule(priority.useful_packets, priority.total_missing)
        content = self._encode_bitmap_payload(collection, own_bitmap)
        data = Data(
            name=interest.name,
            content=content,
            signature=sign(str(interest.name), content, self.key),
            freshness_period=1.0,
        )
        self.load.bitmaps_sent += 1
        self.adverts.observe_transmitted_bitmap(collection, own_bitmap, self.sim.now)
        self._schedule_response(data, decision.delay)

    # ----------------------------------------------------- discovery handling
    # Discovery payloads are heard (and re-parsed) by every node in range;
    # the parse is memoized as an immutable summary so peers share no state.
    _discovery_parse_cache: Dict[bytes, Optional[tuple]] = {}

    @staticmethod
    def _parse_discovery_payload(content: bytes) -> Optional[tuple]:
        cache = DapesPeer._discovery_parse_cache
        summary = cache.get(content, False)
        if summary is not False:
            return summary
        try:
            payload = json.loads(content.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            payload = None
        if not isinstance(payload, dict) or not payload.get("peer"):
            summary = None
        else:
            summary = (
                payload["peer"],
                tuple(
                    (entry.get("id"), entry.get("metadata"))
                    for entry in payload.get("collections", [])
                    if isinstance(entry, dict)
                ),
            )
        if len(cache) < DapesPeer._BITMAP_DECODE_CACHE_LIMIT:
            cache[content] = summary
        return summary

    def _process_discovery_data(self, data: Data) -> None:
        summary = self._parse_discovery_payload(data.content)
        if summary is None:
            return
        peer_id, collections = summary
        if peer_id == self.node_id:
            return
        self._touch_neighbor(peer_id)
        for collection_id, metadata_name in collections:
            if not collection_id or not metadata_name:
                continue
            self.knowledge.observe_interest(peer_id, collection_id, self.sim.now)
            wanted = self.config.interested_in_all or collection_id in self.join_targets
            session = self.sessions.get(collection_id)
            if session is None:
                if not wanted:
                    continue
                session = self._session(collection_id, create=True)
                session.start_time = self.sim.now
            if session.metadata is None:
                session.metadata_name = Name(metadata_name)
                if wanted or session.interested:
                    self._request_metadata(session)
            elif session.interested and not session.is_complete:
                self._maybe_request_bitmap(session, peer_id)

    # ------------------------------------------------------ metadata handling
    def _request_metadata(self, session: CollectionSession, segment: int = 0) -> None:
        if session.metadata is not None or session.metadata_name is None or session.distrusted:
            return
        name = session.metadata_name.append(str(segment))
        interest = Interest(name=name, lifetime=self.config.interest_lifetime)
        session.metadata_requested = True
        self._express(interest)

    def _process_metadata_segment(self, data: Data) -> None:
        collection = DapesNamespace.metadata_collection(data.name)
        session = self.sessions.get(collection)
        if session is None or session.metadata is not None or session.distrusted:
            return
        if not (self.config.interested_in_all or collection in self.join_targets or session.interested):
            return
        # Authenticate the segment against our local trust anchors.
        if data.signature is None or not self.trust.authenticate(str(data.name), data.content, data.signature):
            session.distrusted = True
            return
        try:
            payload = json.loads(data.content.decode("utf-8"))
            segment = int(payload["segment"])
            total = int(payload["total"])
            chunk = base64.b64decode(payload["chunk"])
        except (ValueError, KeyError, TypeError):
            return
        if session.metadata_name is None:
            session.metadata_name = data.name.parent()
        session.metadata_chunks[segment] = chunk
        session.metadata_total_segments = total
        missing = [i for i in range(total) if i not in session.metadata_chunks]
        if missing:
            self._request_metadata(session, segment=missing[0])
            return
        encoded = b"".join(session.metadata_chunks[i] for i in range(total))
        try:
            metadata = CollectionMetadata.decode(encoded)
        except (ValueError, KeyError):
            return
        if not self.trust.is_trusted(metadata.producer):
            session.distrusted = True
            return
        session.metadata = metadata
        session.store = PacketStore(metadata)
        session.fetch = self._new_fetch_strategy()
        session.metadata_segments = self._build_metadata_segments(metadata)
        self.load.metadata_fetched += 1
        if session.start_time is None:
            session.start_time = self.sim.now
        # Begin advertisement exchange with every neighbour believed relevant.
        for neighbor in self.knowledge.neighbors_with_collection(metadata.collection, self.sim.now):
            if neighbor != self.node_id:
                self._maybe_request_bitmap(session, neighbor)
        self._fill_pipeline(session)

    # -------------------------------------------------------- bitmap handling
    def _encode_bitmap_payload(self, collection: str, bitmap: Bitmap) -> bytes:
        return json.dumps(
            {
                "peer": self.node_id,
                "collection": collection,
                "size": bitmap.size,
                "bitmap": bitmap.to_bytes().hex(),
            }
        ).encode("utf-8")

    # One bitmap payload is decoded by every node that hears the frame, so
    # the decode is memoized process-wide; each caller gets its own Bitmap
    # copy (cheap bytearray clone) so no state is shared between peers.
    _bitmap_decode_cache: Dict[bytes, Optional[tuple]] = {}
    _BITMAP_DECODE_CACHE_LIMIT = 8192

    def _decode_bitmap_payload(self, payload) -> Optional[tuple[str, str, Bitmap]]:
        if not isinstance(payload, (bytes, bytearray)):
            return None
        payload = bytes(payload)
        cache = DapesPeer._bitmap_decode_cache
        decoded = cache.get(payload, False)
        if decoded is False:
            try:
                parsed = json.loads(payload.decode("utf-8"))
                bitmap = Bitmap.from_bytes(int(parsed["size"]), bytes.fromhex(parsed["bitmap"]))
                decoded = (parsed["peer"], parsed["collection"], bitmap)
            except (ValueError, KeyError, TypeError):
                decoded = None
            if len(cache) < DapesPeer._BITMAP_DECODE_CACHE_LIMIT:
                cache[payload] = decoded
        if decoded is None:
            return None
        peer_id, collection, bitmap = decoded
        return peer_id, collection, bitmap.copy()

    def _record_neighbor_bitmap(self, peer_id: str, collection: str, bitmap: Bitmap) -> None:
        self.knowledge.observe_bitmap(peer_id, collection, bitmap, self.sim.now)
        self.adverts.observe_transmitted_bitmap(collection, bitmap, self.sim.now)
        session = self.sessions.get(collection)
        if session is not None and session.fetch is not None:
            session.fetch.observe_bitmap(peer_id, bitmap, self.sim.now)

    def _maybe_request_bitmap(self, session: CollectionSession, peer_id: str) -> None:
        if session.store is None or session.is_complete or not session.interested:
            return
        if peer_id == self.node_id or peer_id in session.bitmaps_requested:
            return
        quota = self.config.max_bitmaps
        if quota is not None and len(session.bitmaps_requested) >= quota:
            return
        if self.config.bitmap_exchange == "interleaved" and session.bitmaps_requested:
            # Later bitmaps are interleaved with data fetching.
            if peer_id not in session.pending_bitmap_targets:
                session.pending_bitmap_targets.append(peer_id)
            self._fill_pipeline(session)
            return
        self._send_bitmap_interest(session, peer_id)

    def _send_bitmap_interest(self, session: CollectionSession, target: str) -> None:
        if session.store is None:
            return
        session.bitmap_serial += 1
        session.bitmaps_requested.add(target)
        name = DapesNamespace.bitmap_name(target, session.collection_id, session.bitmap_serial)
        params = self._encode_bitmap_payload(session.collection_id, session.store.bitmap)
        interest = Interest(
            name=name,
            lifetime=self.config.interest_lifetime,
            application_parameters=params,
            application_parameters_size=len(params),
        )
        self._outstanding_bitmaps[name] = target
        self.adverts.observe_transmitted_bitmap(session.collection_id, session.store.bitmap, self.sim.now)
        self._express(interest)

    def _process_bitmap_data(self, data: Data) -> None:
        payload = self._decode_bitmap_payload(data.content)
        if payload is None:
            return
        peer_id, collection, bitmap = payload
        if peer_id == self.node_id:
            return
        self._touch_neighbor(peer_id)
        self._record_neighbor_bitmap(peer_id, collection, bitmap)
        self._outstanding_bitmaps.pop(data.name, None)
        session = self.sessions.get(collection)
        if session is None or session.store is None:
            return
        session.bitmaps_received += 1
        self.load.bitmaps_received += 1
        self._fill_pipeline(session)

    # --------------------------------------------------------- data fetching
    def _quota(self, session: CollectionSession) -> int:
        known = self.knowledge.neighbors_with_collection(session.collection_id, self.sim.now)
        available = len([peer for peer in known if peer != self.node_id])
        if self.config.max_bitmaps is None:
            return max(available, 1)
        return min(self.config.max_bitmaps, max(available, 1))

    def _fill_pipeline(self, session: CollectionSession) -> None:
        if session.store is None or session.fetch is None or not session.interested:
            return
        if session.is_complete:
            return
        if not self._has_active_neighbors():
            return
        if self.config.bitmap_exchange == "before":
            if session.bitmaps_received < self._quota(session) and session.bitmaps_requested:
                # Still waiting for the advertisements we asked for.
                return
        while len(session.outstanding) < self.config.pipeline_size:
            if (
                self.config.bitmap_exchange == "interleaved"
                and session.pending_bitmap_targets
                and self._rng.random() < 0.5
            ):
                target = session.pending_bitmap_targets.pop(0)
                self._send_bitmap_interest(session, target)
                continue
            picks = session.fetch.select(
                session.store.bitmap, 1, exclude=session.outstanding.keys()
            )
            if not picks:
                break
            self._send_data_interest(session, picks[0])

    def _send_data_interest(self, session: CollectionSession, index: int, retries: int = 0) -> None:
        if session.store is None or session.metadata is None:
            return
        if session.store.has(index):
            return
        name = session.metadata.packet_name(index)
        session.outstanding[index] = _OutstandingInterest(name=name, retries=retries, sent_at=self.sim.now)
        delay = self._rng.uniform(0.0, self.config.transmission_window)

        def _send() -> None:
            if not self._started:
                # Liveness guard: the peer departed between scheduling and
                # firing; a stopped peer must not express new Interests.
                session.outstanding.pop(index, None)
                return
            if session.store is None or session.store.has(index):
                session.outstanding.pop(index, None)
                self._fill_pipeline(session)
                return
            interest = Interest(name=name, lifetime=self.config.interest_lifetime)
            self._express(interest)
            # Application-level retransmission timer (RTT-style), much shorter
            # than the Interest lifetime so a single lost frame does not stall
            # the pipeline.
            rto = self.config.data_retransmit_timeout * (2 ** min(retries, 4))
            if self.config.retransmit_jitter:
                # Jittered exponential backoff: desynchronize peers whose
                # retransmission timers would otherwise collide under
                # sustained loss.  Zero jitter draws nothing (byte-identity).
                rto *= 1.0 + self._rng.uniform(0.0, self.config.retransmit_jitter)
            self.sim.schedule_call(rto, self._check_data_interest, session, index, retries)
            self.load.timers_armed += 1

        self.sim.schedule_call(delay, _send)
        self.load.timers_armed += 1

    def _check_data_interest(self, session: CollectionSession, index: int, retries: int) -> None:
        """Retransmit an unanswered data Interest, or give up after the limit."""
        if not self._started:
            # Liveness guard: retransmission timer outlived the peer.
            return
        if session.store is None or session.store.has(index):
            return
        outstanding = session.outstanding.get(index)
        if outstanding is None or outstanding.retries != retries:
            return  # already resolved or superseded by a newer attempt
        session.outstanding.pop(index, None)
        if retries < self.config.retransmission_limit and self._has_active_neighbors():
            self.load.retransmissions += 1
            self._send_data_interest(session, index, retries=retries + 1)
        else:
            self._fill_pipeline(session)

    def _process_packet(self, data: Data, solicited: bool) -> None:
        parsed = DapesNamespace.parse_packet_name(data.name)
        if parsed is None:
            return
        self.knowledge.observe_data(parsed.collection, None, self.sim.now)
        session = self.sessions.get(parsed.collection)
        if session is None or session.store is None or not session.interested:
            return
        index = session.metadata.packet_index_of(data.name) if session.metadata else None
        if index is None:
            return
        was_requested = index in session.outstanding
        already_had = session.store.has(index)
        accepted = session.store.add_packet(data, now=self.sim.now)
        if not accepted:
            self.load.state_misses += 1
            return
        session.outstanding.pop(index, None)
        if not already_had:
            if was_requested:
                self.load.packets_downloaded += 1
            else:
                self.load.packets_overheard += 1
        self.knowledge.observe_data(parsed.collection, index, self.sim.now)
        if session.is_complete and session.completion_time is None:
            session.completion_time = self.sim.now
            if session.store.completion_time is None:
                session.store.completion_time = self.sim.now
            for callback in self._completion_callbacks:
                callback(self, session.collection_id, self.sim.now)
        else:
            self._fill_pipeline(session)

    # ---------------------------------------------------------- timeouts etc.
    def _handle_expired_name(self, name: Name) -> None:
        kind = DapesNamespace.classify(name)
        if kind == "bitmap":
            target = self._outstanding_bitmaps.pop(name, None)
            if target is not None:
                # Allow a later retry with a fresh serial if the target is still around.
                for session in self.sessions.values():
                    session.bitmaps_requested.discard(target)
                if self.config.dark_neighbor_fallback:
                    self._fallback_from_dark_neighbor(target)
            return
        if kind == "metadata":
            collection = DapesNamespace.metadata_collection(name)
            session = self.sessions.get(collection)
            if session is not None and session.metadata is None and self._has_active_neighbors():
                self.load.retransmissions += 1
                self._request_metadata(session)
            return
        if kind == "collection-data":
            # Data-interest retransmission is driven by the application-level
            # RTO (:meth:`_check_data_interest`); PIT expiry only nudges the
            # pipeline in case the RTO chain ended.
            parsed = DapesNamespace.parse_packet_name(name)
            if parsed is None:
                return
            session = self.sessions.get(parsed.collection)
            if session is None or session.store is None:
                return
            self._fill_pipeline(session)

    def _fallback_from_dark_neighbor(self, peer_id: str) -> None:
        """Graceful degradation: a neighbour went dark mid-transfer.

        Rather than waiting out ``neighbor_timeout`` on a peer that stopped
        answering (stalled, partitioned away, or abruptly killed), forget it
        now and re-steer every incomplete session toward the remaining
        active neighbours — deterministically, in sorted order, so fault
        runs stay byte-identical across backends.
        """
        self.neighbors.pop(peer_id, None)
        self.knowledge.forget_neighbor(peer_id)
        candidates = sorted(peer for peer in self._active_neighbors() if peer != peer_id)
        for session in self.sessions.values():
            if session.fetch is not None:
                session.fetch.forget_peer(peer_id)
            session.bitmaps_requested.discard(peer_id)
            if peer_id in session.pending_bitmap_targets:
                session.pending_bitmap_targets.remove(peer_id)
            if session.interested and not session.is_complete and session.metadata is not None:
                for candidate in candidates:
                    self._maybe_request_bitmap(session, candidate)
                self._fill_pipeline(session)

    # ----------------------------------------------------------------- recovery
    def reannounce(self) -> None:
        """Recovery nudge: a partition healed or a stall resumed nearby.

        Sends an immediate discovery Interest (instead of waiting for the
        periodic timer) and kicks every incomplete session's pipeline so
        re-discovered neighbours are put to work right away.
        """
        if not self._started:
            return
        self._send_discovery()
        for session in self.sessions.values():
            if session.interested and session.metadata is not None and not session.is_complete:
                self._fill_pipeline(session)

    # ------------------------------------------------------------- neighbours
    def _touch_neighbor(self, peer_id: str) -> None:
        if peer_id == self.node_id:
            return
        is_new = peer_id not in self.neighbors
        self.neighbors[peer_id] = self.sim.now
        self._last_neighbor_heard = self.sim.now
        if is_new:
            # A fresh encounter: try to exchange advertisements for every
            # collection we are actively downloading.
            for session in self.sessions.values():
                if session.interested and session.metadata is not None and not session.is_complete:
                    self._maybe_request_bitmap(session, peer_id)

    def _active_neighbors(self) -> List[str]:
        cutoff = self.sim.now - self.config.neighbor_timeout
        return [peer for peer, heard in self.neighbors.items() if heard >= cutoff]

    def _has_active_neighbors(self) -> bool:
        """Truthiness-only variant of :meth:`_active_neighbors` (hot path)."""
        if self.sim.now - self._last_neighbor_heard <= self.config.neighbor_timeout:
            return True
        cutoff = self.sim.now - self.config.neighbor_timeout
        return any(heard >= cutoff for heard in self.neighbors.values())

    def _housekeeping(self) -> None:
        self.load.activation()
        now = self.sim.now
        cutoff = now - self.config.neighbor_timeout
        departed = [peer for peer, heard in self.neighbors.items() if heard < cutoff]
        for peer in departed:
            del self.neighbors[peer]
            self.knowledge.forget_neighbor(peer)
            for session in self.sessions.values():
                if session.fetch is not None:
                    session.fetch.forget_peer(peer)
                session.bitmaps_requested.discard(peer)
                if peer in session.pending_bitmap_targets:
                    session.pending_bitmap_targets.remove(peer)
        if departed and not self.neighbors:
            # Encounter over: per-encounter state expires (Section IV-E/IV-F).
            self.adverts.reset()
            self.peba.reset_encounter()
            for session in self.sessions.values():
                if session.fetch is not None:
                    session.fetch.reset_encounter()
                session.bitmaps_requested.clear()
                session.bitmaps_received = 0
        self.knowledge.prune(now)
        self.load.record_state_size(self.state_size_bytes)
        # Keep the pipelines moving even if an event was missed.
        for session in self.sessions.values():
            if session.interested and not session.is_complete and session.metadata is not None:
                self._fill_pipeline(session)
            elif session.interested and session.metadata is None and session.metadata_name is not None:
                if self._has_active_neighbors() and not session.distrusted:
                    self._request_metadata(session)

    # -------------------------------------------------------------- internals
    def _session(self, collection_id: str, create: bool = False) -> CollectionSession:
        collection_id = Name(collection_id)[0]
        session = self.sessions.get(collection_id)
        if session is None:
            if not create:
                raise KeyError(f"no session for collection {collection_id!r}")
            session = CollectionSession(collection_id=collection_id)
            self.sessions[collection_id] = session
        return session

    def _new_fetch_strategy(self) -> FetchStrategy:
        return make_fetch_strategy(
            self.config.rpf_strategy,
            random_start=self.config.random_start,
            history=self.config.encounter_history,
            rng=self._rng,
        )

    def _express(self, interest: Interest) -> None:
        self.load.messages_sent += 1
        self.app_face.express_interest(interest)

    # ------------------------------------------------------------- accounting
    @property
    def state_size_bytes(self) -> int:
        """Bytes of protocol state held by this peer (Table I memory proxy)."""
        total = self.forwarder.state_size_bytes
        total += self.knowledge.state_size_bytes
        total += self.adverts.state_size_bytes
        for session in self.sessions.values():
            if session.store is not None:
                total += session.store.state_size_bytes
            if session.fetch is not None and hasattr(session.fetch, "state_size_bytes"):
                total += session.fetch.state_size_bytes
        return total
