"""Factories that wire a complete DAPES node together.

A node consists of a radio attached to the shared wireless medium, an NDN
forwarder with a broadcast face and an application face, a forwarding
strategy, and (except for pure forwarders) a DAPES peer application.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.crypto.keys import KeyPair
from repro.crypto.trust import TrustAnchorStore
from repro.ndn.face import AppFace, BroadcastFace
from repro.ndn.forwarder import Forwarder, ForwarderConfig
from repro.simulation import Simulator
from repro.wireless.medium import WirelessMedium
from repro.wireless.radio import Radio
from repro.core.config import DapesConfig
from repro.core.intermediate import DapesForwardingStrategy
from repro.core.namespace import DapesNamespace
from repro.core.peer import DapesPeer
from repro.core.pure_forwarder import PureForwarderNode
from repro.core.repository import RepositoryPeer


@dataclass
class DapesNode:
    """A fully assembled DAPES node (radio + forwarder + application)."""

    node_id: str
    radio: Radio
    forwarder: Forwarder
    app_face: AppFace
    broadcast_face: BroadcastFace
    strategy: DapesForwardingStrategy
    peer: DapesPeer

    def start(self) -> None:
        self.peer.start()

    def stop(self) -> None:
        self.peer.stop()

    def kill(self) -> None:
        """Abrupt departure (churn fault injection): nothing more is sent."""
        self.peer.kill()

    @property
    def load(self):
        return self.peer.load

    @property
    def state_size_bytes(self) -> int:
        return self.peer.state_size_bytes


def build_dapes_peer(
    sim: Simulator,
    medium: WirelessMedium,
    node_id: str,
    config: Optional[DapesConfig] = None,
    trust: Optional[TrustAnchorStore] = None,
    key: Optional[KeyPair] = None,
    wifi_range: Optional[float] = None,
    cs_capacity: int = 4096,
    peer_class: type = DapesPeer,
) -> DapesNode:
    """Assemble a DAPES peer node (downloader, producer or intermediate)."""
    config = config if config is not None else DapesConfig()
    radio = Radio(sim, medium, node_id, wifi_range=wifi_range)
    forwarder = Forwarder(sim, node_id, config=ForwarderConfig(cs_capacity=cs_capacity))
    app_face = forwarder.add_face(AppFace(name=f"app:{node_id}"))
    broadcast_face = forwarder.add_face(
        BroadcastFace(
            radio,
            protocol="dapes",
            classify=lambda packet: DapesNamespace.classify(packet.name),
            name=f"wifi:{node_id}",
        )
    )
    peer = peer_class(
        sim=sim,
        node_id=node_id,
        forwarder=forwarder,
        app_face=app_face,
        config=config,
        key=key,
        trust=trust,
    )
    strategy = DapesForwardingStrategy(
        peer=peer,
        knowledge=peer.knowledge,
        multi_hop=config.multi_hop,
        forwarding_probability=config.forwarding_probability,
    )
    forwarder.set_strategy(strategy)
    return DapesNode(
        node_id=node_id,
        radio=radio,
        forwarder=forwarder,
        app_face=app_face,
        broadcast_face=broadcast_face,
        strategy=strategy,
        peer=peer,
    )


def build_repository(
    sim: Simulator,
    medium: WirelessMedium,
    node_id: str,
    config: Optional[DapesConfig] = None,
    trust: Optional[TrustAnchorStore] = None,
    key: Optional[KeyPair] = None,
    wifi_range: Optional[float] = None,
    cs_capacity: int = 16384,
) -> DapesNode:
    """Assemble a stationary repository node."""
    return build_dapes_peer(
        sim,
        medium,
        node_id,
        config=config,
        trust=trust,
        key=key,
        wifi_range=wifi_range,
        cs_capacity=cs_capacity,
        peer_class=RepositoryPeer,
    )


def build_pure_forwarder(
    sim: Simulator,
    medium: WirelessMedium,
    node_id: str,
    forward_probability: float = 0.2,
    wifi_range: Optional[float] = None,
) -> PureForwarderNode:
    """Assemble a pure forwarder (NDN-only) node."""
    return PureForwarderNode(
        sim,
        medium,
        node_id,
        forward_probability=forward_probability,
        wifi_range=wifi_range,
    )
