"""Short-lived knowledge about the data available around a node (Section V).

DAPES nodes overhear bitmap exchanges, Interests and Data transmissions from
their neighbours and keep *short-lived* records of (i) which neighbour holds
which packets of which collection, and (ii) which collections neighbours are
interested in.  Intermediate nodes use this knowledge to decide whether
forwarding a received Interest is likely to bring data back; peers use it to
know what is available around them.

Entries expire after ``timeout`` seconds — the knowledge is deliberately
ephemeral because neighbours move.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.core.bitmap import Bitmap


@dataclass
class _NeighborRecord:
    """What is known about one neighbour for one collection."""

    bitmap: Optional[Bitmap] = None
    interested: bool = False
    last_update: float = 0.0


class NeighborKnowledge:
    """Per-node store of overheard neighbour state."""

    def __init__(self, timeout: float = 15.0):
        self.timeout = timeout
        # (collection, neighbour) -> record
        self._records: Dict[Tuple[str, str], _NeighborRecord] = {}
        # Names for which Data was recently overheard (data is nearby).
        self._recent_data: Dict[str, float] = {}

    # --------------------------------------------------------------- updates
    def observe_bitmap(self, neighbor: str, collection: str, bitmap: Bitmap, now: float) -> None:
        """Record a neighbour's advertised bitmap for a collection."""
        record = self._records.setdefault((collection, neighbor), _NeighborRecord())
        record.bitmap = bitmap
        record.interested = True
        record.last_update = now

    def observe_interest(self, neighbor: str, collection: str, now: float) -> None:
        """Record that a neighbour requested data of ``collection`` (it is interested)."""
        record = self._records.setdefault((collection, neighbor), _NeighborRecord())
        record.interested = True
        record.last_update = now

    def observe_data(self, collection: str, packet_index: Optional[int], now: float) -> None:
        """Record that Data of ``collection`` was recently heard nearby."""
        key = collection if packet_index is None else f"{collection}#{packet_index}"
        self._recent_data[key] = now
        self._recent_data[collection] = now

    def forget_neighbor(self, neighbor: str) -> None:
        """Drop everything known about a departed neighbour."""
        for key in [key for key in self._records if key[1] == neighbor]:
            del self._records[key]

    # --------------------------------------------------------------- queries
    def _fresh(self, record: _NeighborRecord, now: float) -> bool:
        return now - record.last_update <= self.timeout

    def neighbors_with_collection(self, collection: str, now: float) -> List[str]:
        """Neighbours known to be interested in (or holding data of) ``collection``."""
        return [
            neighbor
            for (coll, neighbor), record in self._records.items()
            if coll == collection and self._fresh(record, now)
        ]

    def neighbor_bitmap(self, neighbor: str, collection: str, now: float) -> Optional[Bitmap]:
        record = self._records.get((collection, neighbor))
        if record is None or not self._fresh(record, now):
            return None
        return record.bitmap

    def known_bitmaps(self, collection: str, now: float, exclude: Set[str] = frozenset()) -> List[Bitmap]:
        """All fresh bitmaps known for ``collection`` (excluding some neighbours)."""
        bitmaps = []
        for (coll, neighbor), record in self._records.items():
            if coll != collection or neighbor in exclude:
                continue
            if record.bitmap is not None and self._fresh(record, now):
                bitmaps.append(record.bitmap)
        return bitmaps

    def someone_has_packet(
        self, collection: str, packet_index: int, now: float, exclude: Set[str] = frozenset()
    ) -> bool:
        """Whether some fresh neighbour bitmap shows ``packet_index`` as present."""
        for (coll, neighbor), record in self._records.items():
            if coll != collection or neighbor in exclude:
                continue
            if record.bitmap is None or not self._fresh(record, now):
                continue
            if 0 <= packet_index < record.bitmap.size and record.bitmap.get(packet_index):
                return True
        return False

    def data_recently_heard(self, collection: str, now: float, packet_index: Optional[int] = None) -> bool:
        """Whether Data of ``collection`` (or a specific packet) was heard within the timeout."""
        key = collection if packet_index is None else f"{collection}#{packet_index}"
        timestamp = self._recent_data.get(key)
        if timestamp is None and packet_index is not None:
            timestamp = self._recent_data.get(collection)
        return timestamp is not None and now - timestamp <= self.timeout

    def knows_collection(self, collection: str, now: float) -> bool:
        """Whether anything fresh is known about ``collection``."""
        if self.data_recently_heard(collection, now):
            return True
        return bool(self.neighbors_with_collection(collection, now))

    # ------------------------------------------------------------- housekeeping
    def prune(self, now: float) -> int:
        """Remove expired records; returns how many were dropped."""
        stale = [key for key, record in self._records.items() if not self._fresh(record, now)]
        for key in stale:
            del self._records[key]
        stale_data = [key for key, timestamp in self._recent_data.items() if now - timestamp > self.timeout]
        for key in stale_data:
            del self._recent_data[key]
        return len(stale) + len(stale_data)

    @property
    def state_size_bytes(self) -> int:
        """Memory held by the knowledge store (Table I memory proxy)."""
        total = 0
        for record in self._records.values():
            total += 64
            if record.bitmap is not None:
                total += record.bitmap.wire_size
        total += 32 * len(self._recent_data)
        return total

    def __len__(self) -> int:
        return len(self._records)
