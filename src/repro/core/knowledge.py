"""Short-lived knowledge about the data available around a node (Section V).

DAPES nodes overhear bitmap exchanges, Interests and Data transmissions from
their neighbours and keep *short-lived* records of (i) which neighbour holds
which packets of which collection, and (ii) which collections neighbours are
interested in.  Intermediate nodes use this knowledge to decide whether
forwarding a received Interest is likely to bring data back; peers use it to
know what is available around them.

Entries expire after ``timeout`` seconds — the knowledge is deliberately
ephemeral because neighbours move.

Records are indexed per collection: the hot queries (``someone_has_packet``
on every forwarded Interest, ``neighbors_with_collection`` on every pipeline
fill) touch only the records of the collection in question instead of
scanning the whole store.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.core.bitmap import Bitmap


@dataclass(slots=True)
class _NeighborRecord:
    """What is known about one neighbour for one collection."""

    bitmap: Optional[Bitmap] = None
    interested: bool = False
    last_update: float = 0.0


class NeighborKnowledge:
    """Per-node store of overheard neighbour state."""

    def __init__(self, timeout: float = 15.0):
        self.timeout = timeout
        # collection -> neighbour -> record (insertion-ordered both levels,
        # matching the historical flat-dict iteration order per collection).
        self._by_collection: Dict[str, Dict[str, _NeighborRecord]] = {}
        # Names for which Data was recently overheard (data is nearby).
        self._recent_data: Dict[str, float] = {}

    # --------------------------------------------------------------- updates
    def _record(self, collection: str, neighbor: str) -> _NeighborRecord:
        records = self._by_collection.get(collection)
        if records is None:
            records = self._by_collection[collection] = {}
        record = records.get(neighbor)
        if record is None:
            record = records[neighbor] = _NeighborRecord()
        return record

    def observe_bitmap(self, neighbor: str, collection: str, bitmap: Bitmap, now: float) -> None:
        """Record a neighbour's advertised bitmap for a collection."""
        record = self._record(collection, neighbor)
        record.bitmap = bitmap
        record.interested = True
        record.last_update = now

    def observe_interest(self, neighbor: str, collection: str, now: float) -> None:
        """Record that a neighbour requested data of ``collection`` (it is interested)."""
        record = self._record(collection, neighbor)
        record.interested = True
        record.last_update = now

    def observe_data(self, collection: str, packet_index: Optional[int], now: float) -> None:
        """Record that Data of ``collection`` was recently heard nearby."""
        recent = self._recent_data
        if packet_index is not None:
            recent[f"{collection}#{packet_index}"] = now
        recent[collection] = now

    def forget_neighbor(self, neighbor: str) -> None:
        """Drop everything known about a departed neighbour."""
        emptied = []
        for collection, records in self._by_collection.items():
            records.pop(neighbor, None)
            if not records:
                emptied.append(collection)
        for collection in emptied:
            del self._by_collection[collection]

    # --------------------------------------------------------------- queries
    def _fresh(self, record: _NeighborRecord, now: float) -> bool:
        return now - record.last_update <= self.timeout

    def neighbors_with_collection(self, collection: str, now: float) -> List[str]:
        """Neighbours known to be interested in (or holding data of) ``collection``."""
        records = self._by_collection.get(collection)
        if not records:
            return []
        cutoff = now - self.timeout
        return [
            neighbor
            for neighbor, record in records.items()
            if record.last_update >= cutoff
        ]

    def neighbor_bitmap(self, neighbor: str, collection: str, now: float) -> Optional[Bitmap]:
        records = self._by_collection.get(collection)
        record = records.get(neighbor) if records else None
        if record is None or not self._fresh(record, now):
            return None
        return record.bitmap

    def known_bitmaps(self, collection: str, now: float, exclude: Set[str] = frozenset()) -> List[Bitmap]:
        """All fresh bitmaps known for ``collection`` (excluding some neighbours)."""
        records = self._by_collection.get(collection)
        if not records:
            return []
        cutoff = now - self.timeout
        return [
            record.bitmap
            for neighbor, record in records.items()
            if neighbor not in exclude
            and record.bitmap is not None
            and record.last_update >= cutoff
        ]

    def someone_has_packet(
        self, collection: str, packet_index: int, now: float, exclude: Set[str] = frozenset()
    ) -> bool:
        """Whether some fresh neighbour bitmap shows ``packet_index`` as present."""
        records = self._by_collection.get(collection)
        if not records:
            return False
        cutoff = now - self.timeout
        for neighbor, record in records.items():
            if neighbor in exclude:
                continue
            bitmap = record.bitmap
            if bitmap is None or record.last_update < cutoff:
                continue
            if 0 <= packet_index < bitmap.size and bitmap.get(packet_index):
                return True
        return False

    def data_recently_heard(self, collection: str, now: float, packet_index: Optional[int] = None) -> bool:
        """Whether Data of ``collection`` (or a specific packet) was heard within the timeout."""
        key = collection if packet_index is None else f"{collection}#{packet_index}"
        timestamp = self._recent_data.get(key)
        if timestamp is None and packet_index is not None:
            timestamp = self._recent_data.get(collection)
        return timestamp is not None and now - timestamp <= self.timeout

    def knows_collection(self, collection: str, now: float) -> bool:
        """Whether anything fresh is known about ``collection``."""
        if self.data_recently_heard(collection, now):
            return True
        records = self._by_collection.get(collection)
        if not records:
            return False
        cutoff = now - self.timeout
        return any(record.last_update >= cutoff for record in records.values())

    # ------------------------------------------------------------- housekeeping
    def prune(self, now: float) -> int:
        """Remove expired records; returns how many were dropped."""
        cutoff = now - self.timeout
        dropped = 0
        emptied = []
        for collection, records in self._by_collection.items():
            stale = [
                neighbor
                for neighbor, record in records.items()
                if record.last_update < cutoff
            ]
            for neighbor in stale:
                del records[neighbor]
            dropped += len(stale)
            if not records:
                # Without this, a long-lived node accumulates one empty dict
                # per collection it ever heard of.
                emptied.append(collection)
        for collection in emptied:
            del self._by_collection[collection]
        stale_data = [key for key, timestamp in self._recent_data.items() if now - timestamp > self.timeout]
        for key in stale_data:
            del self._recent_data[key]
        return dropped + len(stale_data)

    @property
    def state_size_bytes(self) -> int:
        """Memory held by the knowledge store (Table I memory proxy)."""
        total = 0
        for records in self._by_collection.values():
            for record in records.values():
                total += 64
                if record.bitmap is not None:
                    total += record.bitmap.wire_size
        total += 32 * len(self._recent_data)
        return total

    def __len__(self) -> int:
        return sum(len(records) for records in self._by_collection.values())
