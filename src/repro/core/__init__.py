"""The DAPES protocol (the paper's primary contribution).

The package is organised around the design components of Section IV and the
multi-hop communication design of Section V:

* :mod:`repro.core.namespace` — the hierarchical naming scheme
  (Section IV-A) plus the discovery and bitmap namespaces.
* :mod:`repro.core.collection` — file collections, packetisation, signing
  and the per-peer packet store.
* :mod:`repro.core.metadata` — the two metadata encodings (packet-digest and
  Merkle-tree based, Section IV-C).
* :mod:`repro.core.bitmap` — compact data advertisements (Section IV-D).
* :mod:`repro.core.rpf` — the Rarest-Piece-First variants (Section IV-E).
* :mod:`repro.core.advertisement` / :mod:`repro.core.peba` — advertisement
  prioritization and the Priority-based Exponential Backoff Algorithm
  (Section IV-F).
* :mod:`repro.core.knowledge` — the short-lived knowledge peers build about
  data available around them (Section V).
* :mod:`repro.core.peer` — the DAPES peer application (discovery, metadata
  retrieval, bitmap exchange, data fetching).
* :mod:`repro.core.intermediate` — forwarding/suppression strategy for
  intermediate nodes that run DAPES (Section V-B).
* :mod:`repro.core.pure_forwarder` — NDN-only pure forwarders (Section V-A).
* :mod:`repro.core.repository` — stationary data repositories.
* :mod:`repro.core.node` — convenience factories wiring a full node (radio,
  forwarder, faces, application) together.
"""

from repro.core.bitmap import Bitmap
from repro.core.collection import CollectionBuilder, FileCollection, FileSpec, PacketStore
from repro.core.config import DapesConfig
from repro.core.knowledge import NeighborKnowledge
from repro.core.metadata import CollectionMetadata, FileMetadata, MetadataFormat
from repro.core.namespace import DapesNamespace
from repro.core.node import DapesNode, build_dapes_peer, build_pure_forwarder, build_repository
from repro.core.peba import PebaScheduler, peba_average_delay
from repro.core.peer import DapesPeer
from repro.core.pure_forwarder import PureForwarderNode
from repro.core.repository import RepositoryPeer
from repro.core.rpf import EncounterBasedRpf, FetchStrategy, LocalNeighborhoodRpf, make_fetch_strategy

__all__ = [
    "Bitmap",
    "CollectionBuilder",
    "CollectionMetadata",
    "DapesConfig",
    "DapesNamespace",
    "DapesNode",
    "DapesPeer",
    "EncounterBasedRpf",
    "FetchStrategy",
    "FileCollection",
    "FileMetadata",
    "FileSpec",
    "LocalNeighborhoodRpf",
    "MetadataFormat",
    "NeighborKnowledge",
    "PacketStore",
    "PebaScheduler",
    "PureForwarderNode",
    "RepositoryPeer",
    "build_dapes_peer",
    "build_pure_forwarder",
    "build_repository",
    "make_fetch_strategy",
    "peba_average_delay",
]
