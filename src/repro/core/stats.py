"""Per-node application statistics and system-load proxies.

The paper's real-world feasibility study (Table I) reports, besides download
time and transmissions, the *system load* of running DAPES: memory overhead,
context switches, system calls and page faults.  A Python simulation cannot
reproduce those OS-level numbers directly, so this module defines documented
proxies (see DESIGN.md §6):

* memory overhead  → peak bytes of protocol state (packet stores, PIT, CS,
  knowledge store, RPF history, advertisement tracker);
* context switches → scheduler activations of the node's handlers/timers;
* system calls     → frames sent + frames received + timers armed;
* page faults      → state-table misses (CS misses, knowledge-store misses,
  metadata/packet-store misses).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class NodeLoadStats:
    """Counters tracked by each DAPES node."""

    messages_sent: int = 0
    messages_received: int = 0
    timers_armed: int = 0
    scheduler_activations: int = 0
    state_misses: int = 0
    state_bytes_peak: int = 0
    interests_answered: int = 0
    packets_downloaded: int = 0
    packets_overheard: int = 0
    bitmaps_sent: int = 0
    bitmaps_received: int = 0
    discovery_sent: int = 0
    discovery_received: int = 0
    metadata_fetched: int = 0
    retransmissions: int = 0
    extra: Dict[str, int] = field(default_factory=dict)

    # ------------------------------------------------------------ recording
    def record_state_size(self, size_bytes: int) -> None:
        """Track the peak protocol-state footprint."""
        if size_bytes > self.state_bytes_peak:
            self.state_bytes_peak = size_bytes

    def activation(self) -> None:
        self.scheduler_activations += 1

    # --------------------------------------------------------------- proxies
    @property
    def memory_overhead_mb(self) -> float:
        """Table I "Memory Overhead (MB)" proxy."""
        return self.state_bytes_peak / (1024 * 1024)

    @property
    def context_switches(self) -> int:
        """Table I "Context Switches" proxy."""
        return self.scheduler_activations

    @property
    def system_calls(self) -> int:
        """Table I "System Calls" proxy."""
        return self.messages_sent + self.messages_received + self.timers_armed

    @property
    def page_faults(self) -> int:
        """Table I "Page Faults" proxy."""
        return self.state_misses

    def as_dict(self) -> Dict[str, float]:
        """Snapshot used by the experiment harness."""
        return {
            "memory_overhead_mb": self.memory_overhead_mb,
            "context_switches": self.context_switches,
            "system_calls": self.system_calls,
            "page_faults": self.page_faults,
            "messages_sent": self.messages_sent,
            "messages_received": self.messages_received,
            "packets_downloaded": self.packets_downloaded,
            "packets_overheard": self.packets_overheard,
            "bitmaps_sent": self.bitmaps_sent,
            "bitmaps_received": self.bitmaps_received,
            "retransmissions": self.retransmissions,
        }
