"""Data-advertisement prioritization during an encounter (Section IV-F).

When several peers meet, the order in which they transmit their bitmaps
matters: the goal is that encountered peers quickly become aware of as much
available (missing) data as possible.  The rules are:

* the first bitmap of an encounter goes to the peer holding the most data;
* every subsequent transmission is prioritized by the number of packets a
  peer holds that are missing from *all previously transmitted* bitmaps;
* collisions among similarly-useful peers are mitigated by PEBA.

:class:`AdvertisementTracker` maintains, per collection, the union of the
bitmaps already transmitted during the current encounter, and computes the
priority inputs (useful packets / total missing) that feed the scheduler.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.bitmap import Bitmap


@dataclass
class _EncounterAdvertisementState:
    """Union of bitmaps already heard/transmitted for one collection."""

    transmitted_union: Optional[Bitmap] = None
    bitmaps_heard: int = 0
    last_activity: float = 0.0


@dataclass
class AdvertisementPriority:
    """Inputs to the bitmap-transmission scheduler for one peer."""

    useful_packets: int
    total_missing: int
    bitmaps_heard: int

    @property
    def is_first(self) -> bool:
        """Whether no bitmap has been transmitted yet in this encounter."""
        return self.bitmaps_heard == 0

    @property
    def useful_fraction(self) -> float:
        """Fraction of still-missing packets this peer can provide."""
        if self.total_missing <= 0:
            return 1.0 if self.useful_packets > 0 else 0.0
        return self.useful_packets / self.total_missing


class AdvertisementTracker:
    """Tracks transmitted bitmaps per collection during the current encounter."""

    def __init__(self, encounter_timeout: float = 6.0):
        self.encounter_timeout = encounter_timeout
        self._state: Dict[str, _EncounterAdvertisementState] = {}

    # ------------------------------------------------------------- lifecycle
    def _fresh_state(self, collection: str, now: float) -> _EncounterAdvertisementState:
        state = self._state.get(collection)
        if state is None or now - state.last_activity > self.encounter_timeout:
            state = _EncounterAdvertisementState(last_activity=now)
            self._state[collection] = state
        return state

    def reset(self, collection: Optional[str] = None) -> None:
        """Drop per-encounter state (for one collection or all of them)."""
        if collection is None:
            self._state.clear()
        else:
            self._state.pop(collection, None)

    # --------------------------------------------------------------- updates
    def observe_transmitted_bitmap(self, collection: str, bitmap: Bitmap, now: float) -> None:
        """Record a bitmap heard on the channel (ours or another peer's)."""
        state = self._fresh_state(collection, now)
        if state.transmitted_union is None:
            state.transmitted_union = bitmap.copy()
        elif state.transmitted_union.size == bitmap.size:
            state.transmitted_union = state.transmitted_union.union(bitmap)
        state.bitmaps_heard += 1
        state.last_activity = now

    # --------------------------------------------------------------- queries
    def priority(self, collection: str, own_bitmap: Bitmap, now: float) -> AdvertisementPriority:
        """Priority inputs for transmitting ``own_bitmap`` now."""
        state = self._fresh_state(collection, now)
        union = state.transmitted_union
        if union is None or union.size != own_bitmap.size:
            # First bitmap of the encounter: priority is simply how much data
            # the peer holds (the peer with most data should transmit first).
            return AdvertisementPriority(
                useful_packets=own_bitmap.count(),
                total_missing=own_bitmap.size,
                bitmaps_heard=0,
            )
        missing_from_transmitted = union.missing_count()
        useful = own_bitmap.difference(union).count()
        return AdvertisementPriority(
            useful_packets=useful,
            total_missing=missing_from_transmitted,
            bitmaps_heard=state.bitmaps_heard,
        )

    def bitmaps_heard(self, collection: str, now: float) -> int:
        """How many bitmaps have been heard for ``collection`` this encounter."""
        state = self._state.get(collection)
        if state is None or now - state.last_activity > self.encounter_timeout:
            return 0
        return state.bitmaps_heard

    @property
    def state_size_bytes(self) -> int:
        """Memory held by the tracker (Table I proxy)."""
        total = 0
        for state in self._state.values():
            if state.transmitted_union is not None:
                total += state.transmitted_union.wire_size
        return total
