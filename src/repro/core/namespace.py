"""The DAPES namespace (Section IV-A).

A collection is named ``/<label>-<unix-timestamp>`` (e.g.
``/damaged-bridge-1533783192``); a packet of a file inside it is
``/<collection>/<file>/<sequence>``; the collection metadata is
``/<collection>/metadata-file/<digest>[/<segment>]``.

Protocol signalling uses the application namespace ``/dapes``:

* discovery Interests — ``/dapes/discovery/<peer>/<serial>``;
* bitmap Interests — ``/dapes/bitmap/<target-peer>/<collection>/<serial>``
  (the sender's own bitmap travels in the Interest's application
  parameters, the target's bitmap comes back in the Data content).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.ndn.name import Name, NameLike

APP_PREFIX = Name("/dapes")
DISCOVERY_PREFIX = APP_PREFIX.append("discovery")
BITMAP_PREFIX = APP_PREFIX.append("bitmap")
METADATA_COMPONENT = "metadata-file"


@dataclass(frozen=True)
class PacketName:
    """Parsed form of a file-collection packet name."""

    collection: str
    file_name: str
    sequence: int

    def to_name(self) -> Name:
        return Name([self.collection, self.file_name, str(self.sequence)])


class DapesNamespace:
    """Builders and parsers for every name DAPES uses."""

    # ----------------------------------------------------------- collections
    @staticmethod
    def collection_name(label: str, timestamp: int) -> Name:
        """Name of a collection created at ``timestamp`` (a unix time)."""
        label = label.strip("/")
        if not label:
            raise ValueError("collection label must be non-empty")
        return Name([f"{label}-{int(timestamp)}"])

    @staticmethod
    def packet_name(collection: NameLike, file_name: str, sequence: int) -> Name:
        """Name of packet ``sequence`` of ``file_name`` in ``collection``."""
        if sequence < 0:
            raise ValueError("sequence must be non-negative")
        return Name(collection).append(file_name, str(sequence))

    _parse_cache: dict = {}
    _PARSE_CACHE_MISS = object()

    @staticmethod
    def parse_packet_name(name: NameLike) -> Optional[PacketName]:
        """Parse a packet name; returns ``None`` if ``name`` is not one.

        Memoized like :meth:`classify`: every node re-parses the same packet
        names for every frame it hears, and :class:`PacketName` is frozen so
        sharing instances is safe.
        """
        if type(name) is not Name:
            name = Name(name)
        cache = DapesNamespace._parse_cache
        parsed = cache.get(name, DapesNamespace._PARSE_CACHE_MISS)
        if parsed is not DapesNamespace._PARSE_CACHE_MISS:
            return parsed
        parsed = DapesNamespace._parse_packet_name_uncached(name)
        if len(cache) < DapesNamespace._CLASSIFY_CACHE_LIMIT:
            cache[name] = parsed
        return parsed

    @staticmethod
    def _parse_packet_name_uncached(name: Name) -> Optional[PacketName]:
        components = name.components
        if len(components) != 3:
            return None
        collection, file_name, sequence = components
        if file_name == METADATA_COMPONENT:
            return None
        try:
            seq = int(sequence)
        except ValueError:
            return None
        if seq < 0:
            return None
        return PacketName(collection=collection, file_name=file_name, sequence=seq)

    # -------------------------------------------------------------- metadata
    @staticmethod
    def metadata_name(collection: NameLike, digest: str, segment: Optional[int] = None) -> Name:
        """Name of the (possibly segmented) metadata file of ``collection``."""
        name = Name(collection).append(METADATA_COMPONENT, digest)
        if segment is not None:
            name = name.append(str(segment))
        return name

    @staticmethod
    def is_metadata_name(name: NameLike) -> bool:
        name = Name(name)
        return len(name) >= 3 and name[1] == METADATA_COMPONENT

    @staticmethod
    def metadata_collection(name: NameLike) -> str:
        """Collection component of a metadata name."""
        name = Name(name)
        if not DapesNamespace.is_metadata_name(name):
            raise ValueError(f"{name} is not a metadata name")
        return name[0]

    # ------------------------------------------------------------- discovery
    @staticmethod
    def discovery_name(peer_id: str, serial: int) -> Name:
        """Name of one discovery Interest from ``peer_id``."""
        return DISCOVERY_PREFIX.append(peer_id, str(serial))

    @staticmethod
    def is_discovery_name(name: NameLike) -> bool:
        return DISCOVERY_PREFIX.is_prefix_of(name)

    @staticmethod
    def discovery_sender(name: NameLike) -> str:
        """Peer id embedded in a discovery name."""
        name = Name(name)
        if not DapesNamespace.is_discovery_name(name) or len(name) < 3:
            raise ValueError(f"{name} is not a discovery name")
        return name[2]

    # ---------------------------------------------------------------- bitmaps
    @staticmethod
    def bitmap_name(target_peer: str, collection: NameLike, serial: int) -> Name:
        """Name of a bitmap Interest asking ``target_peer`` for its bitmap."""
        collection_component = Name(collection)[0]
        return BITMAP_PREFIX.append(target_peer, collection_component, str(serial))

    @staticmethod
    def is_bitmap_name(name: NameLike) -> bool:
        return BITMAP_PREFIX.is_prefix_of(name)

    @staticmethod
    def bitmap_target(name: NameLike) -> str:
        """Target peer id of a bitmap name."""
        name = Name(name)
        if not DapesNamespace.is_bitmap_name(name) or len(name) < 4:
            raise ValueError(f"{name} is not a bitmap name")
        return name[2]

    @staticmethod
    def bitmap_collection(name: NameLike) -> str:
        """Collection component of a bitmap name."""
        name = Name(name)
        if not DapesNamespace.is_bitmap_name(name) or len(name) < 4:
            raise ValueError(f"{name} is not a bitmap name")
        return name[3]

    # ------------------------------------------------------- classification
    _classify_cache: dict = {}
    _CLASSIFY_CACHE_LIMIT = 65536

    @staticmethod
    def classify(name: NameLike) -> str:
        """Frame-kind label used by the overhead accounting.

        Classification is pure and names repeat heavily (every forwarded
        frame re-classifies the same packet names), so results are memoized;
        the bound keeps pathological workloads from growing the table
        without limit.
        """
        cache = DapesNamespace._classify_cache
        try:
            kind = cache.get(name)
        except TypeError:
            kind = None  # unhashable NameLike (e.g. a component list)
        if kind is not None:
            return kind
        name = Name(name)
        components = name.components
        # Same decision order as the is_*_name predicates, inlined: the
        # prefixes are /dapes/discovery and /dapes/bitmap; metadata names
        # are /<collection>/metadata-file/...
        if len(components) >= 2 and components[0] == "dapes":
            second = components[1]
            if second == "discovery":
                kind = "discovery"
            elif second == "bitmap":
                kind = "bitmap"
        if kind is None:
            if len(components) >= 3 and components[1] == METADATA_COMPONENT:
                kind = "metadata"
            else:
                kind = "collection-data"
        if len(cache) < DapesNamespace._CLASSIFY_CACHE_LIMIT:
            cache[name] = kind
        return kind
