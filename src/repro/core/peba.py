"""Priority-based Exponential Backoff Algorithm — PEBA (Section IV-F).

PEBA governs *bitmap* transmissions during an encounter:

* With no collision detected, a peer schedules its bitmap transmission by
  dividing the default transmission window by the fraction of packets it
  holds that are missing from all previously transmitted bitmaps — the more
  useful a peer's data, the earlier it transmits (linear prioritization).
* When peers detect a collision, PEBA creates transmission slots through an
  exponential backoff, splits the colliding peers into priority groups
  (peers holding at least half of the still-missing packets go into the
  first group) and has each peer pick a random slot inside its group.  The
  slot table doubles on every further collision, up to a cap.  Groups and
  slots are created per encounter; no long-term state is kept.

The analysis helpers implement the formulas of Section IV-F: with ``L``
slots split into ``k`` groups there are ``n = floor(L/k)`` slots per group,
a peer's average contention window is ``(n-1)/2`` and its average bitmap
transmission delay is ``T_delay = (L_average - 1)/2 * tau``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional


@dataclass
class PebaDecision:
    """Outcome of one scheduling decision."""

    delay: float
    slot: Optional[int] = None
    group: Optional[int] = None
    used_backoff: bool = False


class PebaScheduler:
    """Per-encounter scheduler for prioritized bitmap transmissions."""

    def __init__(
        self,
        transmission_window: float = 0.020,
        slot_duration: float = 0.004,
        initial_slots: int = 2,
        priority_groups: int = 2,
        max_slots: int = 64,
        enabled: bool = True,
        rng: Optional[random.Random] = None,
    ):
        if transmission_window <= 0 or slot_duration <= 0:
            raise ValueError("window and slot duration must be positive")
        if initial_slots < 1 or priority_groups < 1 or max_slots < initial_slots:
            raise ValueError("invalid slot/group configuration")
        self.transmission_window = transmission_window
        self.slot_duration = slot_duration
        self.initial_slots = initial_slots
        self.priority_groups = priority_groups
        self.max_slots = max_slots
        self.enabled = enabled
        self._rng = rng if rng is not None else random.Random(0)
        self._slots = 0  # 0 means "no collision detected yet in this encounter"
        self.collisions_detected = 0
        self.decisions = 0

    # ------------------------------------------------------------ lifecycle
    def reset_encounter(self) -> None:
        """Forget collision state; called when an encounter ends."""
        self._slots = 0

    def record_collision(self) -> None:
        """Register a detected bitmap-transmission collision.

        The first collision creates ``initial_slots`` slots; every further
        collision doubles the table (exponential backoff) up to ``max_slots``.
        Without PEBA (``enabled=False``) collisions do not change behaviour —
        peers keep using the purely linear prioritization, which is the
        "w/o PEBA" configuration of Fig. 9b.
        """
        self.collisions_detected += 1
        if not self.enabled:
            return
        if self._slots == 0:
            self._slots = self.initial_slots
        else:
            self._slots = min(self._slots * 2, self.max_slots)

    # ------------------------------------------------------------ scheduling
    def schedule(self, useful_packets: int, total_missing: int) -> PebaDecision:
        """Delay before transmitting this peer's bitmap.

        ``useful_packets`` is the number of packets this peer holds that are
        missing from all previously transmitted bitmaps; ``total_missing``
        is the total number of packets still missing from those bitmaps.
        """
        self.decisions += 1
        useful_packets = max(useful_packets, 0)
        total_missing = max(total_missing, 0)
        if not self.enabled or self._slots == 0:
            return PebaDecision(delay=self._linear_delay(useful_packets, total_missing))
        # Backoff mode: pick a random slot inside the peer's priority group.
        group = self._group_of(useful_packets, total_missing)
        slots_per_group = max(self._slots // self.priority_groups, 1)
        first_slot = group * slots_per_group
        slot = first_slot + self._rng.randrange(slots_per_group)
        return PebaDecision(
            delay=slot * self.slot_duration,
            slot=slot,
            group=group,
            used_backoff=True,
        )

    def _linear_delay(self, useful_packets: int, total_missing: int) -> float:
        if total_missing <= 0:
            # Nothing is known to be missing yet: the peer with most data
            # should go first; approximate by a small random delay.
            return self._rng.uniform(0.0, self.transmission_window * 0.25)
        fraction = useful_packets / total_missing
        if fraction <= 0:
            return self.transmission_window
        return min(self.transmission_window / max(fraction, 1e-9), self.transmission_window / 1e-2)

    def _group_of(self, useful_packets: int, total_missing: int) -> int:
        """Priority group index (0 = highest priority)."""
        if total_missing <= 0:
            return 0
        if self.priority_groups == 2:
            # The paper's rule: peers holding at least half of the missing
            # packets go to the first group.
            return 0 if useful_packets * 2 >= total_missing else 1
        fraction = useful_packets / total_missing
        group = int((1.0 - fraction) * self.priority_groups)
        return min(max(group, 0), self.priority_groups - 1)

    @property
    def current_slots(self) -> int:
        """Current size of the slot table (0 before any collision)."""
        return self._slots


# --------------------------------------------------------------------- analysis
def slots_per_group(total_slots: int, groups: int) -> int:
    """``n = floor(L / k)`` slots per priority group."""
    if total_slots < 1 or groups < 1:
        raise ValueError("total_slots and groups must be >= 1")
    return max(total_slots // groups, 1)


def average_contention_window(slots_in_group: int) -> float:
    """``L_average = (n - 1) / 2`` from the paper's analysis."""
    if slots_in_group < 1:
        raise ValueError("slots_in_group must be >= 1")
    return (slots_in_group - 1) / 2


def peba_average_delay(total_slots: int, groups: int, slot_duration: float) -> float:
    """Average delay ``T_delay = (L_average - 1)/2 * tau`` before a successful bitmap transmission."""
    if slot_duration <= 0:
        raise ValueError("slot_duration must be positive")
    l_average = average_contention_window(slots_per_group(total_slots, groups))
    return max((l_average - 1) / 2, 0.0) * slot_duration


def bitmap_exchange_time_budget(
    contact_duration: float,
    bitmap_count: int,
    average_delay: float,
    transmission_delay: float,
    interleaved: bool,
) -> float:
    """Average time left for data fetching, ``T_data`` of Section IV-D.

    With bitmaps exchanged *before* data, ``T_data = Δt − (T_delay + d)·b``
    (zero if the encounter is shorter than the bitmap exchanges).  With
    interleaved exchanges only a single bitmap exchange must fit in the
    encounter.
    """
    if contact_duration < 0 or bitmap_count < 0:
        raise ValueError("contact_duration and bitmap_count must be non-negative")
    per_bitmap = average_delay + transmission_delay
    if interleaved:
        if per_bitmap >= contact_duration:
            return 0.0
        return contact_duration - per_bitmap * bitmap_count
    if per_bitmap * bitmap_count >= contact_duration:
        return 0.0
    return contact_duration - per_bitmap * bitmap_count
