"""Compact data advertisements (Section IV-D).

Each bit refers to one packet of a collection, ordered by the relative
position of the files in the metadata and of the packets within each file.
A set bit means the peer has the packet.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence


class Bitmap:
    """A fixed-length bitmap over the packets of one collection."""

    __slots__ = ("_bits", "_size", "_count")

    def __init__(self, size: int, set_bits: Iterable[int] = ()):  # noqa: D107
        if size < 0:
            raise ValueError("bitmap size must be non-negative")
        self._size = size
        self._bits = bytearray((size + 7) // 8)
        self._count = 0
        for index in set_bits:
            self.set(index)

    # --------------------------------------------------------------- basics
    @property
    def size(self) -> int:
        """Number of packets the bitmap covers."""
        return self._size

    def __len__(self) -> int:
        return self._size

    def _check(self, index: int) -> None:
        if not 0 <= index < self._size:
            raise IndexError(f"bit index {index} out of range (size {self._size})")

    def set(self, index: int, value: bool = True) -> None:
        """Set (or clear) the bit for packet ``index``."""
        self._check(index)
        byte, offset = index >> 3, index & 7
        mask = 1 << offset
        present = self._bits[byte] & mask
        if value:
            if not present:
                self._bits[byte] |= mask
                self._count += 1
        elif present:
            self._bits[byte] &= ~mask
            self._count -= 1

    def get(self, index: int) -> bool:
        """Whether the peer has packet ``index``."""
        self._check(index)
        return bool(self._bits[index >> 3] & (1 << (index & 7)))

    def __getitem__(self, index: int) -> bool:
        return self.get(index)

    def __iter__(self) -> Iterator[bool]:
        return (self.get(index) for index in range(self._size))

    def __eq__(self, other) -> bool:
        if not isinstance(other, Bitmap):
            return NotImplemented
        return self._size == other._size and self._bits == other._bits

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Bitmap({self.count()}/{self._size})"

    # ------------------------------------------------------------- counting
    def count(self) -> int:
        """Number of packets the peer has (maintained incrementally)."""
        return self._count

    def missing_count(self) -> int:
        """Number of packets the peer is missing."""
        return self._size - self.count()

    def is_complete(self) -> bool:
        """Whether every packet is present."""
        return self.count() == self._size

    def ones(self) -> List[int]:
        """Indices of packets the peer has (ascending)."""
        result: List[int] = []
        append = result.append
        for byte_index, byte in enumerate(self._bits):
            if not byte:
                continue
            base = byte_index << 3
            while byte:
                low = byte & -byte
                append(base + low.bit_length() - 1)
                byte &= byte - 1
        if result and result[-1] >= self._size:
            return [index for index in result if index < self._size]
        return result

    def missing(self) -> List[int]:
        """Indices of packets the peer is missing (ascending).

        Scans byte-wise and skips full bytes, so a nearly complete download
        costs O(size / 8) instead of ``size`` method calls.
        """
        result: List[int] = []
        append = result.append
        size = self._size
        for byte_index, byte in enumerate(self._bits):
            if byte == 0xFF:
                continue
            base = byte_index << 3
            clear = ~byte & 0xFF
            while clear:
                low = clear & -clear
                index = base + low.bit_length() - 1
                if index >= size:
                    break
                append(index)
                clear &= clear - 1
        return result

    # ----------------------------------------------------------- set algebra
    def union(self, other: "Bitmap") -> "Bitmap":
        """Packets present in either bitmap."""
        self._check_compatible(other)
        result = Bitmap(self._size)
        result._bits = bytearray(a | b for a, b in zip(self._bits, other._bits))
        result._recount()
        return result

    def intersection(self, other: "Bitmap") -> "Bitmap":
        """Packets present in both bitmaps."""
        self._check_compatible(other)
        result = Bitmap(self._size)
        result._bits = bytearray(a & b for a, b in zip(self._bits, other._bits))
        result._recount()
        return result

    def difference(self, other: "Bitmap") -> "Bitmap":
        """Packets present here but missing from ``other``."""
        self._check_compatible(other)
        result = Bitmap(self._size)
        result._bits = bytearray(a & ~b & 0xFF for a, b in zip(self._bits, other._bits))
        result._recount()
        return result

    def _recount(self) -> None:
        """Resynchronize the cached popcount after a bulk ``_bits`` rewrite."""
        self._count = sum(bin(byte).count("1") for byte in self._bits)

    def _check_compatible(self, other: "Bitmap") -> None:
        if self._size != other._size:
            raise ValueError(f"bitmap sizes differ ({self._size} vs {other._size})")

    # ------------------------------------------------------------- encoding
    def to_bytes(self) -> bytes:
        """Compact wire encoding (one bit per packet)."""
        return bytes(self._bits)

    @classmethod
    def from_bytes(cls, size: int, payload: bytes) -> "Bitmap":
        """Decode a bitmap of ``size`` packets from its wire encoding."""
        bitmap = cls(size)
        expected = (size + 7) // 8
        if len(payload) != expected:
            raise ValueError(f"expected {expected} bytes for a {size}-bit bitmap, got {len(payload)}")
        bitmap._bits = bytearray(payload)
        # Clear any padding bits beyond `size` so equality stays well defined.
        extra_bits = expected * 8 - size
        if extra_bits:
            bitmap._bits[-1] &= (1 << (8 - extra_bits)) - 1
        bitmap._recount()
        return bitmap

    @property
    def wire_size(self) -> int:
        """Encoded size in bytes."""
        return len(self._bits)

    def copy(self) -> "Bitmap":
        clone = Bitmap(self._size)
        clone._bits = bytearray(self._bits)
        clone._count = self._count
        return clone

    # -------------------------------------------------------------- helpers
    @staticmethod
    def rarity(index: int, bitmaps: Sequence["Bitmap"]) -> int:
        """How many of ``bitmaps`` are missing packet ``index`` (higher = rarer)."""
        return sum(1 for bitmap in bitmaps if not bitmap.get(index))

    @staticmethod
    def presence_counts(size: int, bitmaps: Sequence["Bitmap"]) -> List[int]:
        """Per-index count of ``bitmaps`` holding each packet.

        ``rarity(i, bitmaps) == len(bitmaps) - presence_counts(size, bitmaps)[i]``
        — but computed in one pass over the set bits instead of
        ``size * len(bitmaps)`` :meth:`get` calls (the RPF selection hot path).
        """
        counts = [0] * size
        for bitmap in bitmaps:
            for byte_index, byte in enumerate(bitmap._bits):
                if not byte:
                    continue
                base = byte_index << 3
                while byte:
                    low = byte & -byte
                    index = base + low.bit_length() - 1
                    if index < size:
                        counts[index] += 1
                    byte &= byte - 1
        return counts

    @classmethod
    def full(cls, size: int) -> "Bitmap":
        """A bitmap with every packet present (producers, completed peers)."""
        return cls(size, set_bits=range(size))
