"""Collection metadata and its two encodings (Section IV-C).

The metadata file is generated and signed by the collection producer.  It
lets peers (i) learn the names of the data packets to request and (ii)
verify the integrity of each received packet without verifying its
signature.

Two formats are provided, mirroring Figure 4 of the paper:

* **packet-digest based** — the metadata lists, per file, one
  ``index/digest`` subname per packet.  Packets can be verified the moment
  they arrive, but the metadata grows with the collection and may need to be
  segmented into several network-layer packets.
* **Merkle-tree based** — the metadata carries one Merkle root per file plus
  the packet count.  It usually fits in a single packet, but a packet can
  only be integrity-checked once all packets of its file (and hence the full
  tree) are available.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Sequence, Tuple

from repro.crypto.digest import sha256_hex
from repro.crypto.merkle import MerkleTree
from repro.ndn.name import Name
from repro.core.namespace import DapesNamespace


class MetadataFormat(str, Enum):
    """The two metadata encodings of Section IV-C."""

    DIGEST = "digest"
    MERKLE = "merkle"


@dataclass
class FileMetadata:
    """Metadata of one file inside a collection."""

    file_name: str
    packet_count: int
    packet_digests: List[str] = field(default_factory=list)
    merkle_root: Optional[str] = None

    def __post_init__(self) -> None:
        if self.packet_count <= 0:
            raise ValueError("packet_count must be positive")
        if self.packet_digests and len(self.packet_digests) != self.packet_count:
            raise ValueError("packet_digests length must equal packet_count")


@dataclass
class CollectionMetadata:
    """The full metadata of a file collection."""

    collection: str
    files: List[FileMetadata]
    format: MetadataFormat
    producer: str
    packet_size: int

    def __post_init__(self) -> None:
        if not self.files:
            raise ValueError("a collection needs at least one file")
        if isinstance(self.format, str):
            self.format = MetadataFormat(self.format)
        self._offsets: Dict[str, int] = {}
        offset = 0
        for file_meta in self.files:
            self._offsets[file_meta.file_name] = offset
            offset += file_meta.packet_count
        self._total = offset
        # Name <-> bitmap index memos: metadata is immutable and the same
        # packet names are resolved for every frame heard (hot path).
        self._index_of_name: Dict[object, Optional[int]] = {}
        self._name_of_index: Dict[int, Name] = {}
        self._wire_size_cache: Optional[int] = None

    # ------------------------------------------------------------ structure
    @property
    def collection_name(self) -> Name:
        return Name([self.collection])

    @property
    def total_packets(self) -> int:
        """Total number of packets across every file (bitmap length)."""
        return self._total

    def file(self, file_name: str) -> FileMetadata:
        for file_meta in self.files:
            if file_meta.file_name == file_name:
                return file_meta
        raise KeyError(f"no file {file_name!r} in collection {self.collection!r}")

    def global_index(self, file_name: str, sequence: int) -> int:
        """Bitmap index of packet ``sequence`` of ``file_name`` (Section IV-D ordering)."""
        file_meta = self.file(file_name)
        if not 0 <= sequence < file_meta.packet_count:
            raise IndexError(f"sequence {sequence} out of range for file {file_name!r}")
        return self._offsets[file_name] + sequence

    def locate(self, global_index: int) -> Tuple[str, int]:
        """Inverse of :meth:`global_index`: map a bitmap index to (file, sequence)."""
        if not 0 <= global_index < self._total:
            raise IndexError(f"global index {global_index} out of range (total {self._total})")
        for file_meta in self.files:
            offset = self._offsets[file_meta.file_name]
            if offset <= global_index < offset + file_meta.packet_count:
                return file_meta.file_name, global_index - offset
        raise IndexError(global_index)  # pragma: no cover - unreachable

    def packet_name(self, global_index: int) -> Name:
        """NDN name of the packet at ``global_index`` (memoized; names are hot)."""
        name = self._name_of_index.get(global_index)
        if name is None:
            file_name, sequence = self.locate(global_index)
            name = DapesNamespace.packet_name(self.collection, file_name, sequence)
            self._name_of_index[global_index] = name
        return name

    def packet_index_of(self, name) -> Optional[int]:
        """Bitmap index of a packet name, or ``None`` if it does not belong here."""
        try:
            return self._index_of_name[name]
        except KeyError:
            pass
        except TypeError:
            return self._packet_index_of_uncached(name)  # unhashable NameLike
        index = self._packet_index_of_uncached(name)
        if len(self._index_of_name) < 4 * self._total + 1024:
            self._index_of_name[name] = index
        return index

    def _packet_index_of_uncached(self, name) -> Optional[int]:
        parsed = DapesNamespace.parse_packet_name(name)
        if parsed is None or parsed.collection != self.collection:
            return None
        try:
            return self.global_index(parsed.file_name, parsed.sequence)
        except (KeyError, IndexError):
            return None

    # ------------------------------------------------------------- integrity
    def verify_packet(self, global_index: int, content: bytes) -> Optional[bool]:
        """Verify one packet's integrity.

        Returns ``True``/``False`` for the digest format.  For the Merkle
        format per-packet verification is not possible until the whole file
        is present, so ``None`` ("undecided") is returned — use
        :meth:`verify_file` once every packet of the file has arrived.
        """
        file_name, sequence = self.locate(global_index)
        file_meta = self.file(file_name)
        if self.format is MetadataFormat.DIGEST:
            return sha256_hex(content) == file_meta.packet_digests[sequence]
        return None

    def verify_file(self, file_name: str, contents: Sequence[bytes]) -> bool:
        """Verify a whole file's integrity (both formats)."""
        file_meta = self.file(file_name)
        if len(contents) != file_meta.packet_count:
            return False
        if self.format is MetadataFormat.DIGEST:
            return all(
                sha256_hex(content) == digest
                for content, digest in zip(contents, file_meta.packet_digests)
            )
        return MerkleTree.root_of(list(contents)) == file_meta.merkle_root

    # -------------------------------------------------------------- encoding
    def encode(self) -> bytes:
        """Serialise the metadata content (the bytes that get signed)."""
        payload = {
            "collection": self.collection,
            "format": self.format.value,
            "producer": self.producer,
            "packet_size": self.packet_size,
            "files": [
                {
                    "file_name": file_meta.file_name,
                    "packet_count": file_meta.packet_count,
                    "packet_digests": file_meta.packet_digests,
                    "merkle_root": file_meta.merkle_root,
                }
                for file_meta in self.files
            ],
        }
        return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")

    @classmethod
    def decode(cls, payload: bytes) -> "CollectionMetadata":
        """Inverse of :meth:`encode`."""
        parsed = json.loads(payload.decode("utf-8"))
        files = [
            FileMetadata(
                file_name=item["file_name"],
                packet_count=item["packet_count"],
                packet_digests=item.get("packet_digests") or [],
                merkle_root=item.get("merkle_root"),
            )
            for item in parsed["files"]
        ]
        return cls(
            collection=parsed["collection"],
            files=files,
            format=MetadataFormat(parsed["format"]),
            producer=parsed["producer"],
            packet_size=parsed["packet_size"],
        )

    @property
    def digest(self) -> str:
        """Digest of the encoded metadata, used in the metadata name."""
        return sha256_hex(self.encode())[:16]

    @property
    def wire_size(self) -> int:
        """Size of the encoded metadata in bytes.

        Cached: the metadata is immutable and this is sampled by every
        peer's periodic state-size accounting, which used to re-encode the
        whole metadata (all per-packet digests) each time.
        """
        size = self._wire_size_cache
        if size is None:
            size = self._wire_size_cache = len(self.encode())
        return size

    def name(self, segment: Optional[int] = None) -> Name:
        """The metadata's NDN name (optionally of one segment)."""
        return DapesNamespace.metadata_name(self.collection, self.digest, segment)


def build_metadata(
    collection: str,
    file_packets: Sequence[Tuple[str, Sequence[bytes]]],
    metadata_format: MetadataFormat | str,
    producer: str,
    packet_size: int,
) -> CollectionMetadata:
    """Build metadata from the actual packet contents of every file.

    ``file_packets`` is an ordered sequence of ``(file_name, [packet bytes])``
    pairs; the order defines the bitmap ordering.
    """
    metadata_format = MetadataFormat(metadata_format)
    files: List[FileMetadata] = []
    for file_name, packets in file_packets:
        packets = list(packets)
        if not packets:
            raise ValueError(f"file {file_name!r} has no packets")
        if metadata_format is MetadataFormat.DIGEST:
            files.append(
                FileMetadata(
                    file_name=file_name,
                    packet_count=len(packets),
                    packet_digests=[sha256_hex(packet) for packet in packets],
                )
            )
        else:
            files.append(
                FileMetadata(
                    file_name=file_name,
                    packet_count=len(packets),
                    merkle_root=MerkleTree.root_of(packets),
                )
            )
    return CollectionMetadata(
        collection=collection,
        files=files,
        format=metadata_format,
        producer=producer,
        packet_size=packet_size,
    )
