"""Rarest-Piece-First data-fetching strategies (Section IV-E).

Two flavours are provided, both variants of BitTorrent's RPF adapted to
dynamic off-the-grid communication:

* **Local-neighborhood RPF** — rarity of a packet is the number of peers in
  the *current* neighbourhood whose bitmap shows the packet as missing.  The
  ranking is rebuilt from the bitmaps received during the current encounter
  and expires when the encounter ends; no long-term state is kept.
* **Encounter-based RPF** — rarity is estimated over the bitmaps of the last
  ``history`` encountered peers (swarm-wide estimate), which requires peers
  to keep state across encounters.

Both support starting the download at a random packet instead of the first
one, which increases the diversity of disseminated data (Fig. 9a).

The component is deliberately generic: any object implementing
:class:`FetchStrategy` can be plugged into a peer.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from collections import OrderedDict
from typing import Dict, Iterable, List, Optional, Sequence

from repro.core.bitmap import Bitmap


class FetchStrategy(ABC):
    """Decides which missing packets to request, and in which order."""

    def __init__(self, random_start: bool = True, rng: Optional[random.Random] = None):
        self.random_start = random_start
        self._rng = rng if rng is not None else random.Random(0)
        self._start_offset: Optional[int] = None

    # ------------------------------------------------------------------ API
    @abstractmethod
    def observe_bitmap(self, peer_id: str, bitmap: Bitmap, now: float) -> None:
        """Record a bitmap advertisement received from ``peer_id``."""

    @abstractmethod
    def forget_peer(self, peer_id: str) -> None:
        """Remove a disconnected peer's contribution (if the flavour keeps any)."""

    @abstractmethod
    def reset_encounter(self) -> None:
        """Called when the peer's neighbourhood empties (encounter over)."""

    @abstractmethod
    def known_bitmaps(self) -> List[Bitmap]:
        """The bitmaps currently contributing to rarity estimation."""

    def select(self, own: Bitmap, count: int, exclude: Iterable[int] = ()) -> List[int]:
        """Pick up to ``count`` missing packet indices to request next.

        ``exclude`` lists indices that already have an outstanding Interest.
        Packets are ordered by decreasing rarity; ties are broken by the
        (possibly rotated) sequence order so that peers that start at a
        random packet naturally spread over the collection.
        """
        if count <= 0:
            return []
        excluded = set(exclude)
        if excluded:
            missing = [index for index in own.missing() if index not in excluded]
        else:
            missing = own.missing()
        if not missing:
            return []
        bitmaps = self.known_bitmaps()
        size = own.size
        offset = self._start(size)
        if not bitmaps:
            # No knowledge yet: sequential from the start offset.
            if count == 1:
                # min() picks the first minimum in iteration order, exactly
                # like a stable sort's head — without sorting everything.
                return [min(missing, key=lambda index: (index - offset) % size)]
            return sorted(missing, key=lambda index: (index - offset) % size)[:count]
        # Rarity for every index in one pass over the bitmaps' set bits,
        # rather than len(missing) * len(bitmaps) Bitmap.get calls.  The key
        # is unchanged: rarity = len(bitmaps) - presence.
        presence = Bitmap.presence_counts(size, bitmaps)
        total = len(bitmaps)
        key = lambda index: (presence[index] - total, (index - offset) % size)  # noqa: E731
        if count == 1:
            return [min(missing, key=key)]
        return sorted(missing, key=key)[:count]

    def rarity_of(self, index: int) -> int:
        """Current rarity estimate of packet ``index``."""
        return Bitmap.rarity(index, self.known_bitmaps())

    # ------------------------------------------------------------- internals
    def _start(self, size: int) -> int:
        if not self.random_start:
            return 0
        if self._start_offset is None or self._start_offset >= size:
            self._start_offset = self._rng.randrange(size) if size else 0
        return self._start_offset


class LocalNeighborhoodRpf(FetchStrategy):
    """RPF across the peers currently within communication range."""

    def __init__(self, random_start: bool = True, rng: Optional[random.Random] = None):
        super().__init__(random_start=random_start, rng=rng)
        self._neighborhood: Dict[str, Bitmap] = {}

    def observe_bitmap(self, peer_id: str, bitmap: Bitmap, now: float) -> None:
        self._neighborhood[peer_id] = bitmap

    def forget_peer(self, peer_id: str) -> None:
        self._neighborhood.pop(peer_id, None)

    def reset_encounter(self) -> None:
        # The per-encounter list expires when peers disconnect: no long-term state.
        self._neighborhood.clear()

    def known_bitmaps(self) -> List[Bitmap]:
        return list(self._neighborhood.values())

    @property
    def neighborhood_size(self) -> int:
        return len(self._neighborhood)


class EncounterBasedRpf(FetchStrategy):
    """RPF based on the history of encountered peers in the swarm."""

    def __init__(
        self,
        history: int = 20,
        random_start: bool = True,
        rng: Optional[random.Random] = None,
    ):
        super().__init__(random_start=random_start, rng=rng)
        if history < 1:
            raise ValueError("history must be >= 1")
        self.history = history
        self._encounters: "OrderedDict[str, Bitmap]" = OrderedDict()

    def observe_bitmap(self, peer_id: str, bitmap: Bitmap, now: float) -> None:
        # A repeat encounter updates the stored bitmap and refreshes recency.
        if peer_id in self._encounters:
            self._encounters.pop(peer_id)
        self._encounters[peer_id] = bitmap
        while len(self._encounters) > self.history:
            self._encounters.popitem(last=False)

    def forget_peer(self, peer_id: str) -> None:
        # Disconnection does not erase history: that is the point of this flavour.
        return None

    def reset_encounter(self) -> None:
        # History persists across encounters.
        return None

    def known_bitmaps(self) -> List[Bitmap]:
        return list(self._encounters.values())

    @property
    def remembered_peers(self) -> List[str]:
        return list(self._encounters)

    @property
    def state_size_bytes(self) -> int:
        """Memory used by the encounter history (Table I proxy)."""
        return sum(bitmap.wire_size for bitmap in self._encounters.values())


def make_fetch_strategy(
    name: str,
    random_start: bool = True,
    history: int = 20,
    rng: Optional[random.Random] = None,
) -> FetchStrategy:
    """Factory used by :class:`~repro.core.config.DapesConfig.rpf_strategy`."""
    if name == "local":
        return LocalNeighborhoodRpf(random_start=random_start, rng=rng)
    if name == "encounter":
        return EncounterBasedRpf(history=history, random_start=random_start, rng=rng)
    raise ValueError(f"unknown RPF strategy {name!r} (expected 'local' or 'encounter')")
