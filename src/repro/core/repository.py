"""Stationary data repositories.

The paper's scenarios deploy "repos" at fixed locations (e.g. a rest area) to
enhance data availability: they collect every collection they hear about and
serve it back to passing peers.  A repository is a DAPES peer configured
with ``interested_in_all=True`` and, typically, a larger content store.
"""

from __future__ import annotations

from typing import Optional

from repro.core.config import DapesConfig
from repro.core.peer import DapesPeer


class RepositoryPeer(DapesPeer):
    """A stationary peer that downloads and serves every collection it discovers."""

    def __init__(self, *args, **kwargs):
        config: Optional[DapesConfig] = kwargs.get("config")
        if config is None:
            config = DapesConfig()
        kwargs["config"] = config.with_overrides(interested_in_all=True)
        super().__init__(*args, **kwargs)

    @property
    def collections_served(self) -> int:
        """Number of collections the repository currently holds (fully or partially)."""
        return sum(
            1
            for session in self.sessions.values()
            if session.store is not None and session.store.bitmap.count() > 0
        )
