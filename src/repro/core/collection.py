"""File collections, packetisation and the per-peer packet store.

A producer groups individual files into a *collection*, segments each file
into fixed-size network-layer packets, signs every packet, and generates the
signed collection metadata.  Downloading peers keep a :class:`PacketStore`
per collection: the metadata, a bitmap of which packets they hold, and the
packets themselves.

Large simulated files do not materialise their full content: each packet
carries small deterministic *synthetic content* (a function of its name) and
an explicit wire-size override equal to the configured packet size, so
digests and Merkle roots are real while memory stays bounded.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.crypto.keys import KeyPair
from repro.crypto.signing import sign
from repro.ndn.name import Name
from repro.ndn.packet import Data
from repro.core.metadata import CollectionMetadata, MetadataFormat, build_metadata
from repro.core.namespace import DapesNamespace


def synthetic_packet_content(packet_name: Name) -> bytes:
    """Deterministic stand-in content for a modelled (not materialised) packet."""
    return f"content-of:{packet_name}".encode("utf-8")


@dataclass
class FileSpec:
    """One file to be shared: either real content or a modelled size."""

    name: str
    size_bytes: int = 0
    content: Optional[bytes] = None

    def __post_init__(self) -> None:
        if "/" in self.name:
            raise ValueError("file names must be a single name component (no '/')")
        if self.content is not None:
            self.size_bytes = len(self.content)
        if self.size_bytes <= 0:
            raise ValueError(f"file {self.name!r} must have positive size")

    def packet_count(self, packet_size: int) -> int:
        """Number of packets the file splits into."""
        return max(1, -(-self.size_bytes // packet_size))

    def packet_payload(self, index: int, packet_size: int) -> Optional[bytes]:
        """Real packet payload when content was provided, otherwise ``None``."""
        if self.content is None:
            return None
        start = index * packet_size
        return self.content[start:start + packet_size]


class FileCollection:
    """A named collection of files, as published by its producer."""

    def __init__(self, name: Name, files: Sequence[FileSpec], packet_size: int, producer: str):
        if not files:
            raise ValueError("a collection needs at least one file")
        if packet_size <= 0:
            raise ValueError("packet_size must be positive")
        self.name = Name(name)
        self.files = list(files)
        self.packet_size = packet_size
        self.producer = producer
        seen = set()
        for spec in self.files:
            if spec.name in seen:
                raise ValueError(f"duplicate file name {spec.name!r} in collection")
            seen.add(spec.name)

    # ------------------------------------------------------------ structure
    @property
    def collection_id(self) -> str:
        """The single name component identifying the collection."""
        return self.name[0]

    @property
    def total_packets(self) -> int:
        return sum(spec.packet_count(self.packet_size) for spec in self.files)

    @property
    def total_bytes(self) -> int:
        return sum(spec.size_bytes for spec in self.files)

    def packet_contents(self) -> List[Tuple[str, List[bytes]]]:
        """Per-file packet payloads (synthetic for modelled files)."""
        result: List[Tuple[str, List[bytes]]] = []
        for spec in self.files:
            packets: List[bytes] = []
            for index in range(spec.packet_count(self.packet_size)):
                payload = spec.packet_payload(index, self.packet_size)
                if payload is None:
                    payload = synthetic_packet_content(
                        DapesNamespace.packet_name(self.name, spec.name, index)
                    )
                packets.append(payload)
            result.append((spec.name, packets))
        return result

    # -------------------------------------------------------------- metadata
    def build_metadata(self, metadata_format: MetadataFormat | str) -> CollectionMetadata:
        """Generate the collection metadata in the requested format."""
        return build_metadata(
            collection=self.collection_id,
            file_packets=self.packet_contents(),
            metadata_format=metadata_format,
            producer=self.producer,
            packet_size=self.packet_size,
        )

    # --------------------------------------------------------------- packets
    def packet_payload(self, metadata: CollectionMetadata, global_index: int) -> bytes:
        """Payload bytes of the packet at ``global_index``."""
        file_name, sequence = metadata.locate(global_index)
        for spec in self.files:
            if spec.name == file_name:
                payload = spec.packet_payload(sequence, self.packet_size)
                if payload is None:
                    payload = synthetic_packet_content(metadata.packet_name(global_index))
                return payload
        raise KeyError(file_name)

    def build_packet(
        self, metadata: CollectionMetadata, global_index: int, key: KeyPair
    ) -> Data:
        """Build and sign the Data packet at ``global_index``.

        When the file content is modelled rather than materialised, the Data
        carries the synthetic payload but reports the configured packet size
        on the wire (``content_size_override``).
        """
        name = metadata.packet_name(global_index)
        payload = self.packet_payload(metadata, global_index)
        file_name, sequence = metadata.locate(global_index)
        spec = next(s for s in self.files if s.name == file_name)
        override = None
        if spec.content is None:
            last_index = spec.packet_count(self.packet_size) - 1
            if sequence < last_index:
                override = self.packet_size
            else:
                override = spec.size_bytes - self.packet_size * last_index or self.packet_size
        data = Data(
            name=name,
            content=payload,
            content_size_override=override,
            signature=sign(str(name), payload, key),
        )
        return data


class CollectionBuilder:
    """Fluent builder used by producers (the DAPES application's "create collection")."""

    def __init__(self, label: str, timestamp: int, packet_size: int = 1024, producer: str = ""):
        self._label = label
        self._timestamp = timestamp
        self._packet_size = packet_size
        self._producer = producer
        self._files: List[FileSpec] = []

    def add_file(self, name: str, size_bytes: int = 0, content: Optional[bytes] = None) -> "CollectionBuilder":
        """Add one file, either with real ``content`` or a modelled ``size_bytes``."""
        self._files.append(FileSpec(name=name, size_bytes=size_bytes, content=content))
        return self

    def build(self) -> FileCollection:
        """Create the collection."""
        name = DapesNamespace.collection_name(self._label, self._timestamp)
        return FileCollection(
            name=name,
            files=self._files,
            packet_size=self._packet_size,
            producer=self._producer,
        )


@dataclass
class PacketStore:
    """A downloading peer's per-collection state: bitmap + received packets."""

    metadata: CollectionMetadata
    packets: Dict[int, Data] = field(default_factory=dict)
    unverified: Dict[int, Data] = field(default_factory=dict)
    completion_time: Optional[float] = None

    def __post_init__(self) -> None:
        from repro.core.bitmap import Bitmap  # local import to avoid a cycle

        self.bitmap = Bitmap(self.metadata.total_packets)

    # --------------------------------------------------------------- queries
    def has(self, global_index: int) -> bool:
        return self.bitmap.get(global_index)

    def packet(self, global_index: int) -> Optional[Data]:
        return self.packets.get(global_index)

    def is_complete(self) -> bool:
        return self.bitmap.is_complete()

    @property
    def missing(self) -> List[int]:
        return self.bitmap.missing()

    # -------------------------------------------------------------- mutation
    def add_packet(self, data: Data, now: float = 0.0) -> bool:
        """Store a received packet after integrity verification.

        Returns ``True`` if the packet was accepted (or already present).
        Digest-format metadata verifies immediately; Merkle-format packets
        are accepted provisionally and re-checked per file once the file is
        complete (rejected packets of a corrupt file are dropped again).
        """
        index = self.metadata.packet_index_of(data.name)
        if index is None:
            return False
        if self.bitmap.get(index):
            return True
        verdict = self.metadata.verify_packet(index, data.content)
        if verdict is False:
            return False
        self.packets[index] = data
        self.bitmap.set(index)
        if verdict is None:
            self.unverified[index] = data
            self._maybe_verify_file(index)
        if self.is_complete() and self.completion_time is None:
            self.completion_time = now
        return True

    def mark_all_present(self, builder: FileCollection, key: KeyPair) -> None:
        """Populate the store with every packet (producer / preloaded repository)."""
        for index in range(self.metadata.total_packets):
            data = builder.build_packet(self.metadata, index, key)
            self.packets[index] = data
            self.bitmap.set(index)
        self.completion_time = 0.0

    def _maybe_verify_file(self, touched_index: int) -> None:
        file_name, _ = self.metadata.locate(touched_index)
        file_meta = self.metadata.file(file_name)
        base = self.metadata.global_index(file_name, 0)
        indices = range(base, base + file_meta.packet_count)
        if not all(self.bitmap.get(i) for i in indices):
            return
        contents = [self.packets[i].content for i in indices]
        if self.metadata.verify_file(file_name, contents):
            for i in indices:
                self.unverified.pop(i, None)
        else:
            # The whole file failed verification: drop the unverified packets
            # so they are re-fetched.
            for i in indices:
                if i in self.unverified:
                    self.unverified.pop(i)
                    self.packets.pop(i, None)
                    self.bitmap.set(i, False)

    # ------------------------------------------------------------ accounting
    #: Book-keeping bytes per stored packet (name reference + index entry).
    PER_PACKET_STATE_BYTES = 48

    @property
    def state_size_bytes(self) -> int:
        """Approximate *protocol* memory held by this store (Table I memory proxy).

        Packet payloads are excluded: the DAPES application writes received
        file data to storage, so what stays resident is the per-packet
        book-keeping, the bitmap and the metadata.
        """
        return (
            self.PER_PACKET_STATE_BYTES * len(self.packets)
            + self.bitmap.wire_size
            + self.metadata.wire_size
        )

    def progress(self) -> float:
        """Download progress in [0, 1]."""
        total = self.metadata.total_packets
        return self.bitmap.count() / total if total else 1.0
