"""DAPES protocol configuration.

Defaults match the paper's simulation setup (Section VI-B): 1 KB packets, a
20 ms transmission window, local-neighborhood RPF, interleaved bitmap/data
exchange, bitmaps fetched from every peer in range, PEBA enabled, and a 20 %
forwarding probability for nodes with no knowledge about the requested data.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional


@dataclass
class DapesConfig:
    """Tunable parameters of a DAPES peer.

    Attributes
    ----------
    packet_size:
        Size of each file-collection data packet in bytes (paper: 1 KB).
    transmission_window:
        Default transmission window in seconds; data Interests and
        non-prioritized transmissions pick a random delay inside it
        (paper: 20 ms).
    discovery_period_active / discovery_period_idle:
        Period of discovery Interests when peers have recently been
        encountered / when the peer is isolated (adaptive discovery,
        Section IV-B).
    discovery_recent_window:
        A neighbour heard within this many seconds counts as "recent" for
        the adaptive discovery period.
    metadata_format:
        ``"digest"`` for the packet-digest-based format, ``"merkle"`` for
        the Merkle-tree-based format (Section IV-C).
    rpf_strategy:
        ``"local"`` (local-neighborhood RPF) or ``"encounter"``
        (encounter-based RPF), Section IV-E.
    random_start:
        Start downloading at a random packet of the collection rather than
        the first one (the "random packet" curves of Fig. 9a).
    bitmap_exchange:
        ``"interleaved"`` to interleave bitmap and data exchanges, or
        ``"before"`` to fetch bitmaps first and only then download data
        (Section IV-D, Figs. 9c/9d).
    max_bitmaps:
        Number of bitmaps to fetch per encounter before (or while)
        downloading; ``None`` means every peer in range ("all bitmaps").
    peba_enabled:
        Use PEBA for bitmap transmission collision mitigation; when disabled
        peers use the purely linear prioritization (Section IV-F, Fig. 9b).
    peba_slot_duration:
        Duration of one PEBA transmission slot in seconds.
    peba_initial_slots / peba_priority_groups / peba_max_slots:
        Slot-table parameters of PEBA.
    multi_hop:
        Whether intermediate nodes may forward Interests over multiple hops
        at all (the "single-hop" curves of Figs. 9g/9h disable this).
    forwarding_probability:
        Probability that a pure forwarder or an intermediate DAPES node with
        no knowledge about the requested data forwards a received Interest
        (paper default: 20 %).
    interest_lifetime:
        NDN Interest lifetime in seconds.
    data_retransmit_timeout:
        Application-level retransmission timeout for data Interests.  Peers
        re-express an unanswered Interest after this long (with exponential
        backoff) instead of waiting for the full Interest lifetime, the way
        NDN consumer applications use RTT-based retransmission timers.
    pipeline_size:
        Maximum number of outstanding data Interests per peer.
    retransmission_limit:
        How many times a data Interest is re-expressed while neighbours are
        still around.
    encounter_history:
        Number of encountered-peer bitmaps remembered by encounter-based RPF.
    neighbor_timeout:
        Seconds after which a silent neighbour is considered gone (encounter
        over, local-neighborhood RPF state expires).
    knowledge_timeout:
        Lifetime of entries in the intermediate-node knowledge store
        (Section V-B: "short-lived knowledge").
    interested_in_all:
        Download every collection discovered (used by repositories); when
        ``False`` the peer only downloads collections it was told to join.
    retransmit_jitter:
        Resilience hardening: multiply each data-Interest retransmission
        timeout by ``1 + U(0, retransmit_jitter)`` so synchronized
        retransmissions desynchronize under sustained loss (jittered
        exponential backoff).  ``0.0`` (the default) draws nothing and is
        byte-identical to the pre-hardening behaviour.
    dark_neighbor_fallback:
        Resilience hardening: when a neighbour goes dark mid-transfer (its
        bitmap exchange times out), immediately forget it and deterministically
        fall back to the remaining active neighbours instead of waiting for
        the neighbour timeout.  Off by default (byte-identical when off).
    """

    packet_size: int = 1024
    transmission_window: float = 0.020
    discovery_period_active: float = 2.0
    discovery_period_idle: float = 8.0
    discovery_recent_window: float = 10.0
    metadata_format: str = "merkle"
    rpf_strategy: str = "local"
    random_start: bool = True
    bitmap_exchange: str = "interleaved"
    max_bitmaps: Optional[int] = None
    peba_enabled: bool = True
    peba_slot_duration: float = 0.004
    peba_initial_slots: int = 2
    peba_priority_groups: int = 2
    peba_max_slots: int = 64
    multi_hop: bool = True
    forwarding_probability: float = 0.2
    interest_lifetime: float = 2.0
    data_retransmit_timeout: float = 0.25
    pipeline_size: int = 4
    retransmission_limit: int = 8
    encounter_history: int = 20
    neighbor_timeout: float = 6.0
    knowledge_timeout: float = 15.0
    interested_in_all: bool = False
    retransmit_jitter: float = 0.0
    dark_neighbor_fallback: bool = False

    def __post_init__(self) -> None:
        if self.packet_size <= 0:
            raise ValueError("packet_size must be positive")
        if self.metadata_format not in ("digest", "merkle"):
            raise ValueError("metadata_format must be 'digest' or 'merkle'")
        if self.rpf_strategy not in ("local", "encounter"):
            raise ValueError("rpf_strategy must be 'local' or 'encounter'")
        if self.bitmap_exchange not in ("interleaved", "before"):
            raise ValueError("bitmap_exchange must be 'interleaved' or 'before'")
        if not 0.0 <= self.forwarding_probability <= 1.0:
            raise ValueError("forwarding_probability must be within [0, 1]")
        if self.max_bitmaps is not None and self.max_bitmaps < 1:
            raise ValueError("max_bitmaps must be None or >= 1")
        if self.pipeline_size < 1:
            raise ValueError("pipeline_size must be >= 1")
        if not 0.0 <= self.retransmit_jitter <= 1.0:
            raise ValueError("retransmit_jitter must be within [0, 1]")

    def with_overrides(self, **overrides) -> "DapesConfig":
        """Return a copy of this config with ``overrides`` applied."""
        return replace(self, **overrides)

    @classmethod
    def paper_defaults(cls) -> "DapesConfig":
        """The configuration used by the paper's simulation study."""
        return cls()
