"""Pure forwarders (Section V-A).

A pure forwarder is a node that does *not* run the DAPES application — it
only has an NDN forwarder.  It caches overheard Data in its Content Store
(serving future requests), probabilistically re-broadcasts received
Interests after a random wait, and suppresses names that recently failed to
bring Data back.
"""

from __future__ import annotations

from typing import Optional

from repro.ndn.face import BroadcastFace
from repro.ndn.forwarder import Forwarder, ForwarderConfig
from repro.ndn.strategy import ProbabilisticSuppressionStrategy
from repro.simulation import Simulator
from repro.wireless.medium import WirelessMedium
from repro.wireless.radio import Radio
from repro.core.namespace import DapesNamespace


class PureForwarderNode:
    """An NDN-only node that opportunistically relays and caches."""

    def __init__(
        self,
        sim: Simulator,
        medium: WirelessMedium,
        node_id: str,
        forward_probability: float = 0.2,
        suppression_timeout: float = 10.0,
        cs_capacity: int = 4096,
        wifi_range: Optional[float] = None,
    ):
        self.sim = sim
        self.node_id = node_id
        self.radio = Radio(sim, medium, node_id, wifi_range=wifi_range)
        self.strategy = ProbabilisticSuppressionStrategy(
            forward_probability=forward_probability,
            suppression_timeout=suppression_timeout,
        )
        self.forwarder = Forwarder(
            sim,
            node_id,
            config=ForwarderConfig(cs_capacity=cs_capacity, cache_unsolicited=True),
            strategy=self.strategy,
        )
        self.broadcast_face = self.forwarder.add_face(
            BroadcastFace(
                self.radio,
                protocol="dapes",
                classify=lambda packet: DapesNamespace.classify(packet.name),
            )
        )

    @property
    def forward_probability(self) -> float:
        return self.strategy.forward_probability

    @forward_probability.setter
    def forward_probability(self, value: float) -> None:
        self.strategy.forward_probability = value

    @property
    def cached_packets(self) -> int:
        """Number of Data packets currently cached."""
        return len(self.forwarder.cs)

    @property
    def state_size_bytes(self) -> int:
        return self.forwarder.state_size_bytes
