"""Adaptive forwarding/suppression for nodes running DAPES (Section V-B).

The :class:`DapesForwardingStrategy` is installed on every node that runs the
DAPES application — downloading peers, repositories and intermediate nodes
that merely relay.  It always bridges the wireless face and the application
face (so the local application sees and can answer Interests), and, when
multi-hop communication is enabled, additionally decides whether to
*re-broadcast* Interests received over the air:

* Interests for data the local application itself holds are never
  re-broadcast (the application will answer).
* Interests for data that, according to the node's short-lived knowledge,
  some other neighbour holds are forwarded — they are likely to bring the
  data back.
* Interests for collections the node knows nothing about fall back to the
  pure-forwarder behaviour: forward with a configurable probability after a
  random wait, and suppress a name prefix for a while when a forwarded
  Interest failed to bring data back.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.core.knowledge import NeighborKnowledge
from repro.core.namespace import DapesNamespace
from repro.ndn.face import AppFace, BroadcastFace
from repro.ndn.packet import Data, Interest
from repro.ndn.strategy import ForwardingStrategy

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.peer import DapesPeer


class DapesForwardingStrategy(ForwardingStrategy):
    """Forwarding strategy of a node running the DAPES application."""

    def __init__(
        self,
        peer: Optional["DapesPeer"] = None,
        knowledge: Optional[NeighborKnowledge] = None,
        multi_hop: bool = True,
        forwarding_probability: float = 0.2,
        min_wait: float = 0.005,
        max_wait: float = 0.050,
        suppression_timeout: float = 10.0,
    ):
        super().__init__()
        self.peer = peer
        self.knowledge = knowledge if knowledge is not None else NeighborKnowledge()
        self.multi_hop = multi_hop
        self.forwarding_probability = forwarding_probability
        self.min_wait = min_wait
        self.max_wait = max_wait
        self.suppression_timeout = suppression_timeout
        self._suppressed_until: dict = {}
        self._rng = None
        self.interests_rebroadcast = 0
        self.interests_suppressed = 0
        self.rebroadcasts_satisfied = 0
        self._face_roles_version = -1
        self._app_faces_cache: list[int] = []
        self._broadcast_faces_cache: list[int] = []

    def attach(self, forwarder) -> None:
        super().attach(forwarder)
        self._rng = forwarder.sim.rng(f"strategy.dapes.{forwarder.node_id}")
        self._face_roles_version = -1

    # ------------------------------------------------------------ face roles
    def _refresh_face_roles(self) -> None:
        # Face-role lists are consulted on every Interest; rebuild them only
        # when the forwarder's face set actually changed.
        self._app_faces_cache = [
            face.face_id for face in self.forwarder.faces() if isinstance(face, AppFace)
        ]
        self._broadcast_faces_cache = [
            face.face_id for face in self.forwarder.faces() if isinstance(face, BroadcastFace)
        ]
        self._face_roles_version = self.forwarder.faces_version

    def _app_face_ids(self) -> list[int]:
        if self._face_roles_version != self.forwarder.faces_version:
            self._refresh_face_roles()
        return self._app_faces_cache

    def _broadcast_face_ids(self) -> list[int]:
        if self._face_roles_version != self.forwarder.faces_version:
            self._refresh_face_roles()
        return self._broadcast_faces_cache

    # ----------------------------------------------------------------- hooks
    def decide_interest_forwarding(self, interest, incoming_face_id, entry, is_new):
        incoming_face = self.forwarder.face(incoming_face_id)
        # Let the application observe everything heard on the air (knowledge building).
        if self.peer is not None and isinstance(incoming_face, BroadcastFace):
            self.peer.observe_interest(interest)

        decision = []
        if isinstance(incoming_face, AppFace):
            # The local application is requesting (or deliberately
            # retransmitting): put the Interest on the air.  The application
            # owns its retransmission policy, so aggregation does not apply
            # to its own face.
            decision.extend((face_id, 0.0) for face_id in self._broadcast_face_ids())
            return decision

        # Interest arrived over the air: it always reaches the local application...
        if is_new:
            decision.extend((face_id, 0.0) for face_id in self._app_face_ids())
        # ...and may additionally be re-broadcast for multi-hop reach.
        if self.multi_hop and (is_new or not entry.forwarded):
            rebroadcast_delay = self._rebroadcast_delay(interest)
            if rebroadcast_delay is not None:
                decision.extend((face_id, rebroadcast_delay) for face_id in self._broadcast_face_ids())
                self.interests_rebroadcast += 1
            else:
                self.interests_suppressed += 1
        return decision

    def on_data_received(self, data: Data, incoming_face_id: int) -> None:
        face = self.forwarder.face(incoming_face_id)
        if self.peer is not None and isinstance(face, BroadcastFace):
            self.peer.observe_data(data)
        self._suppressed_until.pop(self._suppression_key(data.name), None)

    def on_interest_expired(self, entry) -> None:
        if entry.forwarded:
            key = self._suppression_key(entry.name)
            self._suppressed_until[key] = self.forwarder.sim.now + self.suppression_timeout
        if self.peer is not None:
            self.peer.on_pit_expired(entry)

    def should_cache_unsolicited(self, data: Data) -> bool:
        # Overheard transmissions are cached so they can satisfy future requests.
        return True

    # -------------------------------------------------------------- decisions
    def _rebroadcast_delay(self, interest: Interest) -> Optional[float]:
        """Delay before re-broadcasting, or ``None`` to suppress."""
        if interest.hop_limit <= 1:
            return None
        name = interest.name
        now = self.forwarder.sim.now
        if self._is_suppressed(name):
            return None
        kind = DapesNamespace.classify(name)

        if kind == "collection-data":
            parsed = DapesNamespace.parse_packet_name(name)
            if parsed is None:
                return self._probabilistic_delay()
            if self.peer is not None and self.peer.has_packet(parsed.collection, name):
                return None  # the local application will answer
            index = self.peer.packet_index(parsed.collection, name) if self.peer else None
            if index is not None and self.knowledge.someone_has_packet(parsed.collection, index, now):
                # Some neighbour is known to hold the packet: forwarding is
                # likely to bring the data back (Section V-B, same collection).
                return self._random_wait()
            if index is not None and self.knowledge.data_recently_heard(parsed.collection, now, index):
                # The exact packet was recently heard nearby (it sits in
                # somebody's Content Store): forward.
                return self._random_wait()
            # No knowledge about the requested data: fall back to the pure
            # forwarders' probabilistic scheme (Section V-B, different
            # collection / no knowledge).
            return self._probabilistic_delay()

        if kind == "metadata":
            collection = DapesNamespace.metadata_collection(name)
            if self.peer is not None and self.peer.has_metadata(collection):
                return None
            if self.knowledge.knows_collection(collection, now):
                return self._random_wait()
            return self._probabilistic_delay()

        if kind == "bitmap":
            target = DapesNamespace.bitmap_target(name)
            if self.peer is not None and target == self.peer.node_id:
                return None  # addressed to us; the application answers
            collection = DapesNamespace.bitmap_collection(name)
            if self.knowledge.neighbor_bitmap(target, collection, now) is not None:
                return self._random_wait()
            return self._probabilistic_delay()

        # Discovery and anything else: purely probabilistic.
        return self._probabilistic_delay()

    def _probabilistic_delay(self) -> Optional[float]:
        if self._rng.random() < self.forwarding_probability:
            return self._random_wait()
        return None

    def _random_wait(self) -> float:
        return self._rng.uniform(self.min_wait, self.max_wait)

    # ------------------------------------------------------------ suppression
    def _suppression_key(self, name):
        # The key only ever meets this private dict, so the raw component
        # tuple works as well as a Name prefix (same hash/equality semantics)
        # without allocating a Name per heard frame.
        return name.components[:2]

    def _is_suppressed(self, name) -> bool:
        key = self._suppression_key(name)
        until = self._suppressed_until.get(key)
        if until is None:
            return False
        if until <= self.forwarder.sim.now:
            del self._suppressed_until[key]
            return False
        return True
