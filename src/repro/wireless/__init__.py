"""Wireless substrate: an IEEE 802.11b-like broadcast medium.

The paper's nodes communicate through IEEE 802.11b ad-hoc mode at 11 Mb/s
with a configurable WiFi range (20-100 m in the simulations, ~50 m in the
real-world experiments) and a 10 % loss rate.  This package models:

* a geometric unit-disk channel — a frame transmitted by a node is heard by
  every node within range at the moment of transmission;
* transmission delay proportional to frame size (plus per-frame PHY/MAC
  overhead);
* collisions — two receptions overlapping in time at the same receiver
  corrupt each other;
* independent Bernoulli frame loss on top of collisions;
* per-node and per-frame-kind transmission accounting, which is the source
  of the paper's "number of transmissions" (overhead) metric.
"""

from repro.wireless.channel import ChannelConfig
from repro.wireless.environment import Environment, Obstacle, segments_intersect
from repro.wireless.frames import Frame
from repro.wireless.medium import WirelessMedium
from repro.wireless.propagation import (
    LogDistancePropagation,
    ObstaclePropagation,
    PropagationModel,
    UnitDiskPropagation,
    available_propagation_models,
    build_propagation,
    register_propagation,
)
from repro.wireless.radio import Radio
from repro.wireless.sharded import (
    RegionPartition,
    ShardedNeighborIndex,
    partition_for_config,
)
from repro.wireless.spatial import (
    BruteForceNeighborIndex,
    GridNeighborIndex,
    NeighborIndex,
    build_neighbor_index,
)
from repro.wireless.stats import MediumStats, NodeRadioStats

__all__ = [
    "BruteForceNeighborIndex",
    "ChannelConfig",
    "Environment",
    "Frame",
    "GridNeighborIndex",
    "LogDistancePropagation",
    "MediumStats",
    "NeighborIndex",
    "NodeRadioStats",
    "Obstacle",
    "ObstaclePropagation",
    "PropagationModel",
    "Radio",
    "RegionPartition",
    "ShardedNeighborIndex",
    "UnitDiskPropagation",
    "WirelessMedium",
    "partition_for_config",
    "available_propagation_models",
    "build_neighbor_index",
    "build_propagation",
    "register_propagation",
    "segments_intersect",
]
