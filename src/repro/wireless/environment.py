"""Physical environments: obstacle geometry for propagation models.

An :class:`Environment` is the part of a scenario the *radio waves* care
about — buildings, walls, terrain edges — as opposed to the topology layer,
which decides where the nodes are.  Topologies emit an environment (see
:meth:`repro.experiments.topology.Topology.build_environment`) and the
wireless medium hands it to the configured propagation model; the
``obstacle`` model ray-tests links against it.

Geometry is deliberately minimal: axis-aligned rectangles (city blocks,
buildings) and free segments (stand-alone walls).  Everything is immutable
after construction so environments can be shared between trials and
snapshotted without defensive copies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

Segment = Tuple[float, float, float, float]  # (ax, ay, bx, by)


@dataclass(frozen=True)
class Obstacle:
    """An axis-aligned rectangular obstacle (a building, a city block)."""

    x0: float
    y0: float
    x1: float
    y1: float

    def __post_init__(self) -> None:
        if self.x1 <= self.x0 or self.y1 <= self.y0:
            raise ValueError(
                f"obstacle must have positive extent, got "
                f"({self.x0}, {self.y0})-({self.x1}, {self.y1})"
            )

    @property
    def walls(self) -> List[Segment]:
        """The four boundary segments of the rectangle."""
        x0, y0, x1, y1 = self.x0, self.y0, self.x1, self.y1
        return [
            (x0, y0, x1, y0),
            (x1, y0, x1, y1),
            (x1, y1, x0, y1),
            (x0, y1, x0, y0),
        ]

    def contains(self, x: float, y: float) -> bool:
        """Whether the point lies strictly inside the rectangle."""
        return self.x0 < x < self.x1 and self.y0 < y < self.y1


def _orient(ax: float, ay: float, bx: float, by: float, cx: float, cy: float) -> float:
    """Twice the signed area of triangle abc (>0 counter-clockwise)."""
    return (bx - ax) * (cy - ay) - (by - ay) * (cx - ax)


def _on_segment(ax: float, ay: float, bx: float, by: float, px: float, py: float) -> bool:
    """Whether collinear point p lies within segment ab's bounding box."""
    return (
        min(ax, bx) <= px <= max(ax, bx)
        and min(ay, by) <= py <= max(ay, by)
    )


def segments_intersect(
    px: float, py: float, qx: float, qy: float,
    ax: float, ay: float, bx: float, by: float,
) -> bool:
    """Whether segment p-q intersects segment a-b (touching counts)."""
    d1 = _orient(ax, ay, bx, by, px, py)
    d2 = _orient(ax, ay, bx, by, qx, qy)
    d3 = _orient(px, py, qx, qy, ax, ay)
    d4 = _orient(px, py, qx, qy, bx, by)
    if ((d1 > 0) != (d2 > 0)) and ((d3 > 0) != (d4 > 0)) and d1 != 0 != d2 and d3 != 0 != d4:
        return True  # proper crossing
    if d1 == 0 and _on_segment(ax, ay, bx, by, px, py):
        return True
    if d2 == 0 and _on_segment(ax, ay, bx, by, qx, qy):
        return True
    if d3 == 0 and _on_segment(px, py, qx, qy, ax, ay):
        return True
    if d4 == 0 and _on_segment(px, py, qx, qy, bx, by):
        return True
    return False


class Environment:
    """Immutable obstacle geometry a propagation model can ray-test against.

    Parameters
    ----------
    obstacles:
        Rectangular obstacles (:class:`Obstacle` instances or ``(x0, y0,
        x1, y1)`` tuples).
    walls:
        Free-standing wall segments as ``(ax, ay, bx, by)`` tuples.
    """

    __slots__ = ("obstacles", "_walls", "_boxes")

    def __init__(
        self,
        obstacles: Iterable[Obstacle | Tuple[float, float, float, float]] = (),
        walls: Iterable[Segment] = (),
    ):
        parsed: List[Obstacle] = []
        for obstacle in obstacles:
            if not isinstance(obstacle, Obstacle):
                obstacle = Obstacle(*obstacle)
            parsed.append(obstacle)
        self.obstacles: Tuple[Obstacle, ...] = tuple(parsed)
        segments: List[Segment] = []
        for obstacle in self.obstacles:
            segments.extend(obstacle.walls)
        segments.extend(tuple(wall) for wall in walls)
        self._walls: Tuple[Segment, ...] = tuple(segments)
        # Per-wall bounding boxes let occlusion checks reject most walls with
        # four comparisons instead of four orientation products.
        self._boxes: Tuple[Tuple[float, float, float, float], ...] = tuple(
            (min(ax, bx), min(ay, by), max(ax, bx), max(ay, by))
            for ax, ay, bx, by in segments
        )

    # ---------------------------------------------------------------- queries
    @property
    def walls(self) -> Tuple[Segment, ...]:
        """Every wall segment (obstacle boundaries plus free walls)."""
        return self._walls

    def __bool__(self) -> bool:
        return bool(self._walls)

    def occludes(self, ax: float, ay: float, bx: float, by: float) -> bool:
        """Whether the straight ray a-b crosses any wall segment."""
        ray_min_x = ax if ax < bx else bx
        ray_max_x = ax if ax > bx else bx
        ray_min_y = ay if ay < by else by
        ray_max_y = ay if ay > by else by
        walls = self._walls
        for index, (min_x, min_y, max_x, max_y) in enumerate(self._boxes):
            if (
                max_x < ray_min_x
                or min_x > ray_max_x
                or max_y < ray_min_y
                or min_y > ray_max_y
            ):
                continue
            wall = walls[index]
            if segments_intersect(ax, ay, bx, by, *wall):
                return True
        return False

    def contains(self, x: float, y: float) -> bool:
        """Whether the point lies strictly inside any rectangular obstacle."""
        return any(obstacle.contains(x, y) for obstacle in self.obstacles)

    def describe(self) -> str:
        """One-line human-readable summary (used by examples and the CLI)."""
        return f"Environment({len(self.obstacles)} obstacles, {len(self._walls)} walls)"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return self.describe()
