"""Link-layer frames carried by the wireless medium."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

_frame_ids = itertools.count(1)


@dataclass
class Frame:
    """A link-layer frame.

    ``payload`` carries whichever protocol object is being transmitted (an
    NDN Interest/Data, an IP packet, a routing update...).  ``destination``
    is a link-layer destination node id; ``None`` means link-layer broadcast.
    Even unicast frames are physically heard by every node in range — the
    receiving radio decides whether the frame is addressed to it or merely
    overheard, which is what lets DAPES intermediate nodes learn from
    overheard traffic.

    ``kind`` and ``protocol`` are free-form labels used only for accounting
    (the paper's per-protocol overhead breakdown).
    """

    sender: str
    payload: Any
    size_bytes: int
    kind: str
    protocol: str = ""
    destination: Optional[str] = None
    frame_id: int = field(default_factory=lambda: next(_frame_ids))

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError("size_bytes must be positive")

    @property
    def is_broadcast(self) -> bool:
        """Whether the frame is a link-layer broadcast."""
        return self.destination is None
