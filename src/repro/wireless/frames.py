"""Link-layer frames carried by the wireless medium."""

from __future__ import annotations

import itertools
from typing import Any, Optional

_frame_ids = itertools.count(1)


class Frame:
    """A link-layer frame.

    ``payload`` carries whichever protocol object is being transmitted (an
    NDN Interest/Data, an IP packet, a routing update...).  ``destination``
    is a link-layer destination node id; ``None`` means link-layer broadcast.
    Even unicast frames are physically heard by every node in range — the
    receiving radio decides whether the frame is addressed to it or merely
    overheard, which is what lets DAPES intermediate nodes learn from
    overheard traffic.

    ``kind`` and ``protocol`` are free-form labels used only for accounting
    (the paper's per-protocol overhead breakdown).

    A hand-written ``__slots__`` class rather than a dataclass: one Frame is
    allocated per transmission on the hottest path of the simulator.
    """

    __slots__ = ("sender", "payload", "size_bytes", "kind", "protocol", "destination", "frame_id")

    def __init__(
        self,
        sender: str,
        payload: Any,
        size_bytes: int,
        kind: str,
        protocol: str = "",
        destination: Optional[str] = None,
        frame_id: Optional[int] = None,
    ):
        if size_bytes <= 0:
            raise ValueError("size_bytes must be positive")
        self.sender = sender
        self.payload = payload
        self.size_bytes = size_bytes
        self.kind = kind
        self.protocol = protocol
        self.destination = destination
        self.frame_id = next(_frame_ids) if frame_id is None else frame_id

    @property
    def is_broadcast(self) -> bool:
        """Whether the frame is a link-layer broadcast."""
        return self.destination is None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        target = "broadcast" if self.destination is None else self.destination
        return f"Frame(#{self.frame_id} {self.sender}->{target} {self.kind} {self.size_bytes}B)"
