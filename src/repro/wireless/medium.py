"""The shared broadcast wireless medium.

A transmission by one radio is delivered, after its airtime, to every other
radio the configured propagation model deems reachable at the moment the
transmission starts.  Radio physics is pluggable
(:mod:`repro.wireless.propagation`): the medium queries the spatial index
out to the model's ``max_range`` and filters the candidates through
``link_quality``, which may also attach a per-link loss probability (e.g.
``log_distance`` fading) on top of the uniform Bernoulli loss.  The default
``unit_disk`` model reproduces the seed semantics byte-for-byte — every
node within ``wifi_range`` of the sender hears the frame — and, being
*trivial* (no per-link state), lets the medium skip link evaluation
entirely.  Two receptions that overlap in time at the same receiver corrupt
each other (both are dropped at that receiver), which is how the paper's
collision effects — and the benefit of PEBA — arise.

Three MAC-level realities are modelled explicitly because the protocols under
study depend on them:

* **per-sender serialization** — a node cannot transmit two frames at once;
  frames handed to the medium while the node is already transmitting are
  queued and sent back-to-back (plus a short inter-frame space), exactly
  like an 802.11 interface queue;
* **half-duplex operation** — a node that is transmitting cannot
  simultaneously receive; receptions overlapping its own transmissions are
  lost at that node;
* **carrier sensing (CSMA)** — a node defers its transmission (with a small
  random backoff) while it can hear another transmission in progress, up to
  a bounded number of deferrals.  Hidden terminals still collide, as in real
  802.11 ad-hoc networks.

Delivery scheduling has two modes (``ChannelConfig.delivery``):

* ``"batched"`` (default) — one completion event per *transmission* walks
  the receiver list at ``end_time``.  Per-receiver collision/half-duplex
  state lives in compact interval records created when the transmission
  begins, so corruption, CSMA busy-sensing, loss and ARQ semantics — and
  event ordering — are identical to per-receiver scheduling: the seed
  scheduler gave one transmission's reception events consecutive sequence
  numbers, so they always fired back-to-back with nothing interleaved, which
  is exactly what the batch loop reproduces.  ``Simulator.events_processed``
  still advances by one per reception so throughput accounting stays
  comparable across modes.
* ``"per_receiver"`` — the seed behaviour (one event per receiver), kept as
  the reference for the equivalence tests.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

import math
from repro.arrays import numpy_or_none, resolve_array_backend
from repro.mobility.base import MobilityModel
from repro.simulation import Simulator
from repro.wireless.channel import ChannelConfig
from repro.wireless.environment import Environment
from repro.wireless.frames import Frame
from repro.wireless.propagation import build_propagation
from repro.wireless.spatial import build_neighbor_index
from repro.wireless.stats import MediumStats

# Historical module-level defaults; the live values now come from
# ChannelConfig (unicast_retry_limit / unicast_retry_backoff /
# inter_frame_space) so fault specs can sweep them per run.
INTER_FRAME_SPACE = 0.00005  # 50 us, approximates DIFS + MAC processing
MAX_CSMA_DEFERRALS = 16      # give up sensing and transmit anyway after this many deferrals
UNICAST_RETRY_LIMIT = 3      # 802.11 link-layer ARQ retries for unicast frames
UNICAST_RETRY_BACKOFF = 0.002


class _Reception:
    """An in-flight reception interval at a particular receiver.

    A compact mutable record (no dataclass machinery, ``__slots__`` only):
    one exists per (receiver, in-flight frame) and they are created and
    destroyed on the hottest path of the simulator.
    """

    __slots__ = ("frame", "start_time", "end_time", "corrupted", "link_loss")

    def __init__(self, frame: Frame, start_time: float, end_time: float, link_loss: float = 0.0):
        self.frame = frame
        self.start_time = start_time
        self.end_time = end_time
        self.corrupted = False
        self.link_loss = link_loss


class _RetryState:
    """Link-layer ARQ state for one in-flight unicast frame."""

    __slots__ = ("sender", "destination", "retries")

    def __init__(self, sender: str, destination: str):
        self.sender = sender
        self.destination = destination
        self.retries = 0


class WirelessMedium:
    """The broadcast medium shared by all radios in a scenario."""

    def __init__(
        self,
        sim: Simulator,
        mobility: MobilityModel,
        config: Optional[ChannelConfig] = None,
        environment: Optional[Environment] = None,
    ):
        self.sim = sim
        self.mobility = mobility
        self.config = config if config is not None else ChannelConfig()
        self.environment = environment
        self.stats = MediumStats()
        self.propagation = build_propagation(
            self.config, sim=sim, environment=environment, mobility=mobility
        )
        # Trivial models (unit_disk) deliver to exactly the index candidates
        # with no per-link state, so the hot path can skip link evaluation —
        # this is the seed fast path, byte-identical by construction.
        self._trivial = self.propagation.trivial
        self._position_xy = mobility.position_xy
        # Array-native link evaluation: active when the resolved backend is
        # NumPy and the propagation model opts in via link_quality_array
        # (set back to None on the first opt-out so the check stays cheap).
        self._np = numpy_or_none()
        self._link_quality_array = (
            self.propagation.link_quality_array
            if self._np is not None
            and resolve_array_backend(self.config.array_backend) == "numpy"
            else None
        )
        self._positions_array = mobility.positions_array
        self._id_row: Optional[Dict[str, int]] = None
        self._id_row_order: Optional[Tuple[str, ...]] = None
        self._index = build_neighbor_index(
            self.config, mobility, max_range=self.config.max_range()
        )
        self._radios: Dict[str, "Radio"] = {}
        self._receptions: Dict[str, List[_Reception]] = {}
        self._busy_until: Dict[str, float] = {}
        self._loss_rng = sim.rng("wireless.loss")
        self._backoff_rng = sim.rng("wireless.csma")
        # Per-link loss draws (propagation models only) use their own named
        # stream so the seed "wireless.loss" draw sequence stays untouched.
        self._link_rng = sim.rng("wireless.link")
        self._unicast_retries: Dict[int, _RetryState] = {}
        # Per-node index of live ARQ frame ids (as sender or destination) so
        # detach drops exactly that node's entries instead of rebuilding the
        # whole retry dict.
        self._retry_index: Dict[str, Set[int]] = {}
        self._batched = self.config.delivery == "batched"
        self._node_ids_cache: Optional[Tuple[str, ...]] = None
        # MAC timing/ARQ knobs (hoisted from module constants onto the
        # channel config; defaults are byte-identical to the constants).
        self._inter_frame_space = self.config.inter_frame_space
        self._unicast_retry_limit = self.config.unicast_retry_limit
        self._unicast_retry_backoff = self.config.unicast_retry_backoff
        # Fault injection (repro.faults): None in a fault-free run, so the
        # hot paths pay one attribute check and nothing else.  The invariant
        # monitor's delivery hook is equally optional and pure observation.
        self._faults = None
        self._delivery_monitor = None
        # Profiling counters (sampled by repro.profiling; cheap increments).
        self.csma_deferrals = 0
        self.arq_retries = 0
        self.completed_transmissions = 0
        self.link_evaluations = 0
        self.vectorized_link_evaluations = 0
        self.orphaned_sends = 0

    # ---------------------------------------------------------------- faults
    def set_fault_manager(self, faults) -> None:
        """Hook a :class:`repro.faults.manager.FaultManager` into the medium."""
        self._faults = faults

    def set_delivery_monitor(self, monitor) -> None:
        """Install a pure-observation callback fired before each delivery."""
        self._delivery_monitor = monitor

    # ------------------------------------------------------------- topology
    def attach(self, radio: "Radio") -> None:
        """Attach a radio to the medium (one per node id)."""
        if radio.node_id in self._radios:
            raise ValueError(f"a radio for node {radio.node_id!r} is already attached")
        wifi_range = radio.wifi_range
        if wifi_range is not None and not (
            isinstance(wifi_range, (int, float)) and math.isfinite(wifi_range) and wifi_range > 0
        ):
            # A bad per-radio override would silently poison the spatial
            # index's query radii; fail at attach time instead.
            raise ValueError(
                f"radio {radio.node_id!r} has an inconsistent wifi_range override "
                f"({wifi_range!r}); must be a positive finite number or None"
            )
        self._radios[radio.node_id] = radio
        self._receptions[radio.node_id] = []
        self._busy_until[radio.node_id] = 0.0
        self._node_ids_cache = None
        self._index.attach(radio.node_id)

    def detach(self, node_id: str) -> None:
        """Detach a node's radio (e.g. a node powering off)."""
        self._radios.pop(node_id, None)
        self._receptions.pop(node_id, None)
        self._busy_until.pop(node_id, None)
        self._node_ids_cache = None
        self._index.detach(node_id)
        # Drop ARQ state referencing the node: its pending retries can never
        # resolve, and long node-churn runs would otherwise leak entries.
        # The per-node index makes this O(own retries), not O(backlog).
        for frame_id in self._retry_index.pop(node_id, ()):
            state = self._unicast_retries.pop(frame_id, None)
            if state is None:
                continue
            other = state.destination if state.sender == node_id else state.sender
            peers = self._retry_index.get(other)
            if peers is not None:
                peers.discard(frame_id)
                if not peers:
                    del self._retry_index[other]

    @property
    def region_partition(self):
        """The active shard geometry when region-sharded, else ``None``.

        The fault manager's shard-dark partition mode resolves its group
        through this so that "shard k goes dark" cuts exactly the nodes the
        sharded index assigns to region ``k``.
        """
        return getattr(self._index, "partition", None)

    def radio_of(self, node_id: str) -> "Radio":
        """The attached radio for ``node_id`` (KeyError when detached)."""
        return self._radios[node_id]

    @property
    def node_ids(self) -> Tuple[str, ...]:
        """Attached node ids (cached tuple, invalidated on attach/detach)."""
        if self._node_ids_cache is None:
            self._node_ids_cache = tuple(self._radios)
        return self._node_ids_cache

    def neighbours_of(self, node_id: str, time: Optional[float] = None) -> list[str]:
        """Node ids currently reachable from ``node_id`` (excluding itself).

        Reachability follows the configured propagation model: under
        ``unit_disk`` this is the classic "within WiFi range" set; other
        models filter the candidates through ``link_quality`` (an occluded
        link, for instance, is not a neighbour even when geometrically in
        range).
        """
        if node_id not in self._radios:
            # A detached node has no neighbours; callers probing a departed
            # peer (routing maintenance, liveness checks) get the empty set.
            return []
        when = self.sim.now if time is None else time
        nominal = self._range_of(node_id)
        faults = self._faults
        if self._trivial:
            reachable = self._index.neighbors(node_id, nominal, when)
        else:
            candidates = self._index.neighbors(
                node_id, self.propagation.max_range(nominal), when
            )
            reachable = [
                other for other, _loss in self._evaluate_links(node_id, nominal, candidates, when)
            ]
        if faults is not None:
            # A blocked link or a stalled peer is not a usable neighbour.
            return [other for other in reachable if faults.visible(node_id, other)]
        return reachable

    def _evaluate_links(
        self, sender_id: str, nominal: float, candidates: list[str], now: float
    ) -> list[Tuple[str, float]]:
        """Filter index candidates through the propagation model.

        Returns ``(receiver_id, link_loss)`` for each reachable candidate,
        preserving the index's attach order so event scheduling stays
        deterministic across spatial backends.
        """
        if self._link_quality_array is not None and len(candidates) > 1:
            reachable = self._evaluate_links_array(sender_id, nominal, candidates, now)
            if reachable is not None:
                return reachable
        position_xy = self._position_xy
        sender_xy = position_xy(sender_id, now)
        sender_x, sender_y = sender_xy
        link_quality = self.propagation.link_quality
        link_rng = self._link_rng
        reachable = []
        for receiver_id in candidates:
            receiver_xy = position_xy(receiver_id, now)
            dx = receiver_xy[0] - sender_x
            dy = receiver_xy[1] - sender_y
            self.link_evaluations += 1
            loss = link_quality(
                sender_xy,
                receiver_xy,
                math.sqrt(dx * dx + dy * dy),
                nominal,
                link_rng,
                (sender_id, receiver_id),
            )
            if loss is not None:
                reachable.append((receiver_id, loss))
        return reachable

    def _evaluate_links_array(
        self, sender_id: str, nominal: float, candidates: list[str], now: float
    ) -> Optional[list[Tuple[str, float]]]:
        """Batched _evaluate_links over NumPy arrays; bit-identical results.

        Positions come from one ``positions_array`` call over *all* attached
        nodes (a stable node-order tuple, so the mobility models' array
        caches keep hitting) with the candidate rows gathered out; distances
        are one fused sqrt.  Returns ``None`` — and disables itself — when
        the propagation model's ``link_quality_array`` opts out.
        """
        np = self._np
        node_ids = self.node_ids
        id_row = self._id_row
        if id_row is None or self._id_row_order is not node_ids:
            id_row = self._id_row = {
                node_id: row for row, node_id in enumerate(node_ids)
            }
            self._id_row_order = node_ids
        positions = self._positions_array(node_ids, now)
        pos = positions[[id_row[receiver_id] for receiver_id in candidates]]
        sender_x, sender_y = self._position_xy(sender_id, now)
        dx = pos[:, 0] - sender_x
        dy = pos[:, 1] - sender_y
        distances = np.sqrt(dx * dx + dy * dy)
        losses = self._link_quality_array(np, sender_id, candidates, distances, nominal)
        if losses is None:
            self._link_quality_array = None  # per-pair-only model: stop asking
            return None
        count = len(candidates)
        self.link_evaluations += count
        self.vectorized_link_evaluations += count
        return [
            (receiver_id, loss)
            for receiver_id, loss in zip(candidates, losses)
            if loss is not None
        ]

    # ----------------------------------------------------------- transmission
    def transmit(self, sender_id: str, frame: Frame) -> float:
        """Hand ``frame`` to the medium for transmission by ``sender_id``.

        If the sender is already transmitting, the frame is queued behind the
        ongoing transmission(s).  Returns the frame airtime in seconds.
        """
        if sender_id not in self._radios:
            # Liveness guard: a fire-and-forget callback (ARQ retry, delayed
            # forward, timer tick) can fire after its node departed.  Under
            # churn that is expected, not a bug — count it and drop the frame.
            self.orphaned_sends += 1
            return 0.0
        faults = self._faults
        if faults is not None and faults.sender_stalled(sender_id):
            # A stalled node is paused, not dead: its frame is queued and
            # replayed through this method, in order, when the stall ends.
            faults.queue_frame(sender_id, frame)
            return 0.0
        now = self.sim.now
        airtime = self.config.airtime(frame.size_bytes)
        start = max(now, self._busy_until.get(sender_id, 0.0))
        if start > now:
            start += self._inter_frame_space
            self._busy_until[sender_id] = start + airtime
            self.sim.schedule_call(start - now, self._begin_transmission, sender_id, frame, airtime, 0)
        else:
            self._busy_until[sender_id] = start + airtime
            self._begin_transmission(sender_id, frame, airtime, 0)
        return airtime

    def _channel_busy_at(self, node_id: str, now: float) -> float:
        """Until when the channel is sensed busy at ``node_id`` (0.0 if idle)."""
        receptions = self._receptions.get(node_id, ())
        busy_until = 0.0
        for reception in receptions:
            if reception.end_time > now:
                busy_until = max(busy_until, reception.end_time)
        return busy_until

    def _begin_transmission(self, sender_id: str, frame: Frame, airtime: float, deferrals: int) -> None:
        if sender_id not in self._radios:
            return  # radio detached while the frame was queued
        now = self.sim.now
        # Carrier sense: defer while another transmission is audible here.
        busy_until = self._channel_busy_at(sender_id, now)
        if busy_until > now and deferrals < MAX_CSMA_DEFERRALS:
            self.csma_deferrals += 1
            backoff = self._backoff_rng.uniform(0.0, 0.001)
            restart = busy_until - now + self._inter_frame_space + backoff
            self._busy_until[sender_id] = max(self._busy_until[sender_id], now + restart + airtime)
            self.sim.schedule_call(restart, self._begin_transmission, sender_id, frame, airtime, deferrals + 1)
            return
        end_time = now + airtime
        self.stats.record_transmission(frame.kind, frame.protocol, frame.size_bytes)

        nominal = self._range_of(sender_id)
        batch = []
        busy_until = self._busy_until
        faults = self._faults
        if self._trivial:
            # Seed fast path: every index candidate is a loss-free receiver
            # (no per-link evaluation, no extra allocations).
            for receiver_id in self._index.neighbors(sender_id, nominal, now):
                if faults is not None:
                    extra = faults.link_extra_loss(sender_id, receiver_id)
                    if extra is None:
                        continue  # link blocked (flap or partition boundary)
                else:
                    extra = 0.0
                reception = _Reception(frame, now, end_time, extra)
                # Half-duplex: a transmitting node cannot receive.
                if busy_until.get(receiver_id, 0.0) > now:
                    reception.corrupted = True
                self._mark_collisions(receiver_id, reception)
                self._receptions[receiver_id].append(reception)
                batch.append((receiver_id, reception))
        else:
            candidates = self._index.neighbors(
                sender_id, self.propagation.max_range(nominal), now
            )
            for receiver_id, link_loss in self._evaluate_links(
                sender_id, nominal, candidates, now
            ):
                if faults is not None:
                    extra = faults.link_extra_loss(sender_id, receiver_id)
                    if extra is None:
                        continue
                    if extra:
                        link_loss = 1.0 - (1.0 - link_loss) * (1.0 - extra)
                reception = _Reception(frame, now, end_time, link_loss)
                if busy_until.get(receiver_id, 0.0) > now:
                    reception.corrupted = True
                self._mark_collisions(receiver_id, reception)
                self._receptions[receiver_id].append(reception)
                batch.append((receiver_id, reception))
        if not batch:
            return
        # The two modes share the reception records above and differ only in
        # scheduling: one batch event, or the seed's one event per receiver.
        if self._batched:
            self.sim.schedule_call(airtime, self._complete_transmission, batch)
        else:
            for receiver_id, reception in batch:
                self.sim.schedule_call(airtime, self._complete_reception, receiver_id, reception)

    def _range_of(self, node_id: str) -> float:
        radio = self._radios[node_id]
        return radio.wifi_range if radio.wifi_range is not None else self.config.wifi_range

    def _mark_collisions(self, receiver_id: str, incoming: _Reception) -> None:
        active = self._receptions[receiver_id]
        # Prune receptions that already completed to keep the list short.
        still_active = [r for r in active if r.end_time > incoming.start_time]
        self._receptions[receiver_id] = still_active
        if not still_active:
            return
        # Each reception counts once toward ``stats.collisions`` — when it
        # first becomes corrupted by an overlap.  Receptions already
        # corrupted (an earlier overlap, or the receiver's own half-duplex
        # transmission) must not be counted again.
        collisions = 0
        for existing in still_active:
            if not existing.corrupted:
                existing.corrupted = True
                collisions += 1
        if not incoming.corrupted:
            incoming.corrupted = True
            collisions += 1
        self.stats.collisions += collisions

    def _complete_transmission(
        self, batch: List[Tuple[str, _Reception]], resume_slot: Optional[int] = None
    ) -> None:
        """Batched delivery: resolve every reception of one transmission.

        The loop visits receivers in the order their per-receiver events
        would have fired (attach order — consecutive sequence numbers in the
        seed scheduler), so RNG draws, ARQ scheduling and protocol reactions
        happen in exactly the per-receiver order.  A ``sim.stop()`` raised by
        a delivery callback halts the batch between receivers — exactly where
        the per-receiver schedule would have stopped — and the unprocessed
        remainder is requeued under a slot reserved *before* any receiver
        ran, so on resume it still fires ahead of any same-timestamp events
        the delivery callbacks scheduled (matching the remaining per-receiver
        events' older sequence numbers in the seed scheduler).
        """
        sim = self.sim
        slot = sim.reserve_slot() if resume_slot is None else resume_slot
        complete_one = self._complete_reception
        processed = 0
        for index, (receiver_id, reception) in enumerate(batch):
            if processed and sim.stopping:
                sim.schedule_reserved(slot, self._complete_transmission, batch[index:], slot)
                break
            complete_one(receiver_id, reception)
            processed += 1
        else:
            self.completed_transmissions += 1
        # Keep the logical event count (one per reception) identical to
        # per-receiver scheduling: the run loop counted this batch as one.
        sim.events_processed += processed - 1

    def _complete_reception(self, receiver_id: str, reception: _Reception) -> None:
        receptions = self._receptions.get(receiver_id)
        if receptions is None:
            return  # radio detached mid-flight
        try:
            receptions.remove(reception)
        except ValueError:
            pass  # already pruned by a later transmission's collision scan
        radio = self._radios.get(receiver_id)
        if radio is None:
            return
        if reception.corrupted:
            radio.stats.frames_collided += 1
            self._maybe_retry_unicast(receiver_id, reception.frame)
            return
        faults = self._faults
        if faults is not None and faults.delivery_suppressed(receiver_id):
            # The receiver stalled while the frame was on the air: a silent
            # peer, indistinguishable from loss — so ARQ reacts as to loss.
            self._maybe_retry_unicast(receiver_id, reception.frame)
            return
        # Per-link propagation loss (fading, lossy wall penetration) draws
        # from its own stream; unit_disk links carry 0.0 and never draw, so
        # the seed RNG sequences are untouched.
        if reception.link_loss and self._link_rng.random() < reception.link_loss:
            self.stats.losses += 1
            radio.stats.frames_lost += 1
            self._maybe_retry_unicast(receiver_id, reception.frame)
            return
        if self.config.loss_rate and self._loss_rng.random() < self.config.loss_rate:
            self.stats.losses += 1
            radio.stats.frames_lost += 1
            self._maybe_retry_unicast(receiver_id, reception.frame)
            return
        self.stats.deliveries += 1
        if reception.frame.destination == receiver_id:
            self._drop_retry_state(reception.frame.frame_id)
        if faults is not None:
            faults.note_delivery(reception.frame.sender, receiver_id)
        if self._delivery_monitor is not None:
            self._delivery_monitor(receiver_id, reception.frame)
        radio.deliver(reception.frame)

    # ------------------------------------------------------------------- ARQ
    def _drop_retry_state(self, frame_id: int) -> None:
        state = self._unicast_retries.pop(frame_id, None)
        if state is None:
            return
        for node_id in (state.sender, state.destination):
            peers = self._retry_index.get(node_id)
            if peers is not None:
                peers.discard(frame_id)
                if not peers:
                    del self._retry_index[node_id]

    def _maybe_retry_unicast(self, receiver_id: str, frame: Frame) -> None:
        """802.11-style link-layer ARQ: retransmit lost unicast frames a few times.

        Only frames addressed to ``receiver_id`` are retried (broadcast frames
        have no acknowledgements in 802.11 ad-hoc mode, so neither do ours).
        """
        if frame.destination != receiver_id or frame.sender not in self._radios:
            return
        state = self._unicast_retries.get(frame.frame_id)
        if state is None:
            state = _RetryState(sender=frame.sender, destination=frame.destination)
            self._unicast_retries[frame.frame_id] = state
            self._retry_index.setdefault(frame.sender, set()).add(frame.frame_id)
            self._retry_index.setdefault(frame.destination, set()).add(frame.frame_id)
        if state.retries >= self._unicast_retry_limit:
            self._drop_retry_state(frame.frame_id)
            return
        retries = state.retries
        state.retries = retries + 1
        self.arq_retries += 1
        backoff = self._unicast_retry_backoff * (retries + 1) + self._backoff_rng.uniform(0.0, 0.001)
        self.sim.schedule_call(backoff, self._retry_transmit, frame.sender, frame)

    def _retry_transmit(self, sender_id: str, frame: Frame) -> None:
        """Fire a scheduled ARQ retransmission unless the sender detached meanwhile."""
        if sender_id in self._radios:
            self.transmit(sender_id, frame)

    # ------------------------------------------------------------- inspection
    def busy_until(self, node_id: str) -> float:
        """Time until which ``node_id``'s transmitter is busy (for tests)."""
        return self._busy_until.get(node_id, 0.0)

    @property
    def unicast_retry_backlog(self) -> int:
        """Number of unicast frames with live ARQ state (for tests/monitoring)."""
        return len(self._unicast_retries)
