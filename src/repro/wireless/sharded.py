"""Region-sharded neighbor resolution: the 10-100x population path.

The paper evaluates DAPES swarms at 14-30 nodes; the ROADMAP north-star is a
production-scale system.  At 10-100x populations the single world-spanning
grid snapshot becomes the bottleneck twice over: every membership change
(churn arrival, departure, teleport) invalidates and rebuilds the *whole*
snapshot — O(N) work per churn event — and the rebuild itself is one serial
batch however many cores the machine has.

This module shards the world into K spatial regions so that

* membership changes invalidate only the region they touch (O(N/K) per
  churn event instead of O(N)),
* all K region snapshots can be rebuilt **concurrently** at each epoch
  barrier (threads release the GIL inside the NumPy batches; a process
  fallback exists for GIL-bound environments), and
* per-region populations pick their own query strategy (a dense downtown
  region can vectorize while a sparse suburb stays scalar — see
  ``scalar_query_limit``).

Determinism contract
--------------------
The shard key is geometric: the x-axis is cut into stripes of
``region_width`` metres and stripe ``i`` belongs to shard ``i mod K`` — the
same ``floor(x / width)`` arithmetic the grid index uses for cells, so grid
cells are the natural unit of shard ownership.  Membership is reassigned at
deterministic :class:`~repro.simulation.epochs.EpochClock` barriers from one
batched :meth:`~repro.mobility.base.MobilityModel.coordinates_at` call;
between barriers a node may drift out of its region by at most
``speed_bound * epoch``, so every query widens its stripe window by exactly
that slack and can never miss a true neighbor (the same drift argument the
grid snapshot makes for cells).

A transmission whose widened range disk overlaps a neighbouring region
queries that region too; the candidates it contributes are **boundary
events** — replicated reception records that the medium schedules through
the one global event heap, ordered by the same ``(time, seq)`` tuple keys as
every other event.  Because the union of per-region candidates equals the
unsharded candidate set and the merged list is re-sorted by global attach
order, a sharded serial run is *byte-identical* to the unsharded medium —
and because parallel snapshot builds write disjoint per-shard state from
pre-computed coordinates, serial and parallel sharded runs are byte-identical
too.  Both equivalences are asserted property-style in the test suite and on
every committed spec.
"""

from __future__ import annotations

import math
import warnings
from typing import Dict, List, Optional, Tuple

from repro.arrays import numpy_or_none
from repro.mobility.base import MobilityModel
from repro.simulation.epochs import EpochClock
from repro.wireless.channel import SHARD_EXECUTOR_MODES
from repro.wireless.spatial import (
    ArrayGridNeighborIndex,
    GridNeighborIndex,
    NeighborIndex,
)

__all__ = [
    "RegionPartition",
    "ShardExecutor",
    "ShardedNeighborIndex",
    "partition_for_config",
]

#: Executor modes for stepping shard snapshot builds at an epoch barrier.
SHARD_EXECUTORS = SHARD_EXECUTOR_MODES


class RegionPartition:
    """Deterministic world-to-shard geometry: x-stripes dealt modulo K.

    The x-axis is divided into stripes of ``region_width`` metres; stripe
    ``i`` (i.e. positions with ``floor(x / region_width) == i``) belongs to
    shard ``i mod shards``.  Modular striping keeps the mapping total over
    an unbounded world — mobility models may wander outside the nominal
    area — while ``region_width ~ area / shards`` gives each shard one
    contiguous region in practice.
    """

    __slots__ = ("shards", "region_width")

    def __init__(self, shards: int, region_width: float):
        if not isinstance(shards, int) or shards < 1:
            raise ValueError("shards must be a positive integer")
        if not (region_width > 0.0 and math.isfinite(region_width)):
            raise ValueError("region_width must be positive and finite")
        self.shards = shards
        self.region_width = region_width

    def stripe_of(self, x: float) -> int:
        """Index of the stripe containing coordinate ``x``."""
        return math.floor(x / self.region_width)

    def shard_of(self, x: float) -> int:
        """Owning shard of coordinate ``x``."""
        return self.stripe_of(x) % self.shards

    def shards_overlapping(self, x: float, reach: float) -> Tuple[int, ...]:
        """Shards whose stripes intersect ``[x - reach, x + reach]``.

        Ascending shard ids — a deterministic scan order independent of the
        query position, so sharded runs replay identically.
        """
        lo = math.floor((x - reach) / self.region_width)
        hi = math.floor((x + reach) / self.region_width)
        if hi - lo + 1 >= self.shards:
            return tuple(range(self.shards))
        return tuple(sorted({stripe % self.shards for stripe in range(lo, hi + 1)}))


# ---------------------------------------------------------------------------
# Snapshot build kernels.  Module-level pure functions of plain data so the
# process executor can pickle them; the thread executor benefits too (the
# NumPy kernel releases the GIL, so K shards genuinely build concurrently).
def _build_scalar_cells(
    entries: List[Tuple[int, str, float, float]], cell_size: float
) -> Dict[Tuple[int, int], List[Tuple[int, str, float, float]]]:
    """Bucket ``(seq, id, x, y)`` entries into grid cells (scalar layout)."""
    floor = math.floor
    cells: Dict[Tuple[int, int], List[Tuple[int, str, float, float]]] = {}
    for entry in entries:
        key = (floor(entry[2] / cell_size), floor(entry[3] / cell_size))
        bucket = cells.get(key)
        if bucket is None:
            cells[key] = [entry]
        else:
            bucket.append(entry)
    return cells


def _build_array_codes(pos, cell_size: float):
    """Sorted cell codes + row permutation for the array snapshot layout.

    Mirrors :meth:`ArrayGridNeighborIndex._rebuild` exactly — same floor,
    same injective encoding, same stable argsort — so an installed parallel
    build is indistinguishable from a serial one.
    """
    np = numpy_or_none()
    cells = np.floor(pos / cell_size).astype(np.int64)
    codes = cells[:, 0] * ArrayGridNeighborIndex._CELL_STRIDE + cells[:, 1]
    rows = np.argsort(codes, kind="stable")
    return codes[rows], rows


class ShardExecutor:
    """Steps per-shard work at an epoch barrier: serial, threads or processes.

    ``thread`` (the default for ``shard_workers > 1``) is the right mode on
    CPython: the snapshot kernels release the GIL inside NumPy and the
    per-shard state they write is disjoint.  ``process`` is the fallback for
    GIL-bound scalar builds — correctness-identical, but it pays pickling
    and pool startup per barrier, so it only wins when per-shard work is
    large.  Any pool failure (sandboxed environments without threads or
    semaphores) degrades to ``serial`` with one :class:`RuntimeWarning`;
    results are byte-identical in every mode because tasks are pure
    functions of pre-computed inputs and install order is fixed.
    """

    def __init__(self, mode: str = "serial", workers: int = 1):
        if mode not in SHARD_EXECUTORS:
            raise ValueError(f"shard executor must be one of {SHARD_EXECUTORS}, got {mode!r}")
        self.mode = mode if workers > 1 else "serial"
        self.workers = max(1, workers)
        self._pool = None
        #: Barriers actually stepped in parallel (profiling).
        self.parallel_barriers = 0

    def run(self, tasks):
        """Execute ``[(fn, args), ...]``; return results in task order."""
        if self.mode == "thread":
            pool = self._thread_pool()
            if pool is not None:
                futures = [pool.submit(fn, *args) for fn, args in tasks]
                results = [future.result() for future in futures]
                self.parallel_barriers += 1
                return results
        elif self.mode == "process":
            results = self._run_process(tasks)
            if results is not None:
                self.parallel_barriers += 1
                return results
        return [fn(*args) for fn, args in tasks]

    def _thread_pool(self):
        if self._pool is None:
            from concurrent.futures import ThreadPoolExecutor

            try:
                self._pool = ThreadPoolExecutor(max_workers=self.workers)
            except (RuntimeError, OSError) as exc:  # pragma: no cover - env specific
                warnings.warn(
                    f"shard thread pool unavailable ({exc}); stepping shards serially",
                    RuntimeWarning,
                    stacklevel=3,
                )
                self.mode = "serial"
                return None
        return self._pool

    def _run_process(self, tasks):
        from concurrent.futures import ProcessPoolExecutor
        from concurrent.futures.process import BrokenProcessPool

        try:
            with ProcessPoolExecutor(max_workers=self.workers) as pool:
                futures = [pool.submit(fn, *args) for fn, args in tasks]
                return [future.result() for future in futures]
        except (OSError, ValueError, BrokenProcessPool) as exc:
            warnings.warn(
                f"shard process pool unavailable ({exc}); stepping shards serially",
                RuntimeWarning,
                stacklevel=3,
            )
            self.mode = "serial"
            return None

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False)
            self._pool = None


class ShardedNeighborIndex(NeighborIndex):
    """K region shards behind the one :class:`NeighborIndex` interface.

    Each shard owns a private :class:`GridNeighborIndex` (or the
    array-native subclass) over only its members, with the member's *global*
    attach sequence written through so that candidates merged across shards
    sort into exactly the order the unsharded backends produce.  See the
    module docstring for the determinism contract.
    """

    def __init__(
        self,
        mobility: MobilityModel,
        cell_size: float,
        shards: int,
        region_width: Optional[float] = None,
        epoch: float = 1.0,
        use_array: bool = False,
        scalar_query_limit: int = 256,
        workers: int = 1,
        executor: str = "thread",
    ):
        super().__init__(mobility)
        if shards < 1:
            raise ValueError("shards must be a positive integer")
        self.partition = RegionPartition(
            shards, cell_size if region_width is None else region_width
        )
        self.clock = EpochClock(epoch)
        self.cell_size = cell_size
        self.executor = ShardExecutor(executor, workers)
        self._position_xy = mobility.position_xy
        self._coordinates_at = mobility.coordinates_at
        self._use_array = use_array and numpy_or_none() is not None
        if self._use_array:
            self._subs: List[GridNeighborIndex] = [
                ArrayGridNeighborIndex(
                    mobility, cell_size, rebuild_interval=epoch,
                    scalar_query_limit=scalar_query_limit,
                )
                for _ in range(shards)
            ]
        else:
            self._subs = [
                GridNeighborIndex(mobility, cell_size, rebuild_interval=epoch)
                for _ in range(shards)
            ]
        self._membership: Dict[str, int] = {}
        # Ordered set of nodes attached since the last barrier, assigned to
        # a shard lazily on the next query (attach carries no timestamp, so
        # the assignment position is only known once a query supplies one).
        self._pending: Dict[str, None] = {}
        self._epoch_speed = math.inf
        self._epoch_version: Optional[int] = None
        self._sync_time: Optional[float] = None
        # Per-shard boundary outboxes for the current epoch, merged (in
        # EpochClock.sequence order) at each barrier.
        self._outbox = [0] * shards
        # ------------------------------------------------- profiling counters
        self.boundary_queries = 0
        self.boundary_candidates = 0
        self.boundary_merged = 0
        self.shard_migrations = 0
        self.snapshot_builds = 0

    # ------------------------------------------------------------ membership
    def attach(self, node_id: str) -> None:
        super().attach(node_id)
        self._pending[node_id] = None

    def detach(self, node_id: str) -> None:
        super().detach(node_id)
        if node_id in self._pending:
            del self._pending[node_id]
            return
        shard = self._membership.pop(node_id, None)
        if shard is not None:
            self._subs[shard].detach(node_id)

    def shard_of(self, node_id: str) -> Optional[int]:
        """Current shard of ``node_id`` (``None`` if pending or detached)."""
        return self._membership.get(node_id)

    # ----------------------------------------------------- aggregate counters
    @property
    def rebuilds(self) -> int:
        return sum(sub.rebuilds for sub in self._subs)

    @property
    def array_rebuilds(self) -> int:
        return sum(getattr(sub, "array_rebuilds", 0) for sub in self._subs)

    @property
    def epoch_rolls(self) -> int:
        return self.clock.rolls

    @property
    def shards(self) -> int:
        return self.partition.shards

    def shard_populations(self) -> Tuple[int, ...]:
        """Member count per shard (pending nodes excluded) — for profiling."""
        counts = [0] * self.partition.shards
        for shard in self._membership.values():
            counts[shard] += 1
        return tuple(counts)

    # --------------------------------------------------------------- queries
    def neighbors(self, node_id: str, radius: float, time: float) -> List[str]:
        self._sync(time)
        origin_x, _ = self._position_xy(node_id, time)
        # Membership drift slack: a member may have moved this far from the
        # position that assigned its shard (same epsilon treatment as the
        # grid's uncertain ring, so borderline stripes are never skipped).
        slack = self._membership_slack() + 1e-9 * (1.0 + radius)
        if math.isfinite(slack):
            shard_ids = self.partition.shards_overlapping(origin_x, radius + slack)
        else:  # pragma: no cover - unbounded speed forces per-query rolls
            shard_ids = tuple(range(self.partition.shards))
        home = self._membership.get(node_id)
        subs = self._subs
        nearby: List[str] = []
        crossed = 0
        for shard in shard_ids:
            sub = subs[shard]
            if not sub._attach_order:
                continue
            found = sub.neighbors(node_id, radius, time)
            if found and shard != home:
                crossed += len(found)
                self._outbox[shard] += len(found)
            nearby.extend(found)
        if crossed:
            # Boundary event accounting: this transmission's range disk
            # reached beyond the sender's home region, so `crossed`
            # replicated reception records will be scheduled there.
            self.boundary_queries += 1
            self.boundary_candidates += crossed
        if len(nearby) > 1:
            # Global attach order, whatever shard (or per-shard snapshot
            # layout) each candidate came from — the byte-identity keystone.
            nearby.sort(key=self._attach_order.__getitem__)
        return nearby

    # -------------------------------------------------------------- internal
    def _membership_slack(self) -> float:
        speed = self._epoch_speed
        if not math.isfinite(speed):
            return math.inf
        return speed * self.clock.length

    def _sync(self, time: float) -> None:
        """Cross the epoch barrier (or assign pending arrivals) if due."""
        version = self.positions.mobility_version()
        if version != self._epoch_version:
            # Teleports void the drift bound; re-shard at the next query.
            self.clock.force_roll()
        elif not math.isfinite(self._epoch_speed) and time != self._sync_time:
            # Unbounded speed degrades to a re-shard at every new timestamp,
            # mirroring the grid snapshot's zero-slack degradation.
            self.clock.force_roll()
        elif self.clock.epoch >= 0 and self.clock.epoch_of(time) < self.clock.epoch:
            # Time-reversed query into an *earlier* epoch (the medium's event
            # loop never rewinds, but property tests replay histories in any
            # order): the membership positions are arbitrarily stale relative
            # to the queried time, so the per-epoch drift slack bounds
            # nothing — re-shard at the queried time.  Within one epoch the
            # slack already covers both directions (|t - roll_time| < length).
            self.clock.force_roll()
        if self.clock.advance(time):
            self._roll(time, version)
        elif self._pending:
            self._assign_pending(time)
        self._sync_time = time

    def _assign_pending(self, time: float) -> None:
        # Arrivals between barriers (churn) join their region immediately —
        # only that shard's snapshot is invalidated, which is the O(N/K)
        # churn-cost win over the unsharded full-world rebuild.
        for node_id in self._pending:
            x, _ = self._position_xy(node_id, time)
            self._sub_attach(self.partition.shard_of(x), node_id)
        self._pending.clear()

    def _sub_attach(self, shard: int, node_id: str) -> None:
        self._membership[node_id] = shard
        sub = self._subs[shard]
        sub.attach(node_id)
        # Write the *global* attach sequence through so per-shard candidate
        # tuples sort by global order even after cross-shard migrations.
        sub._attach_order[node_id] = self._attach_order[node_id]
        sub._node_ids_cache = None

    def _roll(self, time: float, version: int) -> None:
        """The epoch barrier: reassign membership, rebuild, merge outboxes."""
        node_ids = self.node_ids
        coords = self._coordinates_at(node_ids, time)
        membership = self._membership
        shard_of = self.partition.shard_of
        for node_id, (x, _) in zip(node_ids, coords):
            target = shard_of(x)
            current = membership.get(node_id)
            if current is None:
                self._sub_attach(target, node_id)
            elif current != target:
                # Boundary handoff: the node crossed a region border since
                # the last barrier; its reception state lives in the medium
                # (receiver-keyed, shard-agnostic), so handing off is purely
                # a membership move — mid-transfer frames keep flowing.
                self._subs[current].detach(node_id)
                self._sub_attach(target, node_id)
                self.shard_migrations += 1
        self._pending.clear()
        self._merge_outboxes()
        self._prebuild(time, node_ids, coords)
        self._epoch_speed = self.positions.speed_bound()
        self._epoch_version = version

    def _merge_outboxes(self) -> None:
        """Merge per-shard boundary queues in deterministic sequence order."""
        shards = self.partition.shards
        clock = self.clock
        entries = sorted(
            (clock.sequence(shard, shards), self._outbox[shard])
            for shard in range(shards)
            if self._outbox[shard]
        )
        for _, count in entries:
            self.boundary_merged += count
        self._outbox = [0] * shards

    def _prebuild(self, time: float, node_ids, coords) -> None:
        """Rebuild every populated shard snapshot at the barrier, concurrently.

        Coordinates are computed once, up front, in the calling thread —
        workers never touch the mobility model, so lazy leg extension (and
        its RNG) stays single-threaded and the builds are pure functions of
        their inputs: byte-identical results in every executor mode.
        """
        attach_order = self._attach_order
        members: List[List[Tuple[int, str, float, float]]] = [
            [] for _ in range(self.partition.shards)
        ]
        for node_id, (x, y) in zip(node_ids, coords):
            members[self._membership[node_id]].append(
                (attach_order[node_id], node_id, x, y)
            )
        np = numpy_or_none()
        tasks = []
        targets = []
        for shard, entries in enumerate(members):
            sub = self._subs[shard]
            if not entries:
                continue
            array_layout = (
                isinstance(sub, ArrayGridNeighborIndex) and not sub._scalar_strategy
            )
            if array_layout:
                pos = np.asarray(
                    [(entry[2], entry[3]) for entry in entries], dtype=np.float64
                )
                tasks.append((_build_array_codes, (pos, self.cell_size)))
                targets.append((sub, entries, pos))
            else:
                tasks.append((_build_scalar_cells, (entries, self.cell_size)))
                targets.append((sub, entries, None))
        results = self.executor.run(tasks)
        for (sub, entries, pos), result in zip(targets, results):
            if pos is None:
                sub._cells = result
                sub.rebuilds += 1
            else:
                order = tuple(entry[1] for entry in entries)
                sub._snap_order = order
                sub._snap_pos = pos
                sub._row_of = {node_id: row for row, node_id in enumerate(order)}
                sub._sorted_codes, sub._sorted_rows = result
                sub.array_rebuilds += 1
            sub._snapshot_time = time
            sub._snapshot_speed = sub.positions.speed_bound()
            sub._snapshot_version = sub.positions.mobility_version()
            self.snapshot_builds += 1


def partition_for_config(config, max_range: Optional[float] = None) -> RegionPartition:
    """The :class:`RegionPartition` a :class:`ChannelConfig` describes.

    Shared by the sharded index and the fault manager's shard-dark partition
    mode, so "shard 2 goes dark" cuts exactly the nodes shard 2 owns.
    ``region_width`` defaults to the true propagation reach (= the default
    grid cell), matching the grid-cells-own-their-nodes framing; experiment
    configs override it with ``area / shards`` for balanced regions.
    """
    shards = getattr(config, "shards", 1)
    width = getattr(config, "shard_region_width", None)
    if width is None:
        if max_range is None:
            max_range = getattr(config, "max_range", lambda: config.wifi_range)()
        width = max_range
    return RegionPartition(max(1, int(shards)), width)
