"""Channel configuration for the wireless medium."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class ChannelConfig:
    """Parameters of the shared wireless channel.

    Defaults follow the paper's simulation setup: IEEE 802.11b at 11 Mb/s,
    10 % loss rate and a WiFi range swept from 20 m to 100 m.

    Attributes
    ----------
    data_rate_bps:
        Channel bit rate in bits per second.
    wifi_range:
        Communication range in metres (unit-disk model).
    loss_rate:
        Independent probability that a frame is lost at a given receiver,
        applied after collision detection.
    per_frame_overhead_s:
        Fixed per-frame airtime overhead approximating the 802.11b PLCP
        preamble/header and MAC framing.
    """

    data_rate_bps: float = 11_000_000.0
    wifi_range: float = 60.0
    loss_rate: float = 0.10
    per_frame_overhead_s: float = 0.000192

    def __post_init__(self) -> None:
        if self.data_rate_bps <= 0:
            raise ValueError("data_rate_bps must be positive")
        if self.wifi_range <= 0:
            raise ValueError("wifi_range must be positive")
        if not 0.0 <= self.loss_rate < 1.0:
            raise ValueError("loss_rate must be in [0, 1)")
        if self.per_frame_overhead_s < 0:
            raise ValueError("per_frame_overhead_s must be non-negative")

    def airtime(self, size_bytes: int) -> float:
        """Airtime in seconds for a frame of ``size_bytes``."""
        return self.per_frame_overhead_s + (size_bytes * 8) / self.data_rate_bps
