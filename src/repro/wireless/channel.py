"""Channel configuration for the wireless medium."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.arrays import ARRAY_BACKENDS

NEIGHBOR_INDEX_BACKENDS = ("grid", "grid_array", "brute")
DELIVERY_MODES = ("batched", "per_receiver")
SHARD_EXECUTOR_MODES = ("serial", "thread", "process")


@dataclass
class ChannelConfig:
    """Parameters of the shared wireless channel.

    Defaults follow the paper's simulation setup: IEEE 802.11b at 11 Mb/s,
    10 % loss rate and a WiFi range swept from 20 m to 100 m.

    Attributes
    ----------
    data_rate_bps:
        Channel bit rate in bits per second.
    wifi_range:
        Communication range in metres (unit-disk model).
    loss_rate:
        Independent probability that a frame is lost at a given receiver,
        applied after collision detection.
    per_frame_overhead_s:
        Fixed per-frame airtime overhead approximating the 802.11b PLCP
        preamble/header and MAC framing.
    neighbor_index:
        Neighbor-resolution backend: ``"grid"`` (bucketed spatial index, the
        default — auto-upgraded to the array-native index when the resolved
        ``array_backend`` is NumPy), ``"grid_array"`` (the array-native
        index, explicitly) or ``"brute"`` (O(N) reference scan).  All
        produce identical results; ``"brute"`` exists for equivalence
        testing.
    array_backend:
        Hot-path implementation selector (see :mod:`repro.arrays`):
        ``"auto"`` (the default — NumPy when importable, scalar otherwise),
        ``"numpy"`` (array-native; warns once and degrades to scalar if
        NumPy is missing) or ``"scalar"`` (the reference oracle paths).
        Purely a performance switch: results are byte-identical across
        backends.
    index_cell_size:
        Grid cell edge in metres (``None`` means use ``wifi_range``).
    index_rebuild_interval:
        Validity window of one grid snapshot in simulated seconds.
    delivery:
        Frame-delivery scheduling: ``"batched"`` (one completion event per
        transmission, the default) or ``"per_receiver"`` (one event per
        receiver, the seed behaviour).  Both produce identical results;
        ``"per_receiver"`` exists for equivalence testing.
    propagation:
        Radio propagation backend (see :mod:`repro.wireless.propagation`):
        ``"unit_disk"`` (the seed physics, the default), ``"log_distance"``
        (distance-dependent loss with deterministic shadowing) or
        ``"obstacle"`` (line-of-sight occlusion against an environment).
    propagation_params:
        Model-specific parameters, validated against the selected backend's
        declared parameter set (unknown keys or out-of-range values raise).
    unicast_retry_limit:
        802.11-style link-layer ARQ retry ceiling for unicast frames
        (historically the ``UNICAST_RETRY_LIMIT`` module constant in
        :mod:`repro.wireless.medium`; defaults unchanged so fault specs can
        sweep it without perturbing every other run).
    unicast_retry_backoff:
        Base ARQ retransmission backoff in seconds; the k-th retry waits
        ``k * unicast_retry_backoff`` plus a small random jitter.
    inter_frame_space:
        Gap between back-to-back frames of one sender in seconds,
        approximating DIFS + MAC processing.
    shards:
        Number of spatial region shards (see :mod:`repro.wireless.sharded`).
        ``1`` (the default) keeps the single world-spanning index; ``K > 1``
        partitions the world into K x-stripe regions with deterministic
        epoch-synchronized membership.  Results are byte-identical either
        way — sharding is purely a scalability/parallelism switch.  Requires
        a grid backend (``"brute"`` has no regions to shard).
    shard_workers:
        Worker count for stepping shard snapshot builds concurrently at
        each epoch barrier.  ``1`` (the default) steps serially; ``> 1``
        uses the executor selected by ``shard_executor``.  Byte-identical
        results in every mode.
    shard_executor:
        ``"thread"`` (the default — NumPy snapshot kernels release the GIL),
        ``"process"`` (GIL-free fallback, pays pickling per barrier) or
        ``"serial"``.  Only consulted when ``shard_workers > 1``.
    shard_epoch:
        Synchronization epoch length in simulated seconds (``None`` means
        use ``index_rebuild_interval``): membership is reassigned and shard
        snapshots are rebuilt at every epoch barrier.
    shard_region_width:
        Width in metres of one x-stripe region (``None`` means the true
        propagation reach, i.e. the default grid cell edge).  Experiment
        configs set ``area / shards`` so regions tile the area evenly.
    scalar_query_limit:
        Population threshold below which the array-native grid index runs
        its scalar strategy (NumPy's fixed per-call costs lose to leg-cached
        scalar loops at small N).  ``None`` keeps the measured defaults —
        256 for ``"grid"``, 1 (always vectorize) for ``"grid_array"``; an
        explicit value overrides both, letting experiments tune the
        crossover and letting shard-local populations pick their own
        strategy.  Purely a performance switch: results are identical.
    """

    data_rate_bps: float = 11_000_000.0
    wifi_range: float = 60.0
    loss_rate: float = 0.10
    per_frame_overhead_s: float = 0.000192
    neighbor_index: str = "grid"
    array_backend: str = "auto"
    index_cell_size: Optional[float] = None
    index_rebuild_interval: float = 1.0
    delivery: str = "batched"
    propagation: str = "unit_disk"
    propagation_params: Dict[str, object] = field(default_factory=dict)
    unicast_retry_limit: int = 3
    unicast_retry_backoff: float = 0.002
    inter_frame_space: float = 0.00005
    shards: int = 1
    shard_workers: int = 1
    shard_executor: str = "thread"
    shard_epoch: Optional[float] = None
    shard_region_width: Optional[float] = None
    scalar_query_limit: Optional[int] = None

    def __post_init__(self) -> None:
        if self.data_rate_bps <= 0:
            raise ValueError("data_rate_bps must be positive")
        if self.wifi_range <= 0:
            raise ValueError("wifi_range must be positive")
        if not 0.0 <= self.loss_rate < 1.0:
            raise ValueError("loss_rate must be in [0, 1)")
        if self.per_frame_overhead_s < 0:
            raise ValueError("per_frame_overhead_s must be non-negative")
        if self.neighbor_index not in NEIGHBOR_INDEX_BACKENDS:
            raise ValueError(
                f"neighbor_index must be one of {NEIGHBOR_INDEX_BACKENDS}, got {self.neighbor_index!r}"
            )
        if self.array_backend not in ARRAY_BACKENDS:
            raise ValueError(
                f"array_backend must be one of {ARRAY_BACKENDS}, got {self.array_backend!r}"
            )
        if self.index_cell_size is not None and self.index_cell_size <= 0:
            raise ValueError("index_cell_size must be positive")
        if self.index_rebuild_interval <= 0:
            raise ValueError("index_rebuild_interval must be positive")
        if self.delivery not in DELIVERY_MODES:
            raise ValueError(
                f"delivery must be one of {DELIVERY_MODES}, got {self.delivery!r}"
            )
        if not isinstance(self.unicast_retry_limit, int) or self.unicast_retry_limit < 0:
            raise ValueError("unicast_retry_limit must be a non-negative integer")
        if self.unicast_retry_backoff < 0:
            raise ValueError("unicast_retry_backoff must be non-negative")
        if self.inter_frame_space < 0:
            raise ValueError("inter_frame_space must be non-negative")
        if not isinstance(self.shards, int) or self.shards < 1:
            raise ValueError("shards must be a positive integer")
        if self.shards > 1 and self.neighbor_index == "brute":
            raise ValueError(
                "shards > 1 requires a grid neighbor index (brute has no "
                "regions to shard); use neighbor_index='grid' or 'grid_array'"
            )
        if not isinstance(self.shard_workers, int) or self.shard_workers < 1:
            raise ValueError("shard_workers must be a positive integer")
        if self.shard_executor not in SHARD_EXECUTOR_MODES:
            raise ValueError(
                f"shard_executor must be one of {SHARD_EXECUTOR_MODES}, "
                f"got {self.shard_executor!r}"
            )
        if self.shard_epoch is not None and self.shard_epoch <= 0:
            raise ValueError("shard_epoch must be positive")
        if self.shard_region_width is not None and self.shard_region_width <= 0:
            raise ValueError("shard_region_width must be positive")
        if self.scalar_query_limit is not None and (
            not isinstance(self.scalar_query_limit, int) or self.scalar_query_limit < 1
        ):
            raise ValueError("scalar_query_limit must be a positive integer")
        # Validate the propagation selection eagerly so misconfigured sweeps
        # fail at config construction, not mid-trial in a pool worker.
        from repro.wireless.propagation import validate_propagation

        validate_propagation(self.propagation, self.propagation_params)
        if self.index_cell_size is not None and self.index_cell_size < self.max_range() / 8:
            # A cell far smaller than the true reach makes every query scan
            # hundreds of cells; treat it as a configuration error rather
            # than a silent performance cliff.
            raise ValueError(
                f"index_cell_size={self.index_cell_size} is inconsistent with the "
                f"propagation model's max range {self.max_range():.1f} "
                f"(cells must be at least max_range/8)"
            )

    def airtime(self, size_bytes: int) -> float:
        """Airtime in seconds for a frame of ``size_bytes``."""
        return self.per_frame_overhead_s + (size_bytes * 8) / self.data_rate_bps

    def max_range(self, nominal_range: Optional[float] = None) -> float:
        """True maximum link reach under the configured propagation model.

        This — not ``wifi_range`` — is what grid cell sizing and index query
        radii must derive from: models like ``log_distance`` reach beyond
        the nominal range.  ``nominal_range`` defaults to ``wifi_range``;
        pass a per-radio override to bound that radio's reach.
        """
        from repro.wireless.propagation import propagation_max_range

        return propagation_max_range(
            self.propagation,
            self.propagation_params,
            self.wifi_range if nominal_range is None else nominal_range,
        )
