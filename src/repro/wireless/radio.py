"""Per-node radio: the interface between a protocol stack and the medium."""

from __future__ import annotations

from typing import Callable, Optional

from repro.simulation import Simulator
from repro.wireless.frames import Frame
from repro.wireless.medium import WirelessMedium
from repro.wireless.stats import NodeRadioStats

FrameHandler = Callable[[Frame], None]


class Radio:
    """A node's wireless interface.

    A radio physically hears every frame transmitted within range.  Frames
    addressed to this node (or link-layer broadcasts) are passed to
    ``on_receive``; frames addressed to someone else are passed to
    ``on_overhear`` when set.  Overhearing is how DAPES intermediate nodes
    and pure forwarders learn about data available around them.
    """

    def __init__(
        self,
        sim: Simulator,
        medium: WirelessMedium,
        node_id: str,
        wifi_range: Optional[float] = None,
    ):
        self.sim = sim
        self.medium = medium
        self.node_id = node_id
        self.wifi_range = wifi_range
        self.stats = NodeRadioStats()
        self.on_receive: Optional[FrameHandler] = None
        self.on_overhear: Optional[FrameHandler] = None
        medium.attach(self)

    # --------------------------------------------------------------- sending
    def send(self, frame: Frame) -> float:
        """Hand a frame to the medium; returns the frame airtime in seconds."""
        if frame.sender != self.node_id:
            raise ValueError(
                f"frame sender {frame.sender!r} does not match radio owner {self.node_id!r}"
            )
        self.stats.record_send(frame.kind, frame.size_bytes)
        return self.medium.transmit(self.node_id, frame)

    def broadcast(self, payload, size_bytes: int, kind: str, protocol: str = "") -> float:
        """Convenience helper to broadcast ``payload`` as a new frame."""
        frame = Frame(
            sender=self.node_id,
            payload=payload,
            size_bytes=size_bytes,
            kind=kind,
            protocol=protocol,
        )
        return self.send(frame)

    def unicast(self, destination: str, payload, size_bytes: int, kind: str, protocol: str = "") -> float:
        """Convenience helper to send a link-layer unicast frame."""
        frame = Frame(
            sender=self.node_id,
            payload=payload,
            size_bytes=size_bytes,
            kind=kind,
            protocol=protocol,
            destination=destination,
        )
        return self.send(frame)

    # ------------------------------------------------------------- receiving
    def deliver(self, frame: Frame) -> None:
        """Called by the medium when a frame is successfully received."""
        addressed_to_me = frame.is_broadcast or frame.destination == self.node_id
        if addressed_to_me:
            self.stats.frames_received += 1
            if self.on_receive is not None:
                self.on_receive(frame)
        else:
            self.stats.frames_overheard += 1
            if self.on_overhear is not None:
                self.on_overhear(frame)

    def neighbours(self) -> list[str]:
        """Node ids currently within range."""
        return self.medium.neighbours_of(self.node_id)
