"""Spatial neighbor indexes for the wireless medium.

Every frame a node transmits must be delivered to the radios within WiFi
range at that moment, so neighbor resolution sits on the hottest path of the
whole simulator.  Two interchangeable backends answer the query "which
attached radios are within ``radius`` metres of ``node_id`` at ``time``":

* :class:`BruteForceNeighborIndex` — the reference implementation: an O(N)
  scan over every attached radio, exactly what the medium did historically.
* :class:`GridNeighborIndex` — a uniform-grid bucket index.  Node positions
  are snapshotted into square cells and the snapshot stays valid for a
  window of simulated time; a query only inspects the cells a disk of radius
  ``radius + speed_bound * drift`` can touch, then filters candidates with
  exact positions.  Because nodes cannot outrun the mobility model's
  :meth:`~repro.mobility.base.MobilityModel.speed_bound`, the cell scan can
  never miss a true neighbor, so the two backends return *identical* results
  (the equivalence is asserted property-style in the test suite).

Both backends share a :class:`~repro.mobility.base.PositionCache` so that
repeated position lookups at one timestamp (sender plus candidates, frame
after frame) hit memoized answers, and both order their results by radio
attach order so that reception events are scheduled in the same order — a
requirement for run results to be bit-identical across backends.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from repro.mobility.base import MobilityModel, PositionCache

#: Default validity window (simulated seconds) of one grid snapshot.
DEFAULT_REBUILD_INTERVAL = 1.0


class NeighborIndex:
    """Base class: tracks attached node ids and answers range queries."""

    def __init__(self, mobility: MobilityModel):
        self.positions = PositionCache(mobility)
        self._attach_order: Dict[str, int] = {}
        self._next_sequence = 0
        self._node_ids_cache: Optional[Tuple[str, ...]] = None

    # ------------------------------------------------------------ membership
    def attach(self, node_id: str) -> None:
        self._attach_order[node_id] = self._next_sequence
        self._next_sequence += 1
        self._node_ids_cache = None

    def detach(self, node_id: str) -> None:
        self._attach_order.pop(node_id, None)
        self._node_ids_cache = None

    @property
    def node_ids(self) -> Tuple[str, ...]:
        """Attached node ids (cached tuple, invalidated on attach/detach)."""
        if self._node_ids_cache is None:
            self._node_ids_cache = tuple(self._attach_order)
        return self._node_ids_cache

    # --------------------------------------------------------------- queries
    def neighbors(self, node_id: str, radius: float, time: float) -> List[str]:
        """Attached nodes within ``radius`` of ``node_id`` at ``time``.

        Excludes ``node_id`` itself; ordered by attach order.
        """
        raise NotImplementedError


class BruteForceNeighborIndex(NeighborIndex):
    """Reference backend: compare against every attached radio."""

    def neighbors(self, node_id: str, radius: float, time: float) -> List[str]:
        position = self.positions.position
        origin = position(node_id, time)
        origin_x, origin_y = origin.x, origin.y
        radius_sq = radius * radius
        nearby = []
        for other_id in self._attach_order:
            if other_id == node_id:
                continue
            other = position(other_id, time)
            dx = other.x - origin_x
            dy = other.y - origin_y
            if dx * dx + dy * dy <= radius_sq:
                nearby.append(other_id)
        return nearby


class GridNeighborIndex(NeighborIndex):
    """Uniform-grid bucket index with a drift-bounded snapshot.

    Parameters
    ----------
    mobility:
        The mobility model shared with the medium.
    cell_size:
        Edge length of one square cell in metres.  A good default is the
        channel's WiFi range: a query then touches at most ~3x3 cells.
    rebuild_interval:
        How long (simulated seconds) one snapshot stays valid.  Larger
        values rebuild less often but scan wider rings (the slack grows with
        ``speed_bound * age``).
    """

    def __init__(
        self,
        mobility: MobilityModel,
        cell_size: float,
        rebuild_interval: float = DEFAULT_REBUILD_INTERVAL,
    ):
        super().__init__(mobility)
        if cell_size <= 0:
            raise ValueError("cell_size must be positive")
        if rebuild_interval <= 0:
            raise ValueError("rebuild_interval must be positive")
        self.cell_size = cell_size
        self.rebuild_interval = rebuild_interval
        # Bound methods hoisted out of the per-transmission query path.
        self._position_xy = mobility.position_xy
        self._positions_at = mobility.positions_at
        self._mobility_version = mobility.mobility_version
        # Buckets hold (attach_seq, node_id, x, y) so a query never touches
        # a per-candidate dict: coordinates and sort key travel with the id.
        self._cells: Dict[Tuple[int, int], List[Tuple[int, str, float, float]]] = {}
        self._snapshot_time: Optional[float] = None
        self._snapshot_speed = math.inf
        self._snapshot_version = -1
        self.rebuilds = 0

    # ------------------------------------------------------------ membership
    def attach(self, node_id: str) -> None:
        super().attach(node_id)
        self._snapshot_time = None

    def detach(self, node_id: str) -> None:
        super().detach(node_id)
        self._snapshot_time = None

    # --------------------------------------------------------------- queries
    def neighbors(self, node_id: str, radius: float, time: float) -> List[str]:
        # Queries arrive at ever-new timestamps (one per transmission), so
        # the per-timestamp PositionCache almost never hits here; going
        # straight to the model's leg-cached position_xy (bit-identical
        # floats, no Position allocation) is cheaper for both the origin
        # and the uncertain-ring exact checks below.
        position_xy = self._position_xy
        origin_x, origin_y = position_xy(node_id, time)
        # The epsilon widens the uncertain ring by a hair so float rounding in
        # the drift bound can never flip a borderline node past the exact check.
        slack = self._ensure_snapshot(time) + 1e-9 * (1.0 + radius)
        reach = radius + slack
        cell = self.cell_size
        min_cx = math.floor((origin_x - reach) / cell)
        max_cx = math.floor((origin_x + reach) / cell)
        min_cy = math.floor((origin_y - reach) / cell)
        max_cy = math.floor((origin_y + reach) / cell)
        # A candidate's true position lies within ``slack`` of its snapshot
        # position, so the snapshot distance classifies most nodes without
        # touching the mobility model: certainly in range below the inner
        # ring, certainly out beyond the outer ring, exact check between.
        inner = radius - slack
        inner_sq = inner * inner if inner > 0.0 else -1.0
        outer_sq = reach * reach
        radius_sq = radius * radius
        cells = self._cells
        nearby = []
        for cx in range(min_cx, max_cx + 1):
            for cy in range(min_cy, max_cy + 1):
                bucket = cells.get((cx, cy))
                if bucket is None:
                    continue
                for candidate in bucket:
                    other_id = candidate[1]
                    if other_id == node_id:
                        continue
                    dx = candidate[2] - origin_x
                    dy = candidate[3] - origin_y
                    snap_sq = dx * dx + dy * dy
                    if snap_sq <= inner_sq:
                        nearby.append(candidate)
                        continue
                    if snap_sq > outer_sq:
                        continue
                    other_x, other_y = position_xy(other_id, time)
                    dx = other_x - origin_x
                    dy = other_y - origin_y
                    if dx * dx + dy * dy <= radius_sq:
                        nearby.append(candidate)
        # Reception events must be scheduled in attach order regardless of
        # which cell a neighbor fell in, so runs match the reference backend;
        # the attach sequence leads each bucket tuple, so sorting the tuples
        # sorts by attach order without any key function.
        if len(nearby) > 1:
            nearby.sort()
        return [candidate[1] for candidate in nearby]

    # -------------------------------------------------------------- internal
    def _ensure_snapshot(self, time: float) -> float:
        """(Re)build the snapshot if stale; return the current drift slack.

        Staleness has three triggers: age beyond the rebuild window, a
        mobility mutation (teleport / new node — the version check), or
        membership change (attach/detach reset ``_snapshot_time``).
        """
        snapshot_time = self._snapshot_time
        if snapshot_time is not None and self._mobility_version() == self._snapshot_version:
            age = abs(time - snapshot_time)
            if age == 0.0:
                return 0.0
            speed = self._snapshot_speed
            if math.isfinite(speed) and age <= self.rebuild_interval:
                return speed * age
        # Rebuild: bucket every node's exact position at ``time``.  An
        # unbounded speed (no finite speed_bound) degrades gracefully to a
        # rebuild at every new timestamp with zero slack.  The batched
        # positions_at query avoids allocating one Position per node.
        node_ids = self.node_ids
        coords = self._positions_at(node_ids, time)
        cell = self.cell_size
        floor = math.floor
        attach_order = self._attach_order
        cells: Dict[Tuple[int, int], List[Tuple[int, str, float, float]]] = {}
        for other_id, (x, y) in zip(node_ids, coords):
            key = (floor(x / cell), floor(y / cell))
            entry = (attach_order[other_id], other_id, x, y)
            bucket = cells.get(key)
            if bucket is None:
                cells[key] = [entry]
            else:
                bucket.append(entry)
        self._cells = cells
        self._snapshot_time = time
        # The bound can only change when membership changes, which already
        # invalidates the snapshot — sampling it here keeps queries O(cells).
        self._snapshot_speed = self.positions.speed_bound()
        self._snapshot_version = self.positions.mobility_version()
        self.rebuilds += 1
        return 0.0


def build_neighbor_index(
    config, mobility: MobilityModel, max_range: Optional[float] = None
) -> NeighborIndex:
    """Instantiate the backend selected by a :class:`ChannelConfig`.

    ``max_range`` is the true reach of the configured propagation model
    (``ChannelConfig.max_range()``); the default grid cell is sized from it
    rather than from ``wifi_range``, which under-sizes cells for models
    that reach beyond the nominal range (e.g. ``log_distance``).
    """
    backend = getattr(config, "neighbor_index", "grid")
    if backend == "brute":
        return BruteForceNeighborIndex(mobility)
    if backend == "grid":
        cell_size = config.index_cell_size
        if cell_size is None:
            if max_range is None:
                max_range = getattr(config, "max_range", lambda: config.wifi_range)()
            cell_size = max_range
        return GridNeighborIndex(
            mobility,
            cell_size=cell_size,
            rebuild_interval=config.index_rebuild_interval,
        )
    raise ValueError(f"unknown neighbor index backend {backend!r}")
