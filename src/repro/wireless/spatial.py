"""Spatial neighbor indexes for the wireless medium.

Every frame a node transmits must be delivered to the radios within WiFi
range at that moment, so neighbor resolution sits on the hottest path of the
whole simulator.  Two interchangeable backends answer the query "which
attached radios are within ``radius`` metres of ``node_id`` at ``time``":

* :class:`BruteForceNeighborIndex` — the reference implementation: an O(N)
  scan over every attached radio, exactly what the medium did historically.
* :class:`GridNeighborIndex` — a uniform-grid bucket index.  Node positions
  are snapshotted into square cells and the snapshot stays valid for a
  window of simulated time; a query only inspects the cells a disk of radius
  ``radius + speed_bound * drift`` can touch, then filters candidates with
  exact positions.  Because nodes cannot outrun the mobility model's
  :meth:`~repro.mobility.base.MobilityModel.speed_bound`, the cell scan can
  never miss a true neighbor, so the two backends return *identical* results
  (the equivalence is asserted property-style in the test suite).

Both backends share a :class:`~repro.mobility.base.PositionCache` so that
repeated position lookups at one timestamp (sender plus candidates, frame
after frame) hit memoized answers, and both order their results by radio
attach order so that reception events are scheduled in the same order — a
requirement for run results to be bit-identical across backends.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from repro.arrays import numpy_or_none, resolve_array_backend
from repro.mobility.base import MobilityModel, PositionCache

#: Default validity window (simulated seconds) of one grid snapshot.
DEFAULT_REBUILD_INTERVAL = 1.0


class NeighborIndex:
    """Base class: tracks attached node ids and answers range queries."""

    def __init__(self, mobility: MobilityModel):
        self.positions = PositionCache(mobility)
        self._attach_order: Dict[str, int] = {}
        self._next_sequence = 0
        self._node_ids_cache: Optional[Tuple[str, ...]] = None

    # ------------------------------------------------------------ membership
    def attach(self, node_id: str) -> None:
        self._attach_order[node_id] = self._next_sequence
        self._next_sequence += 1
        self._node_ids_cache = None

    def detach(self, node_id: str) -> None:
        self._attach_order.pop(node_id, None)
        self._node_ids_cache = None

    @property
    def node_ids(self) -> Tuple[str, ...]:
        """Attached node ids (cached tuple, invalidated on attach/detach)."""
        if self._node_ids_cache is None:
            self._node_ids_cache = tuple(self._attach_order)
        return self._node_ids_cache

    # --------------------------------------------------------------- queries
    def neighbors(self, node_id: str, radius: float, time: float) -> List[str]:
        """Attached nodes within ``radius`` of ``node_id`` at ``time``.

        Excludes ``node_id`` itself; ordered by attach order.
        """
        raise NotImplementedError


class BruteForceNeighborIndex(NeighborIndex):
    """Reference backend: compare against every attached radio."""

    def neighbors(self, node_id: str, radius: float, time: float) -> List[str]:
        position = self.positions.position
        origin = position(node_id, time)
        origin_x, origin_y = origin.x, origin.y
        radius_sq = radius * radius
        nearby = []
        for other_id in self._attach_order:
            if other_id == node_id:
                continue
            other = position(other_id, time)
            dx = other.x - origin_x
            dy = other.y - origin_y
            if dx * dx + dy * dy <= radius_sq:
                nearby.append(other_id)
        return nearby


class GridNeighborIndex(NeighborIndex):
    """Uniform-grid bucket index with a drift-bounded snapshot.

    Parameters
    ----------
    mobility:
        The mobility model shared with the medium.
    cell_size:
        Edge length of one square cell in metres.  A good default is the
        channel's WiFi range: a query then touches at most ~3x3 cells.
    rebuild_interval:
        How long (simulated seconds) one snapshot stays valid.  Larger
        values rebuild less often but scan wider rings (the slack grows with
        ``speed_bound * age``).
    """

    def __init__(
        self,
        mobility: MobilityModel,
        cell_size: float,
        rebuild_interval: float = DEFAULT_REBUILD_INTERVAL,
    ):
        super().__init__(mobility)
        if cell_size <= 0:
            raise ValueError("cell_size must be positive")
        if rebuild_interval <= 0:
            raise ValueError("rebuild_interval must be positive")
        self.cell_size = cell_size
        self.rebuild_interval = rebuild_interval
        # Bound methods hoisted out of the per-transmission query path.
        self._position_xy = mobility.position_xy
        self._positions_at = mobility.positions_at
        self._mobility_version = mobility.mobility_version
        # Buckets hold (attach_seq, node_id, x, y) so a query never touches
        # a per-candidate dict: coordinates and sort key travel with the id.
        self._cells: Dict[Tuple[int, int], List[Tuple[int, str, float, float]]] = {}
        self._snapshot_time: Optional[float] = None
        self._snapshot_speed = math.inf
        self._snapshot_version = -1
        self.rebuilds = 0

    # ------------------------------------------------------------ membership
    def attach(self, node_id: str) -> None:
        super().attach(node_id)
        self._snapshot_time = None

    def detach(self, node_id: str) -> None:
        super().detach(node_id)
        self._snapshot_time = None

    # --------------------------------------------------------------- queries
    def neighbors(self, node_id: str, radius: float, time: float) -> List[str]:
        # Queries arrive at ever-new timestamps (one per transmission), so
        # the per-timestamp PositionCache almost never hits here; going
        # straight to the model's leg-cached position_xy (bit-identical
        # floats, no Position allocation) is cheaper for both the origin
        # and the uncertain-ring exact checks below.
        position_xy = self._position_xy
        origin_x, origin_y = position_xy(node_id, time)
        # The epsilon widens the uncertain ring by a hair so float rounding in
        # the drift bound can never flip a borderline node past the exact check.
        slack = self._ensure_snapshot(time) + 1e-9 * (1.0 + radius)
        reach = radius + slack
        cell = self.cell_size
        min_cx = math.floor((origin_x - reach) / cell)
        max_cx = math.floor((origin_x + reach) / cell)
        min_cy = math.floor((origin_y - reach) / cell)
        max_cy = math.floor((origin_y + reach) / cell)
        # A candidate's true position lies within ``slack`` of its snapshot
        # position, so the snapshot distance classifies most nodes without
        # touching the mobility model: certainly in range below the inner
        # ring, certainly out beyond the outer ring, exact check between.
        inner = radius - slack
        inner_sq = inner * inner if inner > 0.0 else -1.0
        outer_sq = reach * reach
        radius_sq = radius * radius
        cells = self._cells
        nearby = []
        for cx in range(min_cx, max_cx + 1):
            for cy in range(min_cy, max_cy + 1):
                bucket = cells.get((cx, cy))
                if bucket is None:
                    continue
                for candidate in bucket:
                    other_id = candidate[1]
                    if other_id == node_id:
                        continue
                    dx = candidate[2] - origin_x
                    dy = candidate[3] - origin_y
                    snap_sq = dx * dx + dy * dy
                    if snap_sq <= inner_sq:
                        nearby.append(candidate)
                        continue
                    if snap_sq > outer_sq:
                        continue
                    other_x, other_y = position_xy(other_id, time)
                    dx = other_x - origin_x
                    dy = other_y - origin_y
                    if dx * dx + dy * dy <= radius_sq:
                        nearby.append(candidate)
        # Reception events must be scheduled in attach order regardless of
        # which cell a neighbor fell in, so runs match the reference backend;
        # the attach sequence leads each bucket tuple, so sorting the tuples
        # sorts by attach order without any key function.
        if len(nearby) > 1:
            nearby.sort()
        return [candidate[1] for candidate in nearby]

    # -------------------------------------------------------------- internal
    def _ensure_snapshot(self, time: float) -> float:
        """(Re)build the snapshot if stale; return the current drift slack.

        Staleness has three triggers: age beyond the rebuild window, a
        mobility mutation (teleport / new node — the version check), or
        membership change (attach/detach reset ``_snapshot_time``).
        """
        snapshot_time = self._snapshot_time
        if snapshot_time is not None and self._mobility_version() == self._snapshot_version:
            age = abs(time - snapshot_time)
            if age == 0.0:
                return 0.0
            speed = self._snapshot_speed
            if math.isfinite(speed) and age <= self.rebuild_interval:
                return speed * age
        # An unbounded speed (no finite speed_bound) degrades gracefully to a
        # rebuild at every new timestamp with zero slack.
        self._rebuild(time)
        self._snapshot_time = time
        # The bound can only change when membership changes, which already
        # invalidates the snapshot — sampling it here keeps queries O(cells).
        self._snapshot_speed = self.positions.speed_bound()
        self._snapshot_version = self.positions.mobility_version()
        self.rebuilds += 1
        return 0.0

    def _rebuild(self, time: float) -> None:
        """Bucket every node's exact position at ``time``.

        The batched positions_at query avoids allocating one Position per
        node.  Subclasses override this with alternative snapshot layouts.
        """
        node_ids = self.node_ids
        coords = self._positions_at(node_ids, time)
        cell = self.cell_size
        floor = math.floor
        attach_order = self._attach_order
        cells: Dict[Tuple[int, int], List[Tuple[int, str, float, float]]] = {}
        for other_id, (x, y) in zip(node_ids, coords):
            key = (floor(x / cell), floor(y / cell))
            entry = (attach_order[other_id], other_id, x, y)
            bucket = cells.get(key)
            if bucket is None:
                cells[key] = [entry]
            else:
                bucket.append(entry)
        self._cells = cells


class ArrayGridNeighborIndex(GridNeighborIndex):
    """Array-native grid index: NumPy snapshot, vectorized classification.

    Same drift-bounded snapshot contract (and therefore the same results) as
    :class:`GridNeighborIndex`, with a population-adaptive strategy (both
    modes are result-identical to the scalar backends):

    * ``N < scalar_query_limit`` — behaves exactly like the parent scalar
      grid.  NumPy's fixed per-call costs (array allocation, mask
      evaluation) outweigh a handful of leg-cached scalar lookups at small
      populations — measured on the fig9a benchmark config, the scalar
      loops win well past 50 nodes — so vectorizing there would *cost*
      throughput.
    * larger ``N`` — the snapshot becomes one
      :meth:`~repro.mobility.base.MobilityModel.positions_array` call into
      contiguous ``(N, 2)`` coordinates plus vectorized cell bucketing:
      ``floor`` into integer cell coordinates, encode ``(cx, cy)`` into one
      int64, stable-argsort so each cell's rows stay in attach order, then
      answer queries with two ``searchsorted`` calls per touched cell and
      fused squared-distance classification masks.

    The uncertain ring (snapshot distance between ``inner`` and ``outer``)
    still does exact per-node position checks through the same scalar
    ``position_xy`` the oracle uses — bit-identical floats by contract.
    ``scalar_query_limit=1`` forces the vectorized machinery at any size
    (``neighbor_index="grid_array"`` requests exactly that).
    """

    #: Injective (cx, cy) -> int64 encoding stride (|cx|, |cy| < 2**31).
    _CELL_STRIDE = 1 << 32

    def __init__(
        self,
        mobility: MobilityModel,
        cell_size: float,
        rebuild_interval: float = DEFAULT_REBUILD_INTERVAL,
        scalar_query_limit: int = 256,
    ):
        super().__init__(mobility, cell_size, rebuild_interval)
        np = numpy_or_none()
        if np is None:
            raise RuntimeError(
                "ArrayGridNeighborIndex requires NumPy; use GridNeighborIndex "
                "on the scalar path (see repro.arrays.resolve_array_backend)"
            )
        self._np = np
        self.scalar_query_limit = scalar_query_limit
        self._positions_array = mobility.positions_array
        self.array_rebuilds = 0
        self._snap_order: Tuple[str, ...] = ()
        self._snap_pos = None
        self._row_of: Dict[str, int] = {}
        self._sorted_codes = None
        self._sorted_rows = None
        self._scalar_strategy = True

    # ------------------------------------------------------------ membership
    # The query strategy depends only on the population size, which only
    # changes on attach/detach — deciding it here keeps the per-query
    # dispatch to a single attribute check (no double snapshot validation).
    def attach(self, node_id: str) -> None:
        super().attach(node_id)
        self._scalar_strategy = len(self._attach_order) < self.scalar_query_limit

    def detach(self, node_id: str) -> None:
        super().detach(node_id)
        self._scalar_strategy = len(self._attach_order) < self.scalar_query_limit

    def _rebuild(self, time: float) -> None:
        if self._scalar_strategy:
            # Small population: the scalar rebuild + bucket query is the
            # measured winner (NumPy's fixed per-call costs — array
            # allocation, mask evaluation, flatnonzero — outweigh a dozen
            # leg-cached position lookups), so below the threshold this
            # index IS the scalar grid, bit for bit and microsecond for
            # microsecond.  ``array_rebuilds`` counts only vectorized
            # snapshots, so profiles show which strategy actually ran.
            super()._rebuild(time)
            return
        np = self._np
        order = self.node_ids
        pos = self._positions_array(order, time)
        self._snap_order = order
        self._snap_pos = pos
        if len(order) != len(self._row_of) or order != tuple(self._row_of):
            self._row_of = {node_id: row for row, node_id in enumerate(order)}
        # floor(x / cell) per axis, encoded into one int64 per node; a
        # stable argsort keeps each cell's rows in attach order (row index
        # == attach order: node_ids iterates in attach sequence).
        cells = np.floor(pos / self.cell_size).astype(np.int64)
        codes = cells[:, 0] * self._CELL_STRIDE + cells[:, 1]
        rows = np.argsort(codes, kind="stable")
        self._sorted_codes = codes[rows]
        self._sorted_rows = rows
        self.array_rebuilds += 1

    def neighbors(self, node_id: str, radius: float, time: float) -> List[str]:
        if self._scalar_strategy:
            # The parent's bucket loop (including its own staleness check,
            # which lands in our _rebuild and therefore scans positions_array
            # coordinates) — the vectorized query's fixed per-call NumPy
            # overhead loses to it below scalar_query_limit nodes.
            return super().neighbors(node_id, radius, time)
        np = self._np
        position_xy = self._position_xy
        origin_x, origin_y = position_xy(node_id, time)
        # Identical slack / ring arithmetic to GridNeighborIndex.neighbors —
        # the classification thresholds must match the scalar oracle bit for
        # bit for the two backends to return identical node sets.
        slack = self._ensure_snapshot(time) + 1e-9 * (1.0 + radius)
        reach = radius + slack
        inner = radius - slack
        inner_sq = inner * inner if inner > 0.0 else -1.0
        outer_sq = reach * reach
        radius_sq = radius * radius
        order = self._snap_order
        cell = self.cell_size
        min_cx = math.floor((origin_x - reach) / cell)
        max_cx = math.floor((origin_x + reach) / cell)
        min_cy = math.floor((origin_y - reach) / cell)
        max_cy = math.floor((origin_y + reach) / cell)
        stride = self._CELL_STRIDE
        codes = np.asarray(
            [
                cx * stride + cy
                for cx in range(min_cx, max_cx + 1)
                for cy in range(min_cy, max_cy + 1)
            ],
            dtype=np.int64,
        )
        sorted_codes = self._sorted_codes
        left = np.searchsorted(sorted_codes, codes, side="left")
        right = np.searchsorted(sorted_codes, codes, side="right")
        spans = [
            self._sorted_rows[lo:hi] for lo, hi in zip(left, right) if hi > lo
        ]
        if not spans:
            return []
        rows = np.concatenate(spans)
        pos = self._snap_pos[rows]
        dx = pos[:, 0] - origin_x
        dy = pos[:, 1] - origin_y
        snap_sq = dx * dx + dy * dy
        certain = snap_sq <= inner_sq
        uncertain = (snap_sq <= outer_sq) & ~certain
        for index in np.flatnonzero(uncertain):
            other_id = order[rows[index]]
            if other_id == node_id:
                continue
            other_x, other_y = position_xy(other_id, time)
            ex = other_x - origin_x
            ey = other_y - origin_y
            if ex * ex + ey * ey <= radius_sq:
                certain[index] = True
        selected = np.flatnonzero(certain)
        selected = np.sort(rows[selected])
        self_row = self._row_of.get(node_id)
        return [
            order[row]
            for row in selected
            if row != self_row
        ]


def build_neighbor_index(
    config, mobility: MobilityModel, max_range: Optional[float] = None
) -> NeighborIndex:
    """Instantiate the backend selected by a :class:`ChannelConfig`.

    ``max_range`` is the true reach of the configured propagation model
    (``ChannelConfig.max_range()``); the default grid cell is sized from it
    rather than from ``wifi_range``, which under-sizes cells for models
    that reach beyond the nominal range (e.g. ``log_distance``).
    """
    backend = getattr(config, "neighbor_index", "grid")
    if backend == "brute":
        return BruteForceNeighborIndex(mobility)
    if backend in ("grid", "grid_array"):
        cell_size = config.index_cell_size
        if cell_size is None:
            if max_range is None:
                max_range = getattr(config, "max_range", lambda: config.wifi_range)()
            cell_size = max_range
        # ``grid`` auto-upgrades to the array-native index when the resolved
        # array backend is NumPy (population-adaptive: it vectorizes only
        # once the world is big enough to pay off); ``grid_array`` asks for
        # the vectorized machinery explicitly at any size (and degrades to
        # the scalar grid — with resolve's warning — without NumPy).  All
        # combinations return identical neighbor sets.
        array_choice = getattr(config, "array_backend", "auto")
        if backend == "grid_array" and array_choice == "auto":
            array_choice = "numpy"
        use_array = resolve_array_backend(array_choice) == "numpy"
        # The adaptive crossover is tunable per-experiment
        # (ChannelConfig.scalar_query_limit); the measured defaults stay
        # 256 for "grid" and 1 (always vectorize) for "grid_array".
        scalar_query_limit = getattr(config, "scalar_query_limit", None)
        if scalar_query_limit is None:
            scalar_query_limit = 1 if backend == "grid_array" else 256
        shards = getattr(config, "shards", 1)
        if shards > 1:
            from repro.wireless.sharded import ShardedNeighborIndex, partition_for_config

            epoch = getattr(config, "shard_epoch", None)
            if epoch is None:
                epoch = config.index_rebuild_interval
            return ShardedNeighborIndex(
                mobility,
                cell_size=cell_size,
                shards=shards,
                region_width=partition_for_config(config, max_range).region_width,
                epoch=epoch,
                use_array=use_array,
                scalar_query_limit=scalar_query_limit,
                workers=getattr(config, "shard_workers", 1),
                executor=getattr(config, "shard_executor", "thread"),
            )
        if use_array:
            return ArrayGridNeighborIndex(
                mobility,
                cell_size=cell_size,
                rebuild_interval=config.index_rebuild_interval,
                scalar_query_limit=scalar_query_limit,
            )
        return GridNeighborIndex(
            mobility,
            cell_size=cell_size,
            rebuild_interval=config.index_rebuild_interval,
        )
    raise ValueError(f"unknown neighbor index backend {backend!r}")
