"""Pluggable radio propagation models.

Historically the medium hard-coded one physics: a unit disk of radius
``ChannelConfig.wifi_range`` with a uniform Bernoulli loss on top.  This
module turns that into a registry of :class:`PropagationModel` backends
selected by ``ChannelConfig.propagation``:

``unit_disk`` (default)
    The seed semantics, byte-identical: every node within the sender's
    nominal range hears the frame, nothing beyond it does, and no extra
    per-link loss applies.
``log_distance``
    Distance-dependent link quality: the loss probability of a link grows
    as ``(d_eff / max_range) ** exponent`` where ``d_eff`` is the distance
    scaled by a per-link log-normal shadowing factor.  Shadowing is
    *query-order independent*: each unordered node pair's factor is derived
    by hashing the pair against a salt drawn once from the named
    ``wireless.shadowing`` RNG stream, so grid and brute spatial backends
    (which evaluate different candidate sets) see identical links.
``obstacle``
    Unit-disk reach filtered by ray–segment occlusion against an
    :class:`~repro.wireless.environment.Environment`: links whose
    line-of-sight crosses a wall are unreachable (or suffer
    ``occluded_loss`` when configured).  Occlusion results are memoized per
    node pair, validated by the endpoints' coordinates and invalidated
    wholesale when the mobility model's version changes.

The contract every backend implements:

* :meth:`PropagationModel.max_range` — the furthest distance at which a
  link can possibly be reachable given the sender's nominal range.  The
  medium sizes grid cells with it and queries the spatial index at it, then
  filters the candidates through the model.
* :meth:`PropagationModel.link_quality` — per-link verdict: an extra loss
  probability in ``[0, 1)`` or ``None`` when the link is unreachable.

Models whose :attr:`~PropagationModel.trivial` flag is true (only
``unit_disk``) let the medium skip per-link evaluation entirely, keeping
the default configuration on the exact seed hot path.
"""

from __future__ import annotations

import hashlib
import math
import random
from typing import Dict, List, Mapping, Optional, Tuple, Type

from repro.wireless.environment import Environment

_PROPAGATION: Dict[str, Type["PropagationModel"]] = {}


def register_propagation(name: str):
    """Class decorator: make a :class:`PropagationModel` available under ``name``."""

    def decorator(cls: Type["PropagationModel"]) -> Type["PropagationModel"]:
        if name in _PROPAGATION:
            raise ValueError(f"propagation model {name!r} is already registered")
        cls.name = name
        _PROPAGATION[name] = cls
        return cls

    return decorator


def available_propagation_models() -> List[str]:
    """Names of all registered propagation models."""
    return sorted(_PROPAGATION)


def propagation_class(name: str) -> Type["PropagationModel"]:
    """Resolve a registered propagation model class by name."""
    try:
        return _PROPAGATION[name]
    except KeyError:
        raise ValueError(
            f"unknown propagation model {name!r}; available: {available_propagation_models()}"
        ) from None


def validate_propagation(name: str, params: Mapping[str, object]) -> None:
    """Raise ``ValueError`` on an unknown model or inconsistent parameters.

    Called by ``ChannelConfig.__post_init__`` so misconfigurations fail at
    config construction, long before a medium exists.
    """
    propagation_class(name).validate_params(params)


def propagation_max_range(name: str, params: Mapping[str, object], nominal_range: float) -> float:
    """Config-level max range of a model, without instantiating a medium.

    The spatial index derives its default grid cell size from this, so cell
    sizing follows the *true* reach of the configured physics rather than
    assuming ``wifi_range`` is it.
    """
    cls = propagation_class(name)
    return cls(params).max_range(nominal_range)


def build_propagation(
    config,
    sim=None,
    environment: Optional[Environment] = None,
    mobility=None,
) -> "PropagationModel":
    """Instantiate and bind the backend selected by a ``ChannelConfig``."""
    cls = propagation_class(getattr(config, "propagation", "unit_disk"))
    model = cls(getattr(config, "propagation_params", None) or {})
    model.bind(sim=sim, environment=environment, mobility=mobility)
    return model


class PropagationModel:
    """Per-link radio physics: reachability and extra loss probability.

    Subclasses declare their accepted parameters in :attr:`PARAMS`
    (name → ``(default, validator)``); unknown or invalid parameters raise
    at config validation time.
    """

    name: str = ""
    #: name -> (default value, validator returning an error string or None)
    PARAMS: Dict[str, Tuple[object, object]] = {}
    #: Trivial models deliver to every index candidate with no extra loss,
    #: letting the medium bypass per-link evaluation (the seed hot path).
    trivial = False

    def __init__(self, params: Optional[Mapping[str, object]] = None):
        params = dict(params or {})
        self.validate_params(params)
        for key, (default, _validator) in self.PARAMS.items():
            setattr(self, key, params.get(key, default))
        self.sim = None
        self.environment: Optional[Environment] = None
        self.mobility = None

    @classmethod
    def validate_params(cls, params: Mapping[str, object]) -> None:
        """Raise ``ValueError`` on unknown keys or out-of-range values."""
        unknown = set(params) - set(cls.PARAMS)
        if unknown:
            accepted = sorted(cls.PARAMS) or ["(none)"]
            raise ValueError(
                f"propagation model {cls.name!r} does not accept parameter(s) "
                f"{sorted(unknown)}; accepted: {accepted}"
            )
        for key, value in params.items():
            _default, validator = cls.PARAMS[key]
            error = validator(value) if validator is not None else None
            if error:
                raise ValueError(f"propagation parameter {key!r}: {error} (got {value!r})")

    def bind(self, sim=None, environment: Optional[Environment] = None, mobility=None) -> None:
        """Attach the simulation context (RNG streams, environment, mobility)."""
        self.sim = sim
        self.environment = environment
        self.mobility = mobility

    # ------------------------------------------------------------- contract
    def max_range(self, nominal_range: float) -> float:
        """Furthest distance at which a link can be reachable."""
        return nominal_range

    def link_quality(
        self,
        sender_xy: Tuple[float, float],
        receiver_xy: Tuple[float, float],
        distance: float,
        nominal_range: float,
        rng: random.Random,
        link: Tuple[str, str] = ("", ""),
    ) -> Optional[float]:
        """Extra loss probability of the link in ``[0, 1)``, or ``None``.

        ``None`` means the link is unreachable: the receiver neither hears
        the frame nor senses the channel busy.  ``link`` carries the
        ``(sender_id, receiver_id)`` pair for models that memoize per-pair
        state; ``rng`` is the medium's link RNG for models that need draws
        at evaluation time (none of the built-ins do — determinism and
        query-order independence are part of the contract).
        """
        raise NotImplementedError

    def link_quality_array(self, np, sender_id, receiver_ids, distances, nominal_range):
        """Batched :meth:`link_quality` over one sender's candidate set.

        ``distances`` is a float64 array aligned with ``receiver_ids``
        (computed by the medium from the mobility model's batched
        positions).  Returns a list aligned with ``receiver_ids`` — loss in
        ``[0, 1)`` or ``None`` per candidate, bit-identical to calling
        :meth:`link_quality` per pair — or ``None`` when the model only
        supports per-pair evaluation (geometry-dependent models like
        ``obstacle`` need the endpoint coordinates and fall back).  Only
        models that never draw from the link RNG may opt in.
        """
        return None


def _positive(value) -> Optional[str]:
    if not isinstance(value, (int, float)) or not value > 0:
        return "must be a positive number"
    return None


def _non_negative(value) -> Optional[str]:
    if not isinstance(value, (int, float)) or value < 0:
        return "must be a non-negative number"
    return None


def _loss_probability(value) -> Optional[str]:
    if not isinstance(value, (int, float)) or not 0.0 <= value < 1.0:
        return "must be a probability in [0, 1)"
    return None


def _cutoff(value) -> Optional[str]:
    if not isinstance(value, (int, float)) or not value >= 1.0:
        return "must be >= 1 (a factor over the nominal range)"
    return None


@register_propagation("unit_disk")
class UnitDiskPropagation(PropagationModel):
    """The seed physics: perfect reception within range, nothing beyond."""

    trivial = True

    def link_quality(self, sender_xy, receiver_xy, distance, nominal_range, rng, link=("", "")):
        return 0.0 if distance <= nominal_range else None

    def link_quality_array(self, np, sender_id, receiver_ids, distances, nominal_range):
        # The medium's trivial fast path normally bypasses link evaluation
        # for unit_disk entirely; this exists for direct callers and keeps
        # the batched contract total over the built-in non-geometric models.
        return [
            0.0 if in_range else None
            for in_range in (distances <= nominal_range).tolist()
        ]


@register_propagation("log_distance")
class LogDistancePropagation(PropagationModel):
    """Distance-dependent loss with deterministic per-pair shadowing.

    Parameters
    ----------
    exponent:
        Path-loss exponent: how steeply loss grows with distance
        (free-space ~2, urban 3-4).
    sigma:
        Standard deviation of the log-normal shadowing factor applied to
        each pair's distance (0 disables shadowing).
    cutoff:
        Hard reachability limit as a factor over the nominal range:
        ``max_range = nominal_range * cutoff``.
    """

    PARAMS = {
        "exponent": (3.0, _positive),
        "sigma": (0.2, _non_negative),
        "cutoff": (1.25, _cutoff),
    }

    def __init__(self, params: Optional[Mapping[str, object]] = None):
        super().__init__(params)
        self._salt: Optional[int] = None
        self._shadow_cache: Dict[Tuple[str, str], float] = {}

    def bind(self, sim=None, environment=None, mobility=None) -> None:
        super().bind(sim=sim, environment=environment, mobility=mobility)
        if sim is not None:
            # One draw from a named stream seeds every per-pair factor; the
            # factors themselves are hashed, not drawn, so evaluating links
            # in any order (or not at all) leaves all other links untouched.
            self._salt = sim.rng("wireless.shadowing").getrandbits(64)
        self._shadow_cache.clear()

    def max_range(self, nominal_range: float) -> float:
        return nominal_range * self.cutoff

    def _shadow_factor(self, node_a: str, node_b: str) -> float:
        if self.sigma == 0.0:
            return 1.0
        key = (node_a, node_b) if node_a <= node_b else (node_b, node_a)
        factor = self._shadow_cache.get(key)
        if factor is None:
            digest = hashlib.sha256(
                f"{self._salt}:{key[0]}:{key[1]}".encode("utf-8")
            ).digest()
            gauss = random.Random(int.from_bytes(digest[:8], "big")).gauss(0.0, self.sigma)
            factor = math.exp(gauss)
            self._shadow_cache[key] = factor
        return factor

    def link_quality(self, sender_xy, receiver_xy, distance, nominal_range, rng, link=("", "")):
        reach = nominal_range * self.cutoff
        if distance > reach:
            # Enforce the max_range contract even for callers that did not
            # prefilter through the spatial index: favourable shadowing must
            # not resurrect links beyond the advertised reach.
            return None
        effective = distance * self._shadow_factor(link[0], link[1])
        if effective >= reach:
            return None
        return (effective / reach) ** self.exponent

    def link_quality_array(self, np, sender_id, receiver_ids, distances, nominal_range):
        reach = nominal_range * self.cutoff
        if self.sigma == 0.0:
            effective = distances
        else:
            # Shadow factors are hashed per pair and memoized, so this loop
            # is a dict gather after the first evaluation of each link.
            factor_of = self._shadow_factor
            factors = np.asarray(
                [factor_of(sender_id, receiver_id) for receiver_id in receiver_ids],
                dtype=np.float64,
            )
            effective = distances * factors
        # Elementwise multiply/divide match the scalar arithmetic bit for
        # bit; the final ``**`` must NOT (np.power's SIMD pow can differ in
        # the last ulp from Python's), so the pow runs on Python floats.
        ratios = (effective / reach).tolist()
        exponent = self.exponent
        return [
            None if distance > reach or eff >= reach else ratio ** exponent
            for distance, eff, ratio in zip(distances.tolist(), effective.tolist(), ratios)
        ]


@register_propagation("obstacle")
class ObstaclePropagation(PropagationModel):
    """Unit-disk reach filtered by line-of-sight against the environment.

    Parameters
    ----------
    occluded_loss:
        Extra loss probability of an occluded link.  The default 1.0 blocks
        occluded links outright (no reception, no carrier sense); values in
        ``[0, 1)`` model lossy wall penetration instead.

    Per-pair only: the model does not implement ``link_quality_array``
    (occlusion depends on the endpoint geometry, not just the distance), so
    the medium's batched link evaluator falls back to per-pair calls.

    Without an environment the model degrades to ``unit_disk`` semantics.
    Occlusion verdicts are memoized per ``(sender, receiver)`` pair — a hit
    requires the stored endpoint coordinates to match exactly, so repeated
    queries at one timestamp (back-to-back frames) and static pairs hit,
    while a moved endpoint misses.  A mobility-version change (teleport,
    new node) drops the whole cache.
    """

    PARAMS = {
        "occluded_loss": (1.0, lambda value: (
            None
            if isinstance(value, (int, float)) and 0.0 <= value <= 1.0
            else "must be in [0, 1] (1 blocks occluded links outright)"
        )),
    }

    def __init__(self, params: Optional[Mapping[str, object]] = None):
        super().__init__(params)
        # (sender, receiver) -> (ax, ay, bx, by, occluded)
        self._occlusion_cache: Dict[Tuple[str, str], Tuple[float, float, float, float, bool]] = {}
        self._cache_version = -1
        self._mobility_version = None
        # Profiling counters (sampled by repro.profiling).
        self.occlusion_checks = 0
        self.occlusion_cache_hits = 0

    def bind(self, sim=None, environment=None, mobility=None) -> None:
        super().bind(sim=sim, environment=environment, mobility=mobility)
        self._mobility_version = getattr(mobility, "mobility_version", None)
        self._occlusion_cache.clear()

    def _occluded(self, link: Tuple[str, str], sender_xy, receiver_xy) -> bool:
        if self._mobility_version is not None:
            version = self._mobility_version()
            if version != self._cache_version:
                self._occlusion_cache.clear()
                self._cache_version = version
        ax, ay = sender_xy
        bx, by = receiver_xy
        key = (link[0], link[1]) if link[0] <= link[1] else (link[1], link[0])
        if key != link:  # occlusion is symmetric; canonicalise the endpoints too
            ax, ay, bx, by = bx, by, ax, ay
        cached = self._occlusion_cache.get(key)
        if cached is not None and cached[0] == ax and cached[1] == ay and cached[2] == bx and cached[3] == by:
            self.occlusion_cache_hits += 1
            return cached[4]
        self.occlusion_checks += 1
        occluded = self.environment.occludes(ax, ay, bx, by)
        self._occlusion_cache[key] = (ax, ay, bx, by, occluded)
        return occluded

    def link_quality(self, sender_xy, receiver_xy, distance, nominal_range, rng, link=("", "")):
        if distance > nominal_range:
            return None
        if self.environment is None or not self.environment:
            return 0.0
        if not self._occluded(link, sender_xy, receiver_xy):
            return 0.0
        if self.occluded_loss >= 1.0:
            return None
        return self.occluded_loss

    @property
    def occlusion_cache_size(self) -> int:
        """Live cache entries (for tests/monitoring)."""
        return len(self._occlusion_cache)
