"""Transmission accounting for the wireless medium.

The paper's "transmissions (overhead)" metric is the number of packets handed
to the radio by all nodes, broken down per protocol component (discovery,
bitmaps, Interest/Data, routing, transport...).  These counters provide that
breakdown.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict


@dataclass
class NodeRadioStats:
    """Per-node radio counters."""

    frames_sent: int = 0
    bytes_sent: int = 0
    frames_received: int = 0
    frames_overheard: int = 0
    frames_lost: int = 0
    frames_collided: int = 0
    sent_by_kind: Dict[str, int] = field(default_factory=lambda: defaultdict(int))

    def record_send(self, kind: str, size_bytes: int) -> None:
        self.frames_sent += 1
        self.bytes_sent += size_bytes
        self.sent_by_kind[kind] += 1


@dataclass
class MediumStats:
    """Medium-wide counters aggregated over every attached radio."""

    frames_transmitted: int = 0
    bytes_transmitted: int = 0
    deliveries: int = 0
    losses: int = 0
    collisions: int = 0
    transmitted_by_kind: Dict[str, int] = field(default_factory=lambda: defaultdict(int))
    transmitted_by_protocol: Dict[str, int] = field(default_factory=lambda: defaultdict(int))

    def record_transmission(self, kind: str, protocol: str, size_bytes: int) -> None:
        self.frames_transmitted += 1
        self.bytes_transmitted += size_bytes
        self.transmitted_by_kind[kind] += 1
        if protocol:
            self.transmitted_by_protocol[protocol] += 1

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict snapshot, convenient for result tables."""
        return {
            "frames_transmitted": self.frames_transmitted,
            "bytes_transmitted": self.bytes_transmitted,
            "deliveries": self.deliveries,
            "losses": self.losses,
            "collisions": self.collisions,
            "transmitted_by_kind": dict(self.transmitted_by_kind),
            "transmitted_by_protocol": dict(self.transmitted_by_protocol),
        }
