"""Render a coordinator status snapshot for the terminal.

The coordinator's ``status`` op returns a JSON-native snapshot (counts,
per-submission progress, the worker table, gated ``cluster.*`` profiling
counters); :func:`render_status` turns one snapshot into the fixed-width
text block ``repro-experiments status`` prints.  Kept separate from the
coordinator so tests can render canned snapshots without a server.
"""

from __future__ import annotations

from typing import Dict, List

from repro.profiling import format_profile

__all__ = ["render_status"]

_STATES = ("pending", "leased", "done", "failed")


def _bar(done: int, total: int, width: int = 24) -> str:
    if total <= 0:
        return "-" * width
    filled = int(round(width * done / total))
    return "#" * filled + "-" * (width - filled)


def render_status(snapshot: Dict[str, object]) -> str:
    """One status snapshot as a human-readable block of text."""
    lines: List[str] = []
    counts = dict(snapshot.get("tasks") or {})
    total = sum(int(counts.get(state, 0)) for state in _STATES)
    done = int(counts.get("done", 0))
    lines.append(
        f"coordinator {snapshot.get('coordinator', '?')}  "
        f"(up {float(snapshot.get('uptime_s', 0.0)):.0f}s, "
        f"started {snapshot.get('started', '?')})"
    )
    lines.append(
        "tasks: "
        + "  ".join(f"{state}={int(counts.get(state, 0))}" for state in _STATES)
        + f"  [{_bar(done, total)}] {done}/{total}"
    )
    lines.append(
        f"events: {int(snapshot.get('events', 0))} "
        f"({float(snapshot.get('events_per_sec', 0.0)):.0f} events/sec)"
    )

    submissions = list(snapshot.get("submissions") or [])
    if submissions:
        lines.append("")
        lines.append(f"{'submission':<12} {'state':<8} {'progress':<14} "
                     f"{'ev/sec':>8}  experiments")
        for sub in submissions:
            sub_counts = dict(sub.get("tasks") or {})
            sub_total = sum(int(sub_counts.get(state, 0)) for state in _STATES)
            sub_done = int(sub_counts.get("done", 0))
            resumed = int(sub.get("resumed", 0))
            progress = f"{sub_done}/{sub_total}"
            if resumed:
                progress += f" (+{resumed} cached)"
            lines.append(
                f"{str(sub.get('id', '?')):<12} {str(sub.get('state', '?')):<8} "
                f"{progress:<14} {float(sub.get('events_per_sec', 0.0)):>8.0f}  "
                + ", ".join(sub.get("experiments") or [])
            )
            for ref in sub.get("stored") or []:
                tags = ",".join(ref.get("tags") or [])
                suffix = f"  [{tags}]" if tags else ""
                lines.append(f"{'':<12} stored: {ref.get('spec')}@{ref.get('key')}{suffix}")
            for error in sub.get("errors") or []:
                lines.append(f"{'':<12} error: {error}")

    workers = list(snapshot.get("workers") or [])
    lines.append("")
    if workers:
        lines.append(f"{'worker':<28} {'state':<10} {'last seen':>10} "
                     f"{'done':>6} {'failed':>6}")
        for worker in workers:
            lines.append(
                f"{str(worker.get('id', '?')):<28} {str(worker.get('state', '?')):<10} "
                f"{float(worker.get('last_seen_s', 0.0)):>9.1f}s "
                f"{int(worker.get('done', 0)):>6} {int(worker.get('failed', 0)):>6}"
            )
    else:
        lines.append("workers: none registered")

    profile = dict(snapshot.get("profile") or {})
    if any(profile.values()):
        lines.append("")
        lines.append(format_profile(profile, title="cluster counters"))
    return "\n".join(lines)
