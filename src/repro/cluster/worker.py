"""The cluster worker: claim leases, execute trials, upload results.

A :class:`ClusterWorker` is a thin loop around the *existing* trial
execution path: every claimed task is rebuilt into the scheduler's own
:class:`~repro.experiments.sweep.SweepTask` (config via
``ExperimentConfig.from_dict``, spec and trial hook resolved by registry
name — nothing is pickled over the wire) and executed through
:func:`repro.experiments.sweep._execute_task`.  A cluster worker therefore
computes bit-for-bit the same ``RunResult`` a serial or pool run would for
the same content-hash task key, which is what makes the coordinator's
first-completed-wins merging safe.

While a task executes, a daemon thread heartbeats the lease at the
coordinator's advertised interval; if the coordinator reports the lease
dead (the worker was presumed lost and the task re-dispatched), the worker
finishes and uploads anyway — idempotence makes the late upload a no-op.
Failures inside a trial are reported with ``fail`` so the coordinator can
back off and eventually poison the task instead of leasing it forever.

Draining is cooperative: ``request_drain()`` (wired to SIGTERM in the CLI)
lets the current task finish and then exits the loop; an abrupt kill is the
case the lease TTL exists for.
"""

from __future__ import annotations

import os
import socket
import threading
import time
import traceback
from typing import Callable, Dict, Optional

from repro.cluster.errors import ClusterError, CoordinatorUnavailable
from repro.cluster.protocol import DEFAULT_HOST, DEFAULT_PORT, ClusterClient
from repro.experiments import sweep as sweep_mod
from repro.experiments.scenario import ExperimentConfig
from repro.experiments.spec import get_experiment
from repro.experiments.sweep import SweepTask

__all__ = ["ClusterWorker", "default_worker_id"]


def default_worker_id() -> str:
    """``<hostname>-<pid>``: unique per process, readable in the worker table."""
    return f"{socket.gethostname()}-{os.getpid()}"


class ClusterWorker:
    """Claim/execute/upload loop against one coordinator.

    ``exit_when_idle`` ends the loop the first time the coordinator has no
    live work at all (CI smoke runs); otherwise the worker polls until
    drained or stopped.  ``max_tasks`` bounds how many tasks this worker
    will execute (tests use 1 to interleave workers deterministically).
    """

    def __init__(
        self,
        host: str = DEFAULT_HOST,
        port: int = DEFAULT_PORT,
        worker_id: Optional[str] = None,
        *,
        poll_interval: float = 0.5,
        exit_when_idle: bool = False,
        max_tasks: Optional[int] = None,
        client: Optional[ClusterClient] = None,
        on_event: Optional[Callable[[str], None]] = None,
    ):
        self.id = worker_id or default_worker_id()
        self.client = client or ClusterClient(host, port, retries=5)
        self.poll_interval = poll_interval
        self.exit_when_idle = exit_when_idle
        self.max_tasks = max_tasks
        self.heartbeat_interval = 3.0
        self.executed = 0
        self.failed = 0
        self._on_event = on_event
        self._stop = threading.Event()
        self._drain = threading.Event()

    def _log(self, text: str) -> None:
        if self._on_event is not None:
            self._on_event(text)

    # ------------------------------------------------------------- lifecycle
    def request_drain(self) -> None:
        """Finish the current task (if any), then leave the claim loop."""
        self._drain.set()

    def stop(self) -> None:
        """Leave the claim loop as soon as the current task finishes."""
        self._drain.set()
        self._stop.set()

    # ------------------------------------------------------------------ loop
    def run(self) -> int:
        """Register and serve until drained/stopped; returns tasks executed."""
        hello = self.client.request("register", worker=self.id)
        self.heartbeat_interval = float(
            hello.get("heartbeat_interval", self.heartbeat_interval)
        )
        self._log(f"worker {self.id} serving {self.client.endpoint}")
        try:
            while not self._drain.is_set():
                if self.max_tasks is not None and self.executed >= self.max_tasks:
                    break
                reply = self.client.request("claim", worker=self.id)
                task = reply.get("task")
                if task is None:
                    if reply.get("drain"):
                        self._log(f"worker {self.id} drained by coordinator")
                        break
                    if not reply.get("active") and self.exit_when_idle:
                        break
                    wait = float(reply.get("retry_after", self.poll_interval) or 0.0)
                    if self._drain.wait(timeout=max(wait, self.poll_interval)):
                        break
                    continue
                self._execute(task)
        finally:
            try:
                self.client.request("goodbye", worker=self.id, check=False)
            except ClusterError:
                pass  # coordinator already gone; nothing to say goodbye to
        return self.executed

    # --------------------------------------------------------------- execute
    def _execute(self, payload: Dict[str, object]) -> None:
        key = str(payload["key"])
        lease = str(payload["lease"])
        beat_stop = threading.Event()
        beater = threading.Thread(
            target=self._heartbeat_loop,
            args=(lease, beat_stop),
            name=f"heartbeat-{self.id}",
            daemon=True,
        )
        beater.start()
        try:
            result = self._run_trial(payload)
        except Exception as exc:
            beat_stop.set()
            beater.join(timeout=self.heartbeat_interval * 2)
            self.failed += 1
            self._log(f"worker {self.id}: task {key} raised {exc!r}")
            try:
                self.client.request(
                    "fail",
                    worker=self.id,
                    lease=lease,
                    task=key,
                    error=f"{type(exc).__name__}: {exc}\n"
                    + "".join(traceback.format_exception_only(type(exc), exc)).strip(),
                    check=False,
                )
            except ClusterError:
                pass
            return
        beat_stop.set()
        beater.join(timeout=self.heartbeat_interval * 2)
        reply = self.client.request(
            "result",
            worker=self.id,
            lease=lease,
            task=key,
            seed=payload["seed"],
            result=result.to_dict(),
        )
        self.executed += 1
        verb = "uploaded" if reply.get("accepted") else "uploaded (redundant)"
        self._log(f"worker {self.id}: task {key} {verb}")

    def _run_trial(self, payload: Dict[str, object]):
        """Rebuild the scheduler's SweepTask from the wire payload and run it."""
        spec = get_experiment(str(payload["experiment"]))
        config = ExperimentConfig.from_dict(dict(payload["config"]))
        task = SweepTask(
            experiment=spec.name,
            request=0,
            point=int(payload["point"]),
            trial=int(payload["trial"]),
            protocol=str(payload["protocol"]),
            config=config,
            seed=int(payload["seed"]),
            parameters=tuple(dict(payload["parameters"]).items()),
            trial_fn=spec.trial_fn,
        )
        return sweep_mod._execute_task(task)

    def _heartbeat_loop(self, lease: str, stop: threading.Event) -> None:
        while not stop.wait(timeout=self.heartbeat_interval):
            try:
                reply = self.client.request(
                    "heartbeat", worker=self.id, lease=lease, check=False
                )
            except CoordinatorUnavailable:
                continue  # keep executing; the retrying client may reconnect
            if not reply.get("lease_alive", True):
                # Lease reclaimed (we were presumed dead).  Finish anyway:
                # the upload is a harmless no-op if a twin beat us to it.
                self._log(
                    f"worker {self.id}: lease {lease} reclaimed by coordinator; "
                    f"finishing the task regardless (idempotent upload)"
                )
                return
