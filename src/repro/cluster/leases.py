"""Lease bookkeeping: the coordinator's at-least-once dispatch state machine.

Every schedulable unit is one :class:`ClusterTask` — one ``(point, trial)``
cell of a flattened sweep grid, keyed by the same content-hash task id the
scheduler's :class:`~repro.experiments.store.TaskCache` uses on disk
(``<spec>-<plan_key>/task-PPPP-TTT``).  Because that key is a pure function
of the plan content, re-executing a task is always safe: whichever worker
uploads first wins and every later upload of the same key is a no-op.  That
idempotence is what lets the :class:`LeaseTable` re-dispatch aggressively
over unreliable connections (the classic at-least-once regime) without ever
corrupting an aggregate.

State machine per task::

    PENDING --claim--> LEASED --result--> DONE
       ^                  |
       |                  +--lease expiry (missed heartbeats)--+
       |                  +--worker-reported failure-----------+
       |                                                       |
       +---- re-dispatch (attempts < max, capped backoff) -----+
                                                               |
              FAILED (poisoned: attempts exhausted) <----------+

Failure detection is heartbeat-based: a lease's deadline is pushed to
``now + lease_ttl`` on every heartbeat, and :meth:`LeaseTable.expire_stale`
(run lazily before every claim and status snapshot — no reaper thread)
returns expired leases to PENDING.  Worker-reported failures re-dispatch
with capped exponential backoff (``backoff_base * 2**(attempts-1)``, capped
at ``backoff_cap``) so a poison task cannot hot-loop the cluster; once
``max_attempts`` is spent the task is FAILED and its submission reports the
error instead of aggregating silently-partial results.

All mutating methods take an internal lock — the coordinator serves each
connection from its own thread.  Time comes from an injectable ``clock`` so
tests drive expiry deterministically.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

__all__ = [
    "DONE",
    "FAILED",
    "LEASED",
    "PENDING",
    "ClusterTask",
    "Lease",
    "LeaseRecord",
    "LeaseTable",
    "task_id",
]

PENDING = "pending"
LEASED = "leased"
DONE = "done"
FAILED = "failed"


def task_id(experiment: str, plan_key: str, point: int, trial: int) -> str:
    """The content-hash task key shared with :class:`TaskCache` on disk.

    ``<experiment>-<plan_key>`` is the cache directory (plan_key is the
    content hash of the flattened plan) and ``task-PPPP-TTT`` is the cache
    file stem — so a cluster task id names exactly the file a pool or
    serial run would write for the same work.
    """
    return f"{experiment}-{plan_key}/task-{point:04d}-{trial:03d}"


@dataclass
class Lease:
    """One grant of one task to one worker, alive while heartbeats arrive."""

    id: str
    task_key: str
    worker: str
    granted_at: float
    deadline: float
    last_heartbeat: float


@dataclass
class LeaseRecord:
    """One row of a task's lease history (provenance for run metadata)."""

    worker: str
    attempt: int
    granted_at: float
    outcome: Optional[str] = None  # completed | expired | failed | redundant


@dataclass
class ClusterTask:
    """One ``(point, trial)`` unit of a submission's flattened grid."""

    key: str
    submission: str
    request: int
    experiment: str
    point: int
    trial: int
    seed: int
    payload: Dict[str, object]
    state: str = PENDING
    attempts: int = 0
    not_before: float = 0.0
    error: Optional[str] = None
    lease: Optional[Lease] = None
    history: List[LeaseRecord] = field(default_factory=list)


class LeaseTable:
    """Thread-safe claim/heartbeat/complete/fail bookkeeping for all tasks."""

    def __init__(
        self,
        *,
        clock: Callable[[], float] = time.monotonic,
        lease_ttl: float = 15.0,
        heartbeat_interval: float = 3.0,
        max_attempts: int = 5,
        backoff_base: float = 0.5,
        backoff_cap: float = 30.0,
    ):
        if lease_ttl <= 0:
            raise ValueError("lease_ttl must be positive")
        if heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be positive")
        if max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        self.clock = clock
        self.lease_ttl = lease_ttl
        self.heartbeat_interval = heartbeat_interval
        self.max_attempts = max_attempts
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self._lock = threading.RLock()
        self._tasks: Dict[str, ClusterTask] = {}
        self._order: List[str] = []
        self._leases: Dict[str, Lease] = {}
        self._sequence = 0
        # ------------------------------------------------- profiling counters
        #: Leases granted (cluster.leases).
        self.leases_granted = 0
        #: Leases reclaimed after missed heartbeats (cluster.expired_leases).
        self.expired_leases = 0
        #: Tasks returned to PENDING for another attempt (cluster.redispatches).
        self.redispatches = 0
        #: Heartbeat intervals that elapsed unanswered before an expiry
        #: (cluster.heartbeats_missed).
        self.heartbeats_missed = 0
        #: Heartbeats accepted (cluster.heartbeats).
        self.heartbeats = 0
        #: Uploads for already-completed tasks, ignored by idempotence
        #: (cluster.redundant_results).
        self.redundant_results = 0

    # ---------------------------------------------------------------- intake
    def add(self, task: ClusterTask) -> None:
        with self._lock:
            if task.key in self._tasks:
                raise ValueError(f"duplicate task key {task.key!r}")
            self._tasks[task.key] = task
            self._order.append(task.key)

    def get(self, key: str) -> Optional[ClusterTask]:
        with self._lock:
            return self._tasks.get(key)

    def tasks(self) -> List[ClusterTask]:
        with self._lock:
            return [self._tasks[key] for key in self._order]

    # ---------------------------------------------------------------- expiry
    def expire_stale(self) -> List[ClusterTask]:
        """Reclaim every lease whose deadline passed; return the tasks.

        Called lazily before claims and status snapshots (mirroring the
        sharded medium's lazy epoch barriers: no background thread, no
        wall-clock nondeterminism in tests).  An expired task re-dispatches
        immediately — at-least-once delivery — unless its attempt budget is
        spent, which poisons it.
        """
        now = self.clock()
        reclaimed: List[ClusterTask] = []
        with self._lock:
            for lease in list(self._leases.values()):
                if lease.deadline > now:
                    continue
                self.expired_leases += 1
                self.heartbeats_missed += max(
                    1, int((now - lease.last_heartbeat) / self.heartbeat_interval)
                )
                task = self._tasks[lease.task_key]
                del self._leases[lease.id]
                task.lease = None
                if task.history:
                    task.history[-1].outcome = "expired"
                self._redispatch(task, now, backoff=False)
                reclaimed.append(task)
        return reclaimed

    def _redispatch(self, task: ClusterTask, now: float, *, backoff: bool) -> None:
        if task.attempts >= self.max_attempts:
            task.state = FAILED
            if task.error is None:
                task.error = (
                    f"lease expired {task.attempts} time(s) without a result "
                    f"(worker lost mid-task?)"
                )
            return
        task.state = PENDING
        task.not_before = (
            now + min(self.backoff_cap, self.backoff_base * (2 ** (task.attempts - 1)))
            if backoff
            else now
        )
        self.redispatches += 1

    # ----------------------------------------------------------------- claim
    def claim(self, worker: str) -> Tuple[Optional[ClusterTask], Dict[str, object]]:
        """Grant the first eligible PENDING task to ``worker``.

        Returns ``(task, info)``; ``task`` is ``None`` when nothing is
        eligible and ``info`` explains why (``pending``/``leased`` counts
        plus ``retry_after`` when every pending task is backing off).
        """
        self.expire_stale()
        now = self.clock()
        with self._lock:
            eligible = None
            soonest: Optional[float] = None
            for key in self._order:
                task = self._tasks[key]
                if task.state != PENDING:
                    continue
                if task.not_before <= now:
                    eligible = task
                    break
                soonest = task.not_before if soonest is None else min(soonest, task.not_before)
            if eligible is None:
                counts = self._counts_locked()
                info: Dict[str, object] = {
                    "pending": counts[PENDING],
                    "leased": counts[LEASED],
                }
                if soonest is not None:
                    info["retry_after"] = max(0.0, soonest - now)
                return None, info
            self._sequence += 1
            lease = Lease(
                id=f"lease-{self._sequence}",
                task_key=eligible.key,
                worker=worker,
                granted_at=now,
                deadline=now + self.lease_ttl,
                last_heartbeat=now,
            )
            eligible.state = LEASED
            eligible.attempts += 1
            eligible.lease = lease
            eligible.history.append(
                LeaseRecord(worker=worker, attempt=eligible.attempts, granted_at=now)
            )
            self._leases[lease.id] = lease
            self.leases_granted += 1
            return eligible, {"lease": lease.id, "attempt": eligible.attempts}

    # ------------------------------------------------------------- heartbeat
    def heartbeat(self, worker: str, lease_id: str) -> bool:
        """Extend a lease's deadline; ``False`` if the lease is no longer live.

        A ``False`` reply tells the worker its lease was reclaimed (it may
        finish and upload anyway — idempotence makes the late result a
        harmless no-op).
        """
        now = self.clock()
        with self._lock:
            lease = self._leases.get(lease_id)
            if lease is None or lease.worker != worker:
                return False
            lease.last_heartbeat = now
            lease.deadline = now + self.lease_ttl
            self.heartbeats += 1
            return True

    # -------------------------------------------------------------- complete
    def complete(self, task_key: str, worker: str) -> Tuple[Optional[ClusterTask], bool]:
        """Record a result upload for ``task_key``; ``(task, accepted)``.

        First-completed-wins: only the first upload is accepted; every later
        one (a re-dispatched twin, a worker whose lease expired mid-task) is
        acknowledged but ignored.  Results are accepted even from stale
        leases — the work is correct whoever did it, and the content-hash
        key guarantees it is *the same* work.
        """
        with self._lock:
            task = self._tasks.get(task_key)
            if task is None:
                return None, False
            if task.state == DONE:
                self.redundant_results += 1
                return task, False
            if task.lease is not None:
                self._leases.pop(task.lease.id, None)
                task.lease = None
            task.state = DONE
            task.error = None
            outcome = "completed"
            recorded = False
            for record in reversed(task.history):
                if record.worker == worker and record.outcome in (None, "expired"):
                    record.outcome = outcome
                    recorded = True
                    break
            if not recorded:
                task.history.append(
                    LeaseRecord(
                        worker=worker,
                        attempt=task.attempts,
                        granted_at=self.clock(),
                        outcome=outcome,
                    )
                )
            return task, True

    # ------------------------------------------------------------------ fail
    def fail(self, task_key: str, worker: str, error: str) -> Tuple[Optional[ClusterTask], Dict[str, object]]:
        """Record a worker-reported failure; re-dispatch with backoff or poison."""
        now = self.clock()
        with self._lock:
            task = self._tasks.get(task_key)
            if task is None or task.state in (DONE, FAILED):
                return task, {}
            if task.lease is not None:
                self._leases.pop(task.lease.id, None)
                task.lease = None
            if task.history:
                task.history[-1].outcome = "failed"
            task.error = error
            self._redispatch(task, now, backoff=True)
            if task.state == FAILED:
                return task, {"poisoned": True}
            return task, {"retry_after": max(0.0, task.not_before - now)}

    # ------------------------------------------------------------- accounting
    def _counts_locked(self) -> Dict[str, int]:
        counts = {PENDING: 0, LEASED: 0, DONE: 0, FAILED: 0}
        for task in self._tasks.values():
            counts[task.state] += 1
        return counts

    def counts(self, submission: Optional[str] = None) -> Dict[str, int]:
        with self._lock:
            if submission is None:
                return self._counts_locked()
            counts = {PENDING: 0, LEASED: 0, DONE: 0, FAILED: 0}
            for task in self._tasks.values():
                if task.submission == submission:
                    counts[task.state] += 1
            return counts

    def profile(self) -> Dict[str, float]:
        """The gated ``cluster.*`` profiling counters (see repro.profiling)."""
        with self._lock:
            return {
                "cluster.leases": float(self.leases_granted),
                "cluster.expired_leases": float(self.expired_leases),
                "cluster.redispatches": float(self.redispatches),
                "cluster.heartbeats_missed": float(self.heartbeats_missed),
                "cluster.heartbeats": float(self.heartbeats),
                "cluster.redundant_results": float(self.redundant_results),
            }
