"""Exception taxonomy for the distributed sweep cluster.

Everything raised by the cluster subsystem derives from :class:`ClusterError`
so callers can catch one base class; the leaves distinguish the three
failure regimes a coordinator/worker deployment actually has — a peer that
speaks garbage (:class:`ProtocolError`), a peer that is unreachable
(:class:`CoordinatorUnavailable`), and work that is done but wrong
(:class:`SubmissionFailed`).
"""

from __future__ import annotations

__all__ = [
    "ClusterError",
    "CoordinatorUnavailable",
    "ProtocolError",
    "SubmissionFailed",
]


class ClusterError(RuntimeError):
    """Base class for every cluster-subsystem error."""


class ProtocolError(ClusterError):
    """A peer sent a message this protocol version cannot parse."""


class CoordinatorUnavailable(ClusterError):
    """The coordinator endpoint could not be reached (after any retries)."""


class SubmissionFailed(ClusterError):
    """A submission finished with poisoned (permanently failed) tasks."""
