"""Wire protocol for the sweep cluster: newline-delimited JSON over TCP.

The protocol is deliberately minimal and stdlib-only: every message is one
strict-JSON object on one ``\\n``-terminated UTF-8 line.  A client opens a
TCP connection, sends one request line, and reads one reply line (the
streaming ``status`` watch is the one exception: the coordinator keeps the
connection open and emits one snapshot line per interval).  One connection
per request keeps both sides trivially thread-safe — workers heartbeat from
a background thread while the main thread executes a task, with no shared
socket state to lock.

Requests carry ``{"op": ..., "proto": PROTOCOL_VERSION, ...}``; replies
carry ``{"ok": true, ...}`` or ``{"ok": false, "error": "..."}``.  The
version field lets a future coordinator reject workers from an incompatible
checkout instead of silently mis-merging their results.

:class:`ClusterClient` adds the robustness layer the at-least-once design
assumes: capped exponential retry backoff on connection failures, so a
worker surviving a coordinator restart (or a coordinator still binding its
port) re-delivers its request instead of dying — safe because every
cluster operation is idempotent (claims re-lease, results merge by
content-hash task key, heartbeats are monotonic).
"""

from __future__ import annotations

import json
import socket
import time
from typing import Dict, Iterator, Optional

from repro.cluster.errors import ClusterError, CoordinatorUnavailable, ProtocolError

__all__ = [
    "PROTOCOL_VERSION",
    "DEFAULT_HOST",
    "DEFAULT_PORT",
    "ClusterClient",
    "decode_message",
    "encode_message",
]

PROTOCOL_VERSION = 1

DEFAULT_HOST = "127.0.0.1"
#: Default coordinator port ("RPRO" on a phone keypad would be 7776; this is
#: simply an unassigned high port).
DEFAULT_PORT = 7341

#: Hard cap on one message line (a RunResult with per-node tables is ~10-100
#: KB at paper scale; 64 MB leaves headroom for large populations while
#: bounding a misbehaving peer).
MAX_MESSAGE_BYTES = 64 * 1024 * 1024


def encode_message(message: Dict[str, object]) -> bytes:
    """One strict-JSON object as one newline-terminated UTF-8 line."""
    return (json.dumps(message, allow_nan=False) + "\n").encode("utf-8")


def decode_message(line: bytes) -> Dict[str, object]:
    """Parse one received line; :class:`ProtocolError` on anything else."""
    try:
        message = json.loads(line.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"undecodable message line: {exc}") from None
    if not isinstance(message, dict):
        raise ProtocolError(f"message must be a JSON object, got {type(message).__name__}")
    return message


class ClusterClient:
    """Connection-per-request client for the coordinator protocol.

    ``retries``/``retry_backoff``/``retry_cap`` govern re-delivery over an
    unreliable connection: each failed connect sleeps
    ``min(retry_cap, retry_backoff * 2**attempt)`` before retrying, and
    :class:`CoordinatorUnavailable` is raised only once the budget is spent.
    Re-sending a request is always safe — the coordinator's operations are
    idempotent by design (content-hash task keys, first-completed-wins).
    """

    def __init__(
        self,
        host: str = DEFAULT_HOST,
        port: int = DEFAULT_PORT,
        *,
        timeout: float = 30.0,
        retries: int = 0,
        retry_backoff: float = 0.25,
        retry_cap: float = 5.0,
    ):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retries = retries
        self.retry_backoff = retry_backoff
        self.retry_cap = retry_cap

    @property
    def endpoint(self) -> str:
        return f"{self.host}:{self.port}"

    # ------------------------------------------------------------- transport
    def _connect(self) -> socket.socket:
        last: Optional[Exception] = None
        for attempt in range(self.retries + 1):
            try:
                return socket.create_connection(
                    (self.host, self.port), timeout=self.timeout
                )
            except OSError as exc:
                last = exc
                if attempt < self.retries:
                    time.sleep(min(self.retry_cap, self.retry_backoff * (2 ** attempt)))
        raise CoordinatorUnavailable(
            f"coordinator at {self.endpoint} unreachable after "
            f"{self.retries + 1} attempt(s): {last}"
        )

    def request(self, op: str, *, check: bool = True, **fields: object) -> Dict[str, object]:
        """Send one request, return the reply dict.

        With ``check`` (the default) a ``{"ok": false}`` reply raises
        :class:`ClusterError` carrying the coordinator's error text.
        """
        message = {"op": op, "proto": PROTOCOL_VERSION, **fields}
        sock = self._connect()
        try:
            sock.sendall(encode_message(message))
            with sock.makefile("rb") as reader:
                line = reader.readline(MAX_MESSAGE_BYTES)
        finally:
            sock.close()
        if not line:
            raise CoordinatorUnavailable(
                f"coordinator at {self.endpoint} closed the connection mid-request"
            )
        reply = decode_message(line)
        if check and not reply.get("ok", False):
            raise ClusterError(str(reply.get("error", "coordinator rejected the request")))
        return reply

    def stream(self, op: str, **fields: object) -> Iterator[Dict[str, object]]:
        """Send one request and yield every reply line until the peer closes.

        Used by the ``status --watch`` live view; the coordinator emits one
        snapshot per interval and closes the stream when all work is done.
        """
        message = {"op": op, "proto": PROTOCOL_VERSION, **fields}
        sock = self._connect()
        try:
            sock.sendall(encode_message(message))
            with sock.makefile("rb") as reader:
                for line in reader:
                    reply = decode_message(line)
                    if not reply.get("ok", False):
                        raise ClusterError(
                            str(reply.get("error", "coordinator rejected the stream"))
                        )
                    yield reply
        finally:
            sock.close()
