"""The sweep coordinator: flatten submissions, lease tasks, merge results.

A :class:`Coordinator` owns the full distributed-sweep control plane:

* **Submission intake** — a ``submit`` message carries one or more
  ``{experiment, config, axes}`` requests (JSON-native: the config crosses
  the wire as :meth:`ExperimentConfig.as_dict` output).  The coordinator
  flattens them through the *same* planner the in-process scheduler uses
  (:func:`repro.experiments.sweep._prepare`), so the task grid — and every
  content-hash key — is identical to what ``run_suite`` would execute.
* **Resume** — tasks already satisfied by the shared
  :class:`~repro.experiments.store.TaskCache` are folded in immediately;
  a cluster run can resume a serial run, a pool run, or a previous cluster
  run from the same store, and vice versa.
* **Dispatch** — workers claim leases (:mod:`repro.cluster.leases`),
  heartbeat while executing, and upload ``RunResult`` JSON.  Expired leases
  re-dispatch (at-least-once; first-completed-wins is a no-op by
  idempotence), worker-reported failures back off exponentially, and
  attempt-exhausted tasks poison their submission loudly.
* **Merge** — accepted results are written through the TaskCache
  (atomically — concurrent writers cannot tear JSON) and, when a
  submission's grid completes, aggregated in plan order by the *same*
  aggregation path as ``run_suite`` and saved to the :class:`ResultStore`
  with cluster provenance (worker ids, attempts, lease history) in the run
  metadata.  Aggregates are therefore byte-identical to serial and pool
  runs by construction.
* **Status** — a ``status`` message returns one JSON snapshot (or a stream
  of them with ``watch``): per-task progress counts, per-submission
  events/sec, the worker table, and the gated ``cluster.*`` profiling
  counters.

The server is a stdlib ``socketserver.ThreadingTCPServer`` speaking
newline-delimited JSON (:mod:`repro.cluster.protocol`); all shared state is
behind one lock plus the :class:`LeaseTable`'s own.  Time comes from an
injectable ``clock`` so failure-detection tests run deterministically.
"""

from __future__ import annotations

import socketserver
import threading
import time
from datetime import datetime, timezone
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.cluster import leases as leases_mod
from repro.cluster.errors import ProtocolError
from repro.cluster.leases import DONE, FAILED, LEASED, PENDING, ClusterTask, LeaseTable
from repro.cluster.protocol import (
    DEFAULT_HOST,
    PROTOCOL_VERSION,
    decode_message,
    encode_message,
)
from repro.experiments import sweep as sweep_mod
from repro.experiments.metrics import RunResult
from repro.experiments.scenario import ExperimentConfig
from repro.experiments.spec import get_experiment
from repro.experiments.store import ResultStore
from repro.experiments.sweep import SweepRequest

__all__ = ["Coordinator", "build_submission_payload"]


def build_submission_payload(
    experiments: Sequence[str],
    config: ExperimentConfig,
    axes_by_spec: Optional[Dict[str, Dict[str, Sequence[object]]]] = None,
    *,
    tag: Optional[str] = None,
    resume: bool = True,
) -> Dict[str, object]:
    """The JSON-native ``submit`` payload for a list of registered specs.

    Shared by the ``repro-experiments submit`` CLI and in-process tests so
    both send exactly the grid ``run --dry-run`` lists.
    """
    requests: List[Dict[str, object]] = []
    for name in experiments:
        axes = (axes_by_spec or {}).get(name)
        requests.append(
            {
                "experiment": name,
                "config": config.as_dict(),
                "axes": {key: list(values) for key, values in axes.items()} if axes else None,
            }
        )
    return {"requests": requests, "tag": tag, "resume": resume}


class _Submission:
    """One accepted submit: its prepared plans, live counters and outcome."""

    def __init__(self, sid: str, prepared, tag: Optional[str], started: float):
        self.id = sid
        self.prepared = prepared  # List[sweep._PreparedRequest]
        self.tag = tag
        self.started = started
        self.finished: Optional[float] = None
        self.state = "running"  # running | done | failed
        self.task_keys: List[str] = []
        self.resumed = 0
        self.events = 0
        self.errors: List[str] = []
        self.stored: List[Dict[str, object]] = []

    @property
    def experiments(self) -> List[str]:
        return [item.spec.name for item in self.prepared]


class _WorkerInfo:
    def __init__(self, last_seen: float):
        self.last_seen = last_seen
        self.state = "active"  # active | draining | gone
        self.done = 0
        self.failed = 0


class Coordinator:
    """Serve a sweep task grid to remote workers over the cluster protocol."""

    def __init__(
        self,
        store: Union[ResultStore, str, Path] = "results-store",
        host: str = DEFAULT_HOST,
        port: int = 0,
        *,
        lease_ttl: float = 15.0,
        heartbeat_interval: float = 3.0,
        max_attempts: int = 5,
        backoff_base: float = 0.5,
        backoff_cap: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
        profile: bool = False,
        on_event: Optional[Callable[[str], None]] = None,
    ):
        self.store = store if isinstance(store, ResultStore) else ResultStore(store)
        self.host = host
        self.port = port
        self.clock = clock
        self.profile = profile
        self.heartbeat_interval = heartbeat_interval
        self.lease_ttl = lease_ttl
        self.table = LeaseTable(
            clock=clock,
            lease_ttl=lease_ttl,
            heartbeat_interval=heartbeat_interval,
            max_attempts=max_attempts,
            backoff_base=backoff_base,
            backoff_cap=backoff_cap,
        )
        self._on_event = on_event
        self._lock = threading.RLock()
        self._done = threading.Condition(self._lock)
        self._submissions: Dict[str, _Submission] = {}
        self._workers: Dict[str, _WorkerInfo] = {}
        self._server: Optional[socketserver.ThreadingTCPServer] = None
        self._thread: Optional[threading.Thread] = None
        self._started_wall = datetime.now(timezone.utc).isoformat(timespec="seconds")
        self._started_clock = clock()

    # ----------------------------------------------------------------- server
    def start(self) -> "Coordinator":
        """Bind and serve in a daemon thread; ``port=0`` picks a free port."""
        coordinator = self

        class Handler(socketserver.StreamRequestHandler):
            def handle(self) -> None:  # one connection: request lines until EOF
                for line in self.rfile:
                    try:
                        message = decode_message(line)
                    except ProtocolError as exc:
                        self._reply({"ok": False, "error": str(exc)})
                        return
                    if message.get("op") == "status" and message.get("watch"):
                        coordinator._stream_status(message, self._reply)
                        return
                    reply = coordinator.handle(message)
                    self._reply(reply)
                    if message.get("op") == "stop":
                        return

            def _reply(self, payload: Dict[str, object]) -> bool:
                try:
                    self.wfile.write(encode_message(payload))
                    self.wfile.flush()
                    return True
                except (OSError, ValueError):
                    return False  # client went away mid-reply

        class Server(socketserver.ThreadingTCPServer):
            allow_reuse_address = True
            daemon_threads = True

        self._server = Server((self.host, self.port), Handler)
        self.port = self._server.server_address[1]
        self._thread = threading.Thread(
            target=self._server.serve_forever, name="cluster-coordinator", daemon=True
        )
        self._thread.start()
        self._log(f"coordinator listening on {self.host}:{self.port}")
        return self

    def stop(self) -> None:
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            self._server = None
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    @property
    def endpoint(self) -> str:
        return f"{self.host}:{self.port}"

    def _log(self, text: str) -> None:
        if self._on_event is not None:
            self._on_event(text)

    # --------------------------------------------------------------- dispatch
    _OPS = (
        "submit", "register", "claim", "heartbeat", "result",
        "fail", "status", "drain", "goodbye", "stop",
    )

    def handle(self, message: Dict[str, object]) -> Dict[str, object]:
        """Process one request message and return the reply (also in-process)."""
        proto = message.get("proto", PROTOCOL_VERSION)
        if proto != PROTOCOL_VERSION:
            return {
                "ok": False,
                "error": f"protocol version {proto!r} not supported "
                         f"(coordinator speaks {PROTOCOL_VERSION})",
            }
        op = message.get("op")
        if op not in self._OPS:
            return {"ok": False, "error": f"unknown op {op!r}"}
        try:
            return getattr(self, f"_op_{op}")(message)
        except Exception as exc:  # never tear down the server on one bad request
            return {"ok": False, "error": f"{type(exc).__name__}: {exc}"}

    # ----------------------------------------------------------------- submit
    def submit(self, payload: Dict[str, object]) -> Dict[str, object]:
        """Accept one submission payload (see :func:`build_submission_payload`)."""
        raw_requests = payload.get("requests")
        if not raw_requests or not isinstance(raw_requests, list):
            raise ValueError("submission carries no requests")
        requests: List[SweepRequest] = []
        for raw in raw_requests:
            spec = get_experiment(str(raw["experiment"]))
            config = ExperimentConfig.from_dict(dict(raw["config"]))
            axes = raw.get("axes") or None
            if axes is not None:
                axes = {key: tuple(values) for key, values in axes.items()}
            requests.append(SweepRequest(spec=spec, config=config, axes=axes))
        resume = bool(payload.get("resume", True))
        tag = payload.get("tag") or None

        prepared = sweep_mod._prepare(requests, None, self.store)
        with self._lock:
            sid = f"s{len(self._submissions) + 1}"
            submission = _Submission(sid, prepared, tag, self.clock())
            new_tasks: List[ClusterTask] = []
            for index, item in enumerate(prepared):
                for plan in item.plans:
                    for trial, seed in enumerate(plan.seeds):
                        cached = (
                            item.cache.load(plan.index, trial, seed) if resume else None
                        )
                        if cached is not None:
                            item.results[(plan.index, trial)] = cached
                            submission.resumed += 1
                            continue
                        key = leases_mod.task_id(
                            item.spec.name, item.cache_key, plan.index, trial
                        )
                        if self.table.get(key) is not None:
                            raise ValueError(
                                f"task {key} is already in flight from an earlier "
                                f"submission; wait for it to finish (its result will "
                                f"resume this grid from the shared store)"
                            )
                        new_tasks.append(
                            ClusterTask(
                                key=key,
                                submission=sid,
                                request=index,
                                experiment=item.spec.name,
                                point=plan.index,
                                trial=trial,
                                seed=seed,
                                payload={
                                    "key": key,
                                    "submission": sid,
                                    "experiment": item.spec.name,
                                    "plan_key": item.cache_key,
                                    "point": plan.index,
                                    "trial": trial,
                                    "label": plan.label,
                                    "protocol": plan.protocol,
                                    "seed": seed,
                                    "parameters": dict(plan.parameters),
                                    "config": plan.config.as_dict(),
                                },
                            )
                        )
            for task in new_tasks:
                self.table.add(task)
                submission.task_keys.append(task.key)
            self._submissions[sid] = submission
            self._log(
                f"submission {sid}: {', '.join(submission.experiments)} — "
                f"{len(new_tasks)} task(s), {submission.resumed} resumed from cache"
            )
            if not new_tasks:
                self._finalize(submission)
            return {
                "submission": sid,
                "tasks": len(new_tasks),
                "resumed": submission.resumed,
                "experiments": submission.experiments,
            }

    def _op_submit(self, message: Dict[str, object]) -> Dict[str, object]:
        try:
            info = self.submit(message)
        except (KeyError, TypeError, ValueError) as exc:
            return {"ok": False, "error": str(exc)}
        return {"ok": True, **info}

    # ----------------------------------------------------------------- workers
    def _touch_worker(self, worker: str) -> _WorkerInfo:
        info = self._workers.get(worker)
        if info is None:
            info = self._workers[worker] = _WorkerInfo(self.clock())
        else:
            info.last_seen = self.clock()
            if info.state == "gone":  # a re-registering worker comes back
                info.state = "active"
        return info

    def _op_register(self, message: Dict[str, object]) -> Dict[str, object]:
        worker = str(message.get("worker") or "")
        if not worker:
            return {"ok": False, "error": "register needs a worker id"}
        with self._lock:
            self._touch_worker(worker).state = "active"
        self._log(f"worker {worker} registered")
        return {
            "ok": True,
            "heartbeat_interval": self.heartbeat_interval,
            "lease_ttl": self.lease_ttl,
        }

    def _op_claim(self, message: Dict[str, object]) -> Dict[str, object]:
        worker = str(message.get("worker") or "")
        with self._lock:
            info = self._touch_worker(worker)
            if info.state == "draining":
                return {"ok": True, "task": None, "drain": True}
        task, claim_info = self.table.claim(worker)
        with self._lock:
            # claim()'s lazy expiry may have poisoned a submission's last
            # straggler; settle it now so waiters and watchers see the end.
            self._check_all_done()
        if task is None:
            active = bool(claim_info["pending"] or claim_info["leased"])
            reply = {"ok": True, "task": None, "active": active, **claim_info}
            return reply
        payload = dict(task.payload)
        payload["lease"] = claim_info["lease"]
        payload["attempt"] = claim_info["attempt"]
        if task.attempts > 1:
            self._log(
                f"task {task.key} re-dispatched to {worker} "
                f"(attempt {task.attempts})"
            )
        return {"ok": True, "task": payload}

    def _op_heartbeat(self, message: Dict[str, object]) -> Dict[str, object]:
        worker = str(message.get("worker") or "")
        lease = str(message.get("lease") or "")
        with self._lock:
            self._touch_worker(worker)
        alive = self.table.heartbeat(worker, lease)
        return {"ok": True, "lease_alive": alive}

    def _op_result(self, message: Dict[str, object]) -> Dict[str, object]:
        worker = str(message.get("worker") or "")
        key = str(message.get("task") or "")
        task = self.table.get(key)
        if task is None:
            return {"ok": False, "error": f"unknown task {key!r}"}
        if message.get("seed") != task.seed:
            return {
                "ok": False,
                "error": f"seed mismatch for {key}: expected {task.seed}, "
                         f"got {message.get('seed')!r}",
            }
        try:
            result = RunResult.from_dict(dict(message["result"]))
        except (KeyError, TypeError, ValueError) as exc:
            return {"ok": False, "error": f"unparseable result for {key}: {exc}"}
        task, accepted = self.table.complete(key, worker)
        with self._lock:
            info = self._touch_worker(worker)
            if accepted:
                info.done += 1
                submission = self._submissions[task.submission]
                item = submission.prepared[task.request]
                item.results[(task.point, task.trial)] = result
                if item.cache is not None:
                    item.cache.store(task.experiment, task.point, task.trial, task.seed, result)
                submission.events += result.events
            self._check_all_done()
        return {"ok": True, "accepted": accepted}

    def _op_fail(self, message: Dict[str, object]) -> Dict[str, object]:
        worker = str(message.get("worker") or "")
        key = str(message.get("task") or "")
        error = str(message.get("error") or "worker reported failure")
        task, info = self.table.fail(key, worker, error)
        if task is None:
            return {"ok": False, "error": f"unknown task {key!r}"}
        with self._lock:
            self._touch_worker(worker).failed += 1
            self._check_all_done()
        self._log(f"task {key} failed on {worker}: {error}")
        return {"ok": True, **info}

    def _op_drain(self, message: Dict[str, object]) -> Dict[str, object]:
        worker = str(message.get("worker") or "")
        with self._lock:
            info = self._workers.get(worker)
            if info is None:
                return {"ok": False, "error": f"unknown worker {worker!r}"}
            info.state = "draining"
        self._log(f"worker {worker} draining (finishes its current lease, then exits)")
        return {"ok": True}

    def _op_goodbye(self, message: Dict[str, object]) -> Dict[str, object]:
        worker = str(message.get("worker") or "")
        with self._lock:
            info = self._workers.get(worker)
            if info is not None:
                info.state = "gone"
                info.last_seen = self.clock()
        self._log(f"worker {worker} left")
        return {"ok": True}

    def _op_stop(self, message: Dict[str, object]) -> Dict[str, object]:
        if self._server is not None:
            threading.Thread(target=self.stop, daemon=True).start()
        self._log("coordinator stopping")
        return {"ok": True, "stopping": True}

    # ----------------------------------------------------------------- status
    def _op_status(self, message: Dict[str, object]) -> Dict[str, object]:
        return {"ok": True, **self.status()}

    def status(self) -> Dict[str, object]:
        """One JSON-native snapshot of the whole cluster's progress."""
        self.table.expire_stale()
        with self._lock:
            self._check_all_done()
            now = self.clock()
            counts = self.table.counts()
            submissions = []
            total_events = 0
            for submission in self._submissions.values():
                sub_counts = self.table.counts(submission.id)
                elapsed = (submission.finished or now) - submission.started
                submissions.append(
                    {
                        "id": submission.id,
                        "state": submission.state,
                        "experiments": submission.experiments,
                        "tasks": sub_counts,
                        "resumed": submission.resumed,
                        "events": submission.events,
                        "events_per_sec": (
                            submission.events / elapsed if elapsed > 0 else 0.0
                        ),
                        "stored": list(submission.stored),
                        "errors": list(submission.errors),
                    }
                )
                total_events += submission.events
            workers = []
            for name, info in sorted(self._workers.items()):
                age = now - info.last_seen
                state = info.state
                if state == "active" and age > self.lease_ttl:
                    state = "lost"  # missed enough heartbeats to expire a lease
                workers.append(
                    {
                        "id": name,
                        "state": state,
                        "last_seen_s": age,
                        "done": info.done,
                        "failed": info.failed,
                    }
                )
            elapsed_total = now - self._started_clock
            return {
                "coordinator": self.endpoint,
                "started": self._started_wall,
                "uptime_s": elapsed_total,
                "tasks": counts,
                "events": total_events,
                "events_per_sec": (
                    total_events / elapsed_total if elapsed_total > 0 else 0.0
                ),
                "submissions": submissions,
                "workers": workers,
                "profile": self.table.profile(),
            }

    def _stream_status(self, message: Dict[str, object], reply) -> None:
        """Emit one snapshot per interval until all work settles (or EOF)."""
        interval = float(message.get("interval", 2.0) or 2.0)
        while True:
            snapshot = self.status()
            if not reply({"ok": True, **snapshot}):
                return
            counts = snapshot["tasks"]
            live = counts[PENDING] + counts[LEASED]
            if not live and snapshot["submissions"]:
                return  # everything settled: end the stream so watchers exit
            if self._server is None:
                return
            time.sleep(min(interval, 30.0))

    # ------------------------------------------------------------- completion
    def _check_all_done(self) -> None:
        for submission in self._submissions.values():
            if submission.state != "running":
                continue
            counts = self.table.counts(submission.id)
            if counts[PENDING] or counts[LEASED]:
                continue
            self._finalize(submission)

    def _finalize(self, submission: _Submission) -> None:
        submission.finished = self.clock()
        failed = [
            task
            for key in submission.task_keys
            for task in (self.table.get(key),)
            if task is not None and task.state == FAILED
        ]
        if failed:
            submission.state = "failed"
            submission.errors = [
                f"{task.key}: {task.error} (after {task.attempts} attempt(s))"
                for task in failed
            ]
            self._log(
                f"submission {submission.id} FAILED: {len(failed)} poisoned task(s)"
            )
            self._done.notify_all()
            return
        for index, item in enumerate(submission.prepared):
            sweep = sweep_mod._aggregate(item)
            record = self.store.save(
                sweep,
                spec=item.spec,
                config=item.base,
                tags=(submission.tag,) if submission.tag else (),
                extra={"cluster": self._provenance(submission, index)},
            )
            submission.stored.append(
                {"spec": record.spec, "key": record.key, "tags": record.tags}
            )
        submission.state = "done"
        self._log(
            f"submission {submission.id} done: "
            + ", ".join(f"{ref['spec']}@{ref['key']}" for ref in submission.stored)
        )
        self._done.notify_all()

    def _provenance(self, submission: _Submission, index: int) -> Dict[str, object]:
        """Cluster provenance for one stored run's metadata header."""
        tasks = [
            task
            for key in submission.task_keys
            for task in (self.table.get(key),)
            if task is not None and task.request == index
        ]
        workers = sorted(
            {
                record.worker
                for task in tasks
                for record in task.history
                if record.outcome == "completed"
            }
        )
        provenance: Dict[str, object] = {
            "coordinator": self.endpoint,
            "submission": submission.id,
            "workers": workers,
            "executed": len(tasks),
            "resumed": submission.resumed,
            "attempts": {task.key: task.attempts for task in tasks if task.attempts > 1},
            "lease_history": {
                task.key: [
                    {
                        "worker": record.worker,
                        "attempt": record.attempt,
                        "outcome": record.outcome,
                    }
                    for record in task.history
                ]
                for task in tasks
                if len(task.history) > 1
            },
        }
        if self.profile:
            provenance["profile"] = self.table.profile()
        return provenance

    # ------------------------------------------------------------------ tests
    def wait(self, timeout: float = 60.0) -> bool:
        """Block until every submission settles; ``True`` when all settled."""
        deadline = time.monotonic() + timeout
        with self._done:
            while any(s.state == "running" for s in self._submissions.values()):
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._done.wait(timeout=min(remaining, 0.25))
        return True
