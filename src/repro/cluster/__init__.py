"""Distributed sweep cluster: coordinator, workers, leases, wire protocol.

This package turns the in-process sweep scheduler
(:mod:`repro.experiments.sweep`) into a small distributed system without
changing what gets computed: a :class:`Coordinator` flattens submissions
through the scheduler's own planner and serves the task grid over
newline-delimited JSON on TCP; :class:`ClusterWorker` loops claim leases
and execute each task through the scheduler's own trial path; results are
keyed by the same content-hash task ids the on-disk
:class:`~repro.experiments.store.TaskCache` uses.  Serial, process-pool and
cluster runs of the same grid therefore produce byte-identical aggregates
— and can resume each other from a shared result store.

Failure handling is the classic at-least-once lease design: heartbeat-based
failure detection with lease expiry and re-dispatch, first-completed-wins
merging (a no-op by idempotence), capped exponential backoff for poison
tasks, graceful drain vs abrupt kill.  See each module's docstring for the
mechanics; the ``repro-experiments serve | worker | submit | status``
subcommands wire it to the CLI.
"""

from repro.cluster.coordinator import Coordinator, build_submission_payload
from repro.cluster.errors import (
    ClusterError,
    CoordinatorUnavailable,
    ProtocolError,
    SubmissionFailed,
)
from repro.cluster.leases import ClusterTask, Lease, LeaseRecord, LeaseTable, task_id
from repro.cluster.protocol import (
    DEFAULT_HOST,
    DEFAULT_PORT,
    PROTOCOL_VERSION,
    ClusterClient,
)
from repro.cluster.status import render_status
from repro.cluster.worker import ClusterWorker, default_worker_id

__all__ = [
    "ClusterClient",
    "ClusterError",
    "ClusterTask",
    "ClusterWorker",
    "Coordinator",
    "CoordinatorUnavailable",
    "DEFAULT_HOST",
    "DEFAULT_PORT",
    "Lease",
    "LeaseRecord",
    "LeaseTable",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "SubmissionFailed",
    "build_submission_payload",
    "default_worker_id",
    "render_status",
    "task_id",
]
