"""Common interface of the MANET routing protocols."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional

from repro.ip.packet import IpPacket


class RoutingProtocol(ABC):
    """Base class: computes next hops and reacts to delivery failures."""

    def __init__(self):
        self.node = None
        self.control_messages_sent = 0

    def attach(self, node) -> None:
        """Bind the protocol to its :class:`~repro.ip.netstack.IpNode`."""
        self.node = node

    @abstractmethod
    def start(self) -> None:
        """Start periodic behaviour (proactive protocols) or internal timers."""

    @abstractmethod
    def next_hop(self, dst: str) -> Optional[str]:
        """Next hop towards ``dst``, or ``None`` when no route is known."""

    def on_delivery_failure(self, packet: IpPacket, next_hop: str) -> None:
        """Called when forwarding ``packet`` to ``next_hop`` failed (broken link)."""

    def on_no_route(self, packet: IpPacket) -> None:
        """Called when a packet had to be dropped because no route exists."""

    @property
    def state_size_bytes(self) -> int:
        """Approximate routing-state footprint (baseline memory accounting)."""
        return 0
