"""Dynamic Source Routing (DSR).

Reactive routing: when a node needs a route it floods a Route Request
(RREQ); every node appends itself to the request's route record and
re-broadcasts it once per request id; the destination (or a node with a
cached route to it) answers with a Route Reply (RREP) carrying the full
source route, sent back along the reversed record.  Data packets carry the
source route in their header (the per-packet overhead the paper's Ekta
results include).  Broken links produce Route Errors (RERR) that purge the
offending link from caches and trigger a new discovery on demand.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.ip.packet import IpPacket
from repro.manet.routing_base import RoutingProtocol

RREQ_BASE_BYTES = 16
RREP_BASE_BYTES = 16
RERR_BYTES = 20
HOP_WIRE_BYTES = 4


@dataclass
class _RouteCacheEntry:
    route: List[str]  # full path including source and destination
    installed_at: float


class DsrRouting(RoutingProtocol):
    """On-demand source routing with route caches."""

    def __init__(
        self,
        route_lifetime: float = 30.0,
        discovery_timeout: float = 2.0,
        max_discovery_retries: int = 3,
        max_flood_hops: int = 8,
    ):
        super().__init__()
        self.route_lifetime = route_lifetime
        self.discovery_timeout = discovery_timeout
        self.max_discovery_retries = max_discovery_retries
        self.max_flood_hops = max_flood_hops
        self._cache: Dict[str, _RouteCacheEntry] = {}
        self._seen_requests: Set[Tuple[str, int]] = set()
        self._seen_replies: Set[Tuple] = set()
        self._request_serial = 0
        self._pending_discovery: Dict[str, int] = {}  # destination -> retries so far
        self._waiting_packets: Dict[str, List[IpPacket]] = {}
        self.rreq_sent = 0
        self.rrep_sent = 0
        self.rerr_sent = 0
        self.discoveries = 0

    # ----------------------------------------------------------------- set-up
    def attach(self, node) -> None:
        super().attach(node)
        node.register_broadcast("dsr-rreq", self._on_rreq)
        node.register_broadcast("dsr-rrep", self._on_rrep)
        node.register_broadcast("dsr-rerr", self._on_rerr)

    def start(self) -> None:
        if self.node is None:
            raise RuntimeError("attach the protocol to a node before starting it")

    # ----------------------------------------------------------------- routing
    def next_hop(self, dst: str) -> Optional[str]:
        route = self.route_to(dst)
        if route is None:
            return None
        try:
            index = route.index(self.node.node_id)
        except ValueError:
            return None
        if index + 1 < len(route):
            return route[index + 1]
        return None

    def route_to(self, dst: str) -> Optional[List[str]]:
        """The full cached source route to ``dst`` (including both endpoints)."""
        entry = self._cache.get(dst)
        if entry is None:
            return None
        if self.node.sim.now - entry.installed_at > self.route_lifetime:
            del self._cache[dst]
            return None
        return entry.route

    def on_no_route(self, packet: IpPacket) -> None:
        """Queue the packet and start (or continue) a route discovery.

        Only the packet's *source* initiates discoveries; an intermediate
        node that lost the route simply drops the packet (the source will
        retransmit and rediscover), which prevents discovery storms.
        """
        if packet.dst == self.node.node_id:
            return
        if packet.src != self.node.node_id:
            return
        queue = self._waiting_packets.setdefault(packet.dst, [])
        if len(queue) < 32:
            queue.append(packet)
        self._start_discovery(packet.dst)

    def on_delivery_failure(self, packet: IpPacket, next_hop: str) -> None:
        """Broken link: purge routes using it and report a Route Error."""
        broken = (self.node.node_id, next_hop)
        for destination in list(self._cache):
            route = self._cache[destination].route
            for hop_a, hop_b in zip(route, route[1:]):
                if (hop_a, hop_b) == broken:
                    del self._cache[destination]
                    break
        self.rerr_sent += 1
        self.control_messages_sent += 1
        self.node.broadcast(("rerr", broken), RERR_BYTES, kind="dsr-rerr")
        if packet.src == self.node.node_id:
            self.on_no_route(packet)

    # --------------------------------------------------------------- discovery
    def _start_discovery(self, dst: str) -> None:
        if dst in self._pending_discovery:
            return
        self._pending_discovery[dst] = 0
        self._send_rreq(dst)

    def _send_rreq(self, dst: str) -> None:
        self._request_serial += 1
        self.discoveries += 1
        self.rreq_sent += 1
        self.control_messages_sent += 1
        request_id = (self.node.node_id, self._request_serial)
        self._seen_requests.add(request_id)
        record = [self.node.node_id]
        size = RREQ_BASE_BYTES + HOP_WIRE_BYTES * len(record)
        self.node.broadcast(("rreq", request_id, dst, record, self.max_flood_hops), size, kind="dsr-rreq")
        self.node.sim.schedule(self.discovery_timeout, self._check_discovery, dst)

    def _check_discovery(self, dst: str) -> None:
        if dst not in self._pending_discovery:
            return
        if self.route_to(dst) is not None:
            self._discovery_succeeded(dst)
            return
        retries = self._pending_discovery[dst] + 1
        if retries > self.max_discovery_retries:
            del self._pending_discovery[dst]
            self._waiting_packets.pop(dst, None)
            return
        self._pending_discovery[dst] = retries
        self._send_rreq(dst)

    def _discovery_succeeded(self, dst: str) -> None:
        self._pending_discovery.pop(dst, None)
        route = self.route_to(dst)
        for packet in self._waiting_packets.pop(dst, []):
            packet.source_route = list(route) if route else None
            self.node.send(packet)

    # --------------------------------------------------------------- receiving
    def _on_rreq(self, sender: str, payload, kind: str) -> None:
        _, request_id, dst, record, hops_left = payload
        if request_id in self._seen_requests or self.node.node_id in record:
            return
        self._seen_requests.add(request_id)
        record = record + [self.node.node_id]
        now = self.node.sim.now
        # Learn the reverse route back to the request originator for free.
        self._install_route(list(reversed(record)), now)
        if dst == self.node.node_id:
            self._send_rrep(record, request_id)
            return
        cached = self.route_to(dst)
        if cached is not None and self.node.node_id in cached:
            index = cached.index(self.node.node_id)
            full_route = record + cached[index + 1:]
            self._send_rrep(full_route, request_id)
            return
        if hops_left <= 1:
            return
        size = RREQ_BASE_BYTES + HOP_WIRE_BYTES * len(record)
        # Random re-broadcast jitter keeps neighbouring forwarders from
        # flooding the same request at the exact same instant.
        delay = self.node.sim.rng(f"dsr.{self.node.node_id}").uniform(0.002, 0.020)

        def _forward() -> None:
            self.rreq_sent += 1
            self.control_messages_sent += 1
            self.node.broadcast(("rreq", request_id, dst, record, hops_left - 1), size, kind="dsr-rreq")

        self.node.sim.schedule(delay, _forward)

    def _send_rrep(self, route: List[str], request_id) -> None:
        """Send a Route Reply carrying ``route`` back towards its first hop."""
        size = RREP_BASE_BYTES + HOP_WIRE_BYTES * len(route)
        delay = self.node.sim.rng(f"dsr.{self.node.node_id}").uniform(0.001, 0.010)

        def _send() -> None:
            self.rrep_sent += 1
            self.control_messages_sent += 1
            self.node.broadcast(("rrep", list(route), request_id), size, kind="dsr-rrep")

        self.node.sim.schedule(delay, _send)

    def _on_rrep(self, sender: str, payload, kind: str) -> None:
        _, route, _request_id = payload
        if self.node.node_id not in route:
            return
        # Forward each distinct reply at most once, otherwise neighbouring
        # nodes on the route bounce the same reply back and forth forever.
        reply_key = (_request_id, tuple(route))
        if reply_key in self._seen_replies:
            return
        self._seen_replies.add(reply_key)
        now = self.node.sim.now
        index = route.index(self.node.node_id)
        # Cache the downstream part of the route (towards the destination).
        self._install_route(route[index:], now)
        if index == 0:
            # We originated the discovery.
            destination = route[-1]
            if destination in self._pending_discovery:
                self._discovery_succeeded(destination)
        else:
            # Propagate the reply towards the originator (previous hop in the record).
            self._send_rrep(route, _request_id)

    def _on_rerr(self, sender: str, payload, kind: str) -> None:
        _, broken = payload
        hop_a, hop_b = broken
        for destination in list(self._cache):
            route = self._cache[destination].route
            for a, b in zip(route, route[1:]):
                if (a, b) == (hop_a, hop_b):
                    del self._cache[destination]
                    break

    # ----------------------------------------------------------------- helpers
    def _install_route(self, route: List[str], now: float) -> None:
        if len(route) < 2 or route[0] != self.node.node_id:
            return
        destination = route[-1]
        current = self._cache.get(destination)
        if current is None or len(route) < len(current.route):
            self._cache[destination] = _RouteCacheEntry(route=list(route), installed_at=now)
        else:
            current.installed_at = now

    def source_route_for(self, dst: str) -> Optional[List[str]]:
        """Source route to embed in outgoing packets (Ekta data path)."""
        return self.route_to(dst)

    # -------------------------------------------------------------- accounting
    @property
    def cache_size(self) -> int:
        return len(self._cache)

    @property
    def state_size_bytes(self) -> int:
        total = 64
        for entry in self._cache.values():
            total += HOP_WIRE_BYTES * len(entry.route) + 16
        total += 8 * len(self._seen_requests)
        return total
