"""MANET routing protocols used by the IP-based baselines.

* :mod:`repro.manet.dsdv` — Destination-Sequenced Distance Vector, the
  proactive protocol Bithoc relies on (periodic full-table broadcasts plus
  triggered updates; freshness via per-destination sequence numbers).
* :mod:`repro.manet.dsr` — Dynamic Source Routing, the reactive protocol the
  Ekta DHT is integrated with (on-demand route discovery via flooding,
  source-routed data packets, route caches, route error reports).
"""

from repro.manet.dsdv import DsdvRouting
from repro.manet.dsr import DsrRouting
from repro.manet.routing_base import RoutingProtocol

__all__ = ["DsdvRouting", "DsrRouting", "RoutingProtocol"]
