"""Destination-Sequenced Distance Vector routing (DSDV).

Every node periodically broadcasts its routing table (destination, metric,
sequence number).  A received advertisement installs or refreshes routes via
the neighbour it came from when the advertised sequence number is newer, or
equal with a better metric.  Broken links (detected by the IP stack through
missing link-layer acknowledgements) bump the destination's sequence number
to an odd value and trigger an immediate update — the classic DSDV behaviour
that makes it chatty under mobility, which is precisely the overhead source
the paper measures for Bithoc.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.simulation import PeriodicTimer
from repro.ip.packet import IpPacket
from repro.manet.routing_base import RoutingProtocol

ROUTE_ENTRY_WIRE_BYTES = 12


@dataclass
class DsdvRoute:
    """One routing-table entry."""

    destination: str
    next_hop: str
    metric: int
    sequence: int
    installed_at: float


class DsdvRouting(RoutingProtocol):
    """Proactive distance-vector routing with destination sequence numbers."""

    def __init__(
        self,
        update_interval: float = 5.0,
        route_lifetime: float = 15.0,
        triggered_update_delay: float = 0.1,
    ):
        super().__init__()
        self.update_interval = update_interval
        self.route_lifetime = route_lifetime
        self.triggered_update_delay = triggered_update_delay
        self._routes: Dict[str, DsdvRoute] = {}
        self._own_sequence = 0
        self._update_timer: Optional[PeriodicTimer] = None
        self._triggered_pending = False
        self.updates_sent = 0
        self.updates_received = 0

    # ---------------------------------------------------------------- set-up
    def attach(self, node) -> None:
        super().attach(node)
        node.register_broadcast("dsdv-update", self._on_update)

    def start(self) -> None:
        if self.node is None:
            raise RuntimeError("attach the protocol to a node before starting it")
        rng = self.node.sim.rng(f"dsdv.{self.node.node_id}")
        self._update_timer = PeriodicTimer(
            self.node.sim, self._broadcast_update, period=self.update_interval, jitter=0.5, rng=rng
        )
        self._update_timer.start(initial_delay=rng.uniform(0.0, 1.0))

    def stop(self) -> None:
        if self._update_timer is not None:
            self._update_timer.stop()

    # ------------------------------------------------------------- advertising
    def _broadcast_update(self) -> None:
        self._own_sequence += 2  # even sequence numbers: the destination is alive
        self._expire_routes()
        entries = [(self.node.node_id, 0, self._own_sequence)]
        for route in self._routes.values():
            entries.append((route.destination, route.metric, route.sequence))
        size = 8 + ROUTE_ENTRY_WIRE_BYTES * len(entries)
        self.updates_sent += 1
        self.control_messages_sent += 1
        self.node.broadcast(("dsdv", entries), size, kind="dsdv-update")

    def _trigger_update(self) -> None:
        if self._triggered_pending:
            return
        self._triggered_pending = True
        # Jitter keeps every node that learnt the same news from advertising
        # it at the exact same instant.
        jitter = self.node.sim.rng(f"dsdv.{self.node.node_id}").uniform(0.0, 0.2)

        def _fire() -> None:
            self._triggered_pending = False
            self._broadcast_update()

        self.node.sim.schedule(self.triggered_update_delay + jitter, _fire)

    # --------------------------------------------------------------- receiving
    def _on_update(self, sender: str, payload, kind: str) -> None:
        if self.node is None:
            return
        self.updates_received += 1
        _, entries = payload
        now = self.node.sim.now
        changed = False
        for destination, metric, sequence in entries:
            if destination == self.node.node_id:
                continue
            new_metric = metric + 1
            current = self._routes.get(destination)
            accept = False
            if current is None:
                accept = True
            elif sequence > current.sequence:
                accept = True
            elif sequence == current.sequence and new_metric < current.metric:
                accept = True
            if accept:
                # Only genuine topology news (new destination, different next
                # hop or metric) triggers an immediate update; sequence-number
                # refreshes propagate with the next periodic advertisement.
                if current is None or current.next_hop != sender or current.metric != new_metric:
                    changed = True
                self._routes[destination] = DsdvRoute(
                    destination=destination,
                    next_hop=sender,
                    metric=new_metric,
                    sequence=sequence,
                    installed_at=now,
                )
        if changed:
            # Fresh topology information propagates through triggered updates.
            self._trigger_update()

    # ----------------------------------------------------------------- routing
    def next_hop(self, dst: str) -> Optional[str]:
        self._expire_routes()
        route = self._routes.get(dst)
        if route is None:
            return None
        return route.next_hop

    def on_delivery_failure(self, packet: IpPacket, next_hop: str) -> None:
        """A link broke: invalidate every route through that neighbour."""
        now = self.node.sim.now
        invalidated = False
        for destination in list(self._routes):
            route = self._routes[destination]
            if route.next_hop == next_hop:
                # Odd sequence number marks the route as broken (DSDV convention).
                del self._routes[destination]
                invalidated = True
        if invalidated:
            self._trigger_update()

    def _expire_routes(self) -> None:
        if self.node is None:
            return
        now = self.node.sim.now
        stale = [
            destination
            for destination, route in self._routes.items()
            if now - route.installed_at > self.route_lifetime
        ]
        for destination in stale:
            del self._routes[destination]

    # -------------------------------------------------------------- accounting
    @property
    def route_count(self) -> int:
        return len(self._routes)

    @property
    def state_size_bytes(self) -> int:
        return ROUTE_ENTRY_WIRE_BYTES * len(self._routes) + 64
