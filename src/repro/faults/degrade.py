"""Degrade faults: time-varying channel quality as a deterministic waveform.

The whole channel periodically worsens: during the last ``duty`` fraction
of every ``period``, an extra loss probability of ``severity`` applies to
every delivery (on top of propagation and uniform channel loss).  With
``severity=1.0`` the window is a total blackout.

The waveform is a pure square wave — no RNG streams at all — because the
interesting randomness is *when frames happen to be in flight*, which the
protocols already provide.  That also makes degrade the cheapest fault
model to reason about in regression tests: the degraded windows sit at
exactly ``k*period + (1-duty)*period``.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.faults.base import (
    DEGRADE,
    FaultEpisode,
    FaultModel,
    FaultPlan,
    StreamFn,
    non_negative_number,
    positive_number,
    register_fault,
    severity_value,
)


def _duty(value):
    if not isinstance(value, (int, float)) or not 0.0 < value < 1.0:
        return "must be a duty fraction in (0, 1)"
    return None


@register_fault("degrade")
class Degrade(FaultModel):
    """A periodic square wave of extra channel loss."""

    PARAMS = {
        "period": positive_number,
        "duty": _duty,
        "severity": severity_value,
        "offset": non_negative_number,
    }

    def plan(self, node_ids: Sequence[str], horizon: float, stream: StreamFn) -> FaultPlan:
        period = float(self.param("period", 20.0))
        duty = float(self.param("duty", 0.25))
        severity = float(self.param("severity", 0.5))
        offset = float(self.param("offset", 0.0))

        episodes: List[FaultEpisode] = []
        start = offset + period * (1.0 - duty)
        while start < horizon:
            episodes.append(
                FaultEpisode(
                    kind=DEGRADE,
                    start=start,
                    end=min(start + period * duty, horizon),
                    subject=None,
                    severity=severity,
                )
            )
            start += period
        return FaultPlan(episodes=tuple(episodes))
