"""Deterministic fault injection: network degradation as a scenario axis.

See :mod:`repro.faults.base` for the model contract and registry,
:mod:`repro.faults.manager` for the lifecycle manager the scenario builders
wire into ``world()``, and :mod:`repro.faults.invariants` for the runtime
safety/liveness monitor.  Importing this package registers the built-in
models: ``none``, ``link_flap``, ``partition``, ``stall``, ``degrade``.
"""

from repro.faults.base import (
    DEGRADE,
    KINDS,
    LINK,
    PARTITION,
    SHARD,
    SPATIAL,
    STALL,
    FaultEpisode,
    FaultModel,
    FaultPlan,
    available_fault_models,
    build_fault_model,
    fault_model_class,
    pair_key,
    register_fault,
    validate_faults,
)
from repro.faults.degrade import Degrade
from repro.faults.invariants import (
    InvariantMonitor,
    InvariantViolationError,
    build_invariant_monitor,
)
from repro.faults.link_flap import LinkFlap
from repro.faults.manager import FaultManager, build_fault_manager, fault_node_ids
from repro.faults.partition import Partition
from repro.faults.stall import Stall

__all__ = [
    "DEGRADE",
    "KINDS",
    "LINK",
    "PARTITION",
    "SHARD",
    "SPATIAL",
    "STALL",
    "Degrade",
    "FaultEpisode",
    "FaultManager",
    "FaultModel",
    "FaultPlan",
    "InvariantMonitor",
    "InvariantViolationError",
    "LinkFlap",
    "Partition",
    "Stall",
    "available_fault_models",
    "build_fault_manager",
    "build_fault_model",
    "build_invariant_monitor",
    "fault_model_class",
    "fault_node_ids",
    "pair_key",
    "register_fault",
    "validate_faults",
]
