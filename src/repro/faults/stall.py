"""Stall faults: nodes pause and resume with their clocks intact.

A stalled node is a paused process, not a dead one (that is churn's
``kill``): its timers keep firing, but every frame it hands to the medium
is queued — and replayed, in order, when the stall ends — and every frame
addressed to it is suppressed while stalled.  This is the GC-pause /
overloaded-CPU / suspended-VM failure mode: the node falls silent without
any protocol-visible departure, so peers must detect the darkness through
timeouts rather than a clean goodbye.

Each participating node alternates active and stalled intervals (both
exponential) drawn from its own named stream (``faults.stall.<node>``),
exactly parallel to :mod:`repro.faults.link_flap` over nodes instead of
links.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.faults.base import (
    STALL,
    FaultEpisode,
    FaultModel,
    FaultPlan,
    StreamFn,
    positive_number,
    probability,
    register_fault,
)


@register_fault("stall")
class Stall(FaultModel):
    """Alternating active/stalled renewal episodes per node."""

    PARAMS = {
        "mean_active": positive_number,
        "mean_stalled": positive_number,
        "node_fraction": probability,
    }

    def plan(self, node_ids: Sequence[str], horizon: float, stream: StreamFn) -> FaultPlan:
        mean_active = float(self.param("mean_active", 30.0))
        mean_stalled = float(self.param("mean_stalled", 5.0))
        node_fraction = float(self.param("node_fraction", 0.2))

        episodes: List[FaultEpisode] = []
        for node_id in sorted(node_ids):
            rng = stream(f"stall.{node_id}")
            # The first draw decides participation (see link_flap).
            if rng.random() >= node_fraction:
                continue
            time = rng.expovariate(1.0 / mean_active)
            while time < horizon:
                stalled = rng.expovariate(1.0 / mean_stalled)
                episodes.append(
                    FaultEpisode(
                        kind=STALL,
                        start=time,
                        end=min(time + stalled, horizon),
                        subject=node_id,
                    )
                )
                time += stalled + rng.expovariate(1.0 / mean_active)
        episodes.sort(key=lambda episode: episode.start)
        return FaultPlan(episodes=tuple(episodes))
