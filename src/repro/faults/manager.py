"""The fault lifecycle manager: a model's plan, applied through the simulator.

The scenario builders construct the world exactly as a fault-free run
would; the manager then degrades it on schedule.  Every episode in the
model's :class:`~repro.faults.base.FaultPlan` becomes two scheduler events
— a *begin* and a *heal* — and between them the manager answers the
medium's hot-path queries:

* :meth:`link_extra_loss` — is this (sender, receiver) link blocked
  outright (``None``), clean (``0.0``), or carrying extra loss?  Folds
  together link-flap penalties, partition boundaries and global degrade
  windows;
* :meth:`sender_stalled` / :meth:`queue_frame` — a stalled node's outbound
  frames are queued and replayed, in order, on resume (its clock and
  timers keep running: a paused process, not a dead one);
* :meth:`delivery_suppressed` — frames addressed to a stalled node are
  dropped at completion time (and counted), which also exercises the
  link-layer ARQ exactly as a real silent receiver would.

Healing drives the recovery metrics: when a partition heals, the manager
starts a time-to-recover watch that closes on the first delivery crossing
the old boundary, and notifies registered per-node heal callbacks (the
DAPES peers re-announce themselves, see ``DapesPeer.reannounce``).

Zero faults never reach this module: ``build_fault_manager`` returns
``None`` for ``faults="none"`` and the builders keep the entire subsystem
out of the event stream, preserving byte-identity with pre-fault runs.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, FrozenSet, List, Optional, Tuple

from repro.faults.base import (
    DEGRADE,
    LINK,
    PARTITION,
    SHARD,
    SPATIAL,
    STALL,
    FaultEpisode,
    FaultPlan,
    build_fault_model,
    pair_key,
    validate_faults,
)


class FaultManager:
    """Applies a deterministic fault plan to a wired scenario."""

    def __init__(self, sim, medium, model, node_ids: List[str], horizon: float):
        self.sim = sim
        self.medium = medium
        self.model = model
        self.node_ids = list(node_ids)
        self.horizon = float(horizon)
        self._plan: Optional[FaultPlan] = None
        self._activated = False
        # Live fault state.
        self._down: Dict[Tuple[str, str], int] = {}
        self._penalties: Dict[Tuple[str, str], List[float]] = {}
        self._partitions: List[FrozenSet[str]] = []
        self._partition_groups: Dict[int, FrozenSet[str]] = {}
        self._stall_depth: Dict[str, int] = {}
        self._stall_queues: Dict[str, List[object]] = {}
        self._degrade: List[float] = []
        self._degrade_loss = 0.0
        self._active = 0
        self._active_since = 0.0
        self._heal_callbacks: Dict[str, Callable[[], None]] = {}
        self._pending_recovery: List[Tuple[float, FrozenSet[str]]] = []
        # Counters surfaced through metrics()/profiling.
        self.episodes_planned = 0
        self.link_blocks = 0
        self.partitions_started = 0
        self.stalls = 0
        self.degrade_windows = 0
        self.suppressed_deliveries = 0
        self.stalled_sends = 0
        self.replayed_frames = 0
        self.partition_heals = 0
        self.stall_resumes = 0
        self.deliveries_under_fault = 0
        self.fault_active_time = 0.0
        self.recovery_samples: List[float] = []

    # ----------------------------------------------------------------- queries
    def plan(self) -> FaultPlan:
        """The model's full plan (computed once, cached)."""
        if self._plan is None:
            stream = lambda entity: self.sim.rng(f"faults.{entity}")
            self._plan = self.model.plan(self.node_ids, self.horizon, stream)
        return self._plan

    @property
    def any_active(self) -> bool:
        """Whether any fault episode is currently in effect."""
        return self._active > 0

    def node_stalled(self, node_id: str) -> bool:
        """Whether ``node_id`` is currently stalled."""
        return node_id in self._stall_depth

    def link_extra_loss(self, sender: str, receiver: str) -> Optional[float]:
        """``None`` when the link is blocked, else the extra loss probability.

        Folds link-flap penalties, partition boundaries and degrade windows
        into one number the medium layers onto the per-link propagation
        loss.  ``0.0`` (the fast path when nothing is active) means clean.
        """
        if not self._active:
            return 0.0
        key = (sender, receiver) if sender <= receiver else (receiver, sender)
        if self._down and key in self._down:
            return None
        for group in self._partitions:
            if (sender in group) != (receiver in group):
                return None
        extra = self._degrade_loss
        if self._penalties:
            for severity in self._penalties.get(key, ()):
                extra = 1.0 - (1.0 - extra) * (1.0 - severity)
        return extra

    def visible(self, node_id: str, other: str) -> bool:
        """Whether ``other`` should appear in ``node_id``'s neighbour set."""
        if not self._active:
            return True
        if other in self._stall_depth:
            return False
        return self.link_extra_loss(node_id, other) is not None

    def sender_stalled(self, node_id: str) -> bool:
        """Hot-path check: must this sender's frame be queued instead of sent?"""
        return bool(self._stall_depth) and node_id in self._stall_depth

    def queue_frame(self, node_id: str, frame) -> None:
        """Queue a stalled sender's frame for replay at resume time."""
        self.stalled_sends += 1
        self._stall_queues[node_id].append(frame)

    def delivery_suppressed(self, receiver_id: str) -> bool:
        """Whether a completing reception at ``receiver_id`` must be dropped."""
        if self._stall_depth and receiver_id in self._stall_depth:
            self.suppressed_deliveries += 1
            return True
        return False

    def note_delivery(self, sender: str, receiver: str) -> None:
        """Observe one successful delivery (goodput + recovery tracking)."""
        if self._active:
            self.deliveries_under_fault += 1
        pending = self._pending_recovery
        if pending:
            now = self.sim.now
            for index, (heal_time, group) in enumerate(pending):
                if (sender in group) != (receiver in group):
                    self.recovery_samples.append(now - heal_time)
                    del pending[index]
                    break

    def metrics(self) -> Dict[str, float]:
        """Fault and recovery counters for RunResult extras / profiling."""
        active_time = self.fault_active_time
        if self._active:
            active_time += self.sim.now - self._active_since
        metrics = {
            "faults.episodes": float(self.episodes_planned),
            "faults.link_blocks": float(self.link_blocks),
            "faults.partitions": float(self.partitions_started),
            "faults.stalls": float(self.stalls),
            "faults.degrade_windows": float(self.degrade_windows),
            "faults.suppressed_deliveries": float(self.suppressed_deliveries),
            "faults.stalled_sends": float(self.stalled_sends),
            "faults.replayed_frames": float(self.replayed_frames),
            "faults.active_time": active_time,
            "faults.deliveries_under_fault": float(self.deliveries_under_fault),
            "recovery.heals": float(self.partition_heals + self.stall_resumes),
        }
        if active_time > 0:
            metrics["recovery.goodput_under_fault"] = (
                self.deliveries_under_fault / active_time
            )
        if self.recovery_samples:
            metrics["recovery.recovered_partitions"] = float(len(self.recovery_samples))
            metrics["recovery.time_to_recover_mean"] = sum(self.recovery_samples) / len(
                self.recovery_samples
            )
            metrics["recovery.time_to_recover_max"] = max(self.recovery_samples)
        return metrics

    # ------------------------------------------------------------ registration
    def register_heal(self, node_id: str, callback: Callable[[], None]) -> None:
        """Register a recovery nudge invoked when ``node_id``'s fault heals.

        Called after a partition containing the node heals or the node's
        stall resumes — the protocol-level hook for re-announcement.
        """
        self._heal_callbacks[node_id] = callback

    # -------------------------------------------------------------- activation
    def activate(self) -> None:
        """Hook into the medium and schedule every episode's begin and heal.

        Called once from ``Scenario.start()``; idempotent.  Episodes are
        scheduled in plan order (stable sort by start time), so equal-time
        events fire in a deterministic sequence.
        """
        if self._activated:
            return
        self._activated = True
        self.medium.set_fault_manager(self)
        plan = self.plan()
        self.episodes_planned = len(plan.episodes)
        now = self.sim.now
        for episode in plan.episodes:
            self.sim.schedule_call(max(0.0, episode.start - now), self._begin, episode)
            self.sim.schedule_call(max(0.0, episode.end - now), self._end, episode)

    # ---------------------------------------------------------- state machine
    def _begin(self, episode: FaultEpisode) -> None:
        if self._active == 0:
            self._active_since = self.sim.now
        self._active += 1
        kind = episode.kind
        if kind == LINK:
            key = pair_key(*episode.subject)
            if episode.severity >= 1.0:
                self._down[key] = self._down.get(key, 0) + 1
            else:
                self._penalties.setdefault(key, []).append(episode.severity)
            self.link_blocks += 1
        elif kind == PARTITION:
            group = self._resolve_group(episode)
            self._partitions.append(group)
            self._partition_groups[id(episode)] = group
            self.partitions_started += 1
        elif kind == STALL:
            node_id = episode.subject
            self._stall_depth[node_id] = self._stall_depth.get(node_id, 0) + 1
            self._stall_queues.setdefault(node_id, [])
            self.stalls += 1
        else:  # DEGRADE
            self._degrade.append(episode.severity)
            self._recompute_degrade()
            self.degrade_windows += 1

    def _end(self, episode: FaultEpisode) -> None:
        kind = episode.kind
        if kind == LINK:
            key = pair_key(*episode.subject)
            if episode.severity >= 1.0:
                remaining = self._down.get(key, 0) - 1
                if remaining <= 0:
                    self._down.pop(key, None)
                else:
                    self._down[key] = remaining
            else:
                stack = self._penalties.get(key)
                if stack:
                    stack.remove(episode.severity)
                    if not stack:
                        del self._penalties[key]
        elif kind == PARTITION:
            group = self._partition_groups.pop(id(episode), None)
            if group is not None:
                self._partitions.remove(group)
                self.partition_heals += 1
                self._pending_recovery.append((self.sim.now, group))
                self._notify_heal(group)
        elif kind == STALL:
            node_id = episode.subject
            depth = self._stall_depth.get(node_id, 0) - 1
            if depth > 0:
                self._stall_depth[node_id] = depth
            else:
                self._stall_depth.pop(node_id, None)
                queue = self._stall_queues.pop(node_id, [])
                self.stall_resumes += 1
                for frame in queue:
                    # Replay in arrival order; a node killed (detached)
                    # mid-stall hits the medium's orphaned-send guard.
                    self.replayed_frames += 1
                    self.medium.transmit(node_id, frame)
                self._notify_heal((node_id,))
        else:  # DEGRADE
            self._degrade.remove(episode.severity)
            self._recompute_degrade()
        self._active -= 1
        if self._active == 0:
            self.fault_active_time += self.sim.now - self._active_since

    def _recompute_degrade(self) -> None:
        loss = 0.0
        for severity in self._degrade:
            loss = 1.0 - (1.0 - loss) * (1.0 - severity)
        self._degrade_loss = loss

    def _resolve_group(self, episode: FaultEpisode) -> FrozenSet[str]:
        """Partition membership: explicit tuple, or a spatial split at begin time.

        The spatial mode isolates the westmost ``fraction`` of the currently
        attached nodes by x coordinate (ties broken by node id) — position
        lookups at one fixed simulated time, so the split is deterministic
        across spatial backends and execution modes.
        """
        subject = episode.subject
        if (
            isinstance(subject, tuple) and len(subject) >= 2 and subject[0] == SHARD
            and isinstance(subject[1], int)
        ):
            return self._resolve_shard_group(subject)
        spatial = subject == SPATIAL or (
            isinstance(subject, tuple) and len(subject) == 2 and subject[0] == SPATIAL
            and isinstance(subject[1], float)
        )
        if not spatial:
            return frozenset(subject)
        fraction = subject[1] if isinstance(subject, tuple) else 0.5
        now = self.sim.now
        attached = set(self.medium.node_ids)
        present = [node_id for node_id in self.node_ids if node_id in attached]
        if len(present) < 2:
            return frozenset(present)
        position = self.medium.mobility.position_xy
        ranked = sorted(present, key=lambda node_id: (position(node_id, now)[0], node_id))
        size = max(1, min(len(ranked) - 1, math.ceil(fraction * len(ranked))))
        return frozenset(ranked[:size])

    def _resolve_shard_group(self, subject) -> FrozenSet[str]:
        """Shard-dark membership: the nodes region shard ``subject[1]`` owns now.

        Resolved through the medium's active :class:`RegionPartition` when
        the medium is sharded, else through the partition geometry the
        channel config describes — one batched coordinate lookup at a fixed
        simulated time, deterministic across spatial backends and executor
        modes.  A ``(SHARD, k, shards, region_width)`` subject pins the
        geometry explicitly (the :class:`~repro.faults.partition.Partition`
        ``shards``/``region_width`` params), so a sharded and an unsharded
        run of the same rehearsal cut exactly the same group.
        """
        from repro.wireless.sharded import RegionPartition, partition_for_config

        shard = subject[1]
        partition = getattr(self.medium, "region_partition", None)
        if partition is None:
            partition = partition_for_config(self.medium.config)
        if len(subject) > 2:
            shards, width = subject[2], subject[3]
            partition = RegionPartition(
                int(shards) if shards is not None else partition.shards,
                float(width) if width is not None else partition.region_width,
            )
        now = self.sim.now
        attached = set(self.medium.node_ids)
        present = [node_id for node_id in self.node_ids if node_id in attached]
        coords = self.medium.mobility.coordinates_at(present, now)
        target = shard % partition.shards if partition.shards else 0
        return frozenset(
            node_id
            for node_id, (x, _) in zip(present, coords)
            if partition.shard_of(x) == target
        )

    def _notify_heal(self, group) -> None:
        # Registration order (dict order) keeps the nudges deterministic.
        for node_id, callback in self._heal_callbacks.items():
            if node_id in group:
                callback()


def fault_node_ids(names: Dict[str, List[str]]) -> List[str]:
    """The deterministic faultable set: every node, producer included.

    Unlike churn (which protects the producer — removing it would make
    downloads unsatisfiable rather than exercising dynamics), faults may
    hit anyone: partitioning the producer away from the swarm is exactly
    the disaster scenario the paper targets, and the invariant monitor's
    starvation accounting covers runs where nothing can complete.
    """
    return (
        names.get("downloaders", [])
        + names.get("stationary", [])
        + names.get("pure", [])
        + names.get("intermediate", [])
    )


def build_fault_manager(config, sim, medium, names: Dict[str, List[str]]):
    """Build the fault manager for ``config``, or ``None`` for zero faults.

    The ``none`` model short-circuits here — no manager object, no RNG
    streams, no scheduled events — so a zero-fault run stays byte-identical
    to one built before the fault subsystem existed.
    """
    name = getattr(config, "faults", "none")
    if name == "none":
        return None
    params = dict(getattr(config, "fault_params", None) or {})
    validate_faults(name, params)
    model = build_fault_model(name, params)
    return FaultManager(sim, medium, model, fault_node_ids(names), horizon=config.max_duration)
