"""Link-flap faults: per-pair loss episodes layered onto any propagation.

Each participating node pair lives through an alternating renewal process —
an *up* interval followed by a *down* episode, both exponential — entirely
analogous to the Poisson churn model, but over links instead of nodes.  A
``pair_fraction`` of all pairs participates (the rest never flap), and a
down episode either blocks the link outright (``severity=1.0``, the
default) or adds ``severity`` extra loss probability on top of whatever the
propagation model and the uniform channel loss already impose.

Every draw for a pair comes from that pair's own named stream
(``faults.link.<a>|<b>``, ids sorted), so one link's trajectory never
perturbs another's — the property that keeps plans identical across
spatial backends and execution modes.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.faults.base import (
    LINK,
    FaultEpisode,
    FaultModel,
    FaultPlan,
    StreamFn,
    pair_key,
    positive_number,
    probability,
    register_fault,
    severity_value,
)


@register_fault("link_flap")
class LinkFlap(FaultModel):
    """Alternating up/down renewal episodes per node pair."""

    PARAMS = {
        "mean_up": positive_number,
        "mean_down": positive_number,
        "pair_fraction": probability,
        "severity": severity_value,
    }

    def plan(self, node_ids: Sequence[str], horizon: float, stream: StreamFn) -> FaultPlan:
        mean_up = float(self.param("mean_up", 20.0))
        mean_down = float(self.param("mean_down", 5.0))
        pair_fraction = float(self.param("pair_fraction", 0.3))
        severity = float(self.param("severity", 1.0))

        episodes: List[FaultEpisode] = []
        ordered = sorted(node_ids)
        for i, a in enumerate(ordered):
            for b in ordered[i + 1:]:
                pair = pair_key(a, b)
                rng = stream(f"link.{pair[0]}|{pair[1]}")
                # The first draw decides participation, so adding a pair to
                # the topology never shifts any other pair's episode times.
                if rng.random() >= pair_fraction:
                    continue
                time = rng.expovariate(1.0 / mean_up)
                while time < horizon:
                    down = rng.expovariate(1.0 / mean_down)
                    episodes.append(
                        FaultEpisode(
                            kind=LINK,
                            start=time,
                            end=min(time + down, horizon),
                            subject=pair,
                            severity=severity,
                        )
                    )
                    time += down + rng.expovariate(1.0 / mean_up)
        episodes.sort(key=lambda episode: episode.start)
        return FaultPlan(episodes=tuple(episodes))
