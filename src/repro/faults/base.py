"""The deterministic fault-model contract and registry.

Where churn (:mod:`repro.churn`) degrades the *population*, faults degrade
the *network*: links flap, the area splits into partitions, nodes stall
mid-run, and the whole channel degrades for a window.  A fault model plans
its entire schedule up front — :meth:`FaultModel.plan` is a pure function of
the node ids, the run horizon and per-entity named RNG streams
(``faults.<entity>``), so the same seed always produces the same fault
trajectory, serial or parallel, scalar or array backend.

A plan is a set of :class:`FaultEpisode` intervals, each of one kind:

* ``link``      — the link between one node *pair* is down (``severity`` =
  1.0, the default) or degraded (extra loss probability ``severity`` < 1.0)
  for the interval, layered onto whatever propagation backend is active;
* ``partition`` — a group of nodes is cut off from the rest: every link
  crossing the boundary is blocked until the episode heals.  The subject is
  either an explicit node-id tuple or the sentinel ``"spatial"``, which the
  lifecycle manager resolves from node positions when the split begins;
* ``stall``     — one node pauses: frames it hands to the medium are queued
  (and replayed, in order, on resume) and frames addressed to it are
  suppressed.  Its clock and timers keep running — a paused process, not a
  dead one;
* ``degrade``   — a global extra loss probability (``severity``) applies to
  every delivery during the interval: time-varying channel quality.

Models register under short names via :func:`register_fault`, mirroring the
topology/protocol/propagation/churn registries; ``ExperimentConfig.faults``
selects one by name and ``ExperimentConfig.fault_params`` parameterizes it.
The ``none`` model is special-cased by the scenario builders: no manager,
no episodes, no RNG stream creation — byte-identical to a build without the
fault subsystem.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Type

#: FaultEpisode kinds.
LINK = "link"
PARTITION = "partition"
STALL = "stall"
DEGRADE = "degrade"

KINDS = (LINK, PARTITION, STALL, DEGRADE)

#: Subject sentinel: resolve partition membership spatially at episode start.
SPATIAL = "spatial"

#: Subject sentinel: resolve partition membership as one region shard at
#: episode start — the "shard goes dark" rehearsal for the region-sharded
#: medium (see :mod:`repro.wireless.sharded`).  Subject form: ``(SHARD, k)``.
SHARD = "shard"

#: ``stream(entity)`` -> the entity's deterministic fault RNG.
StreamFn = Callable[[str], object]


@dataclass(frozen=True)
class FaultEpisode:
    """One fault interval: what breaks, when, and how badly.

    ``subject`` depends on ``kind``: a ``(a, b)`` node-id pair for ``link``,
    a node-id tuple (or the ``"spatial"`` sentinel) for ``partition``, a
    node id for ``stall``, and ``None`` for ``degrade``.  ``severity`` is
    the blocking strength: 1.0 (the default) blocks outright, anything in
    (0, 1) is an extra loss probability layered onto the channel.
    """

    kind: str
    start: float
    end: float
    subject: object = None
    severity: float = 1.0

    def __post_init__(self):
        if self.kind not in KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; expected one of {KINDS}")
        if not (isinstance(self.start, (int, float)) and self.start >= 0):
            raise ValueError(f"fault episode start must be non-negative (got {self.start!r})")
        if not (isinstance(self.end, (int, float)) and self.end > self.start):
            raise ValueError(
                f"fault episode end must exceed its start (got {self.start!r}..{self.end!r})"
            )
        if not (isinstance(self.severity, (int, float)) and 0.0 < self.severity <= 1.0):
            raise ValueError(f"fault severity must be in (0, 1] (got {self.severity!r})")
        if self.kind == LINK:
            if not (isinstance(self.subject, tuple) and len(self.subject) == 2):
                raise ValueError(f"link episode subject must be a node-id pair (got {self.subject!r})")
        elif self.kind == PARTITION:
            if self.subject != SPATIAL and not isinstance(self.subject, tuple):
                raise ValueError(
                    f"partition episode subject must be a node-id tuple or {SPATIAL!r} "
                    f"(got {self.subject!r})"
                )
        elif self.kind == STALL:
            if not isinstance(self.subject, str) or not self.subject:
                raise ValueError(f"stall episode subject must be a node id (got {self.subject!r})")

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class FaultPlan:
    """A full fault trajectory: every episode, sorted by start time.

    Sorting is stable (generation order breaks ties), so the lifecycle
    manager schedules begins and heals in one deterministic pass.
    """

    episodes: Tuple[FaultEpisode, ...] = ()

    @property
    def empty(self) -> bool:
        return not self.episodes


class FaultModel:
    """Base class: a deterministic network-degradation model.

    Subclasses read their parameters from ``params`` in ``__init__`` and
    implement :meth:`plan`.  ``validate_params`` rejects unknown keys and
    inconsistent values at configuration time, before any simulator exists —
    the same contract the churn and propagation registries follow.
    """

    name: str = ""

    #: Parameter name -> validator returning an error string or None.
    PARAMS: Mapping[str, Callable[[object], Optional[str]]] = {}

    def __init__(self, params: Optional[Mapping[str, object]] = None):
        self.params: Dict[str, object] = dict(params or {})
        self.validate_params(self.params)

    @classmethod
    def validate_params(cls, params: Mapping[str, object]) -> None:
        """Raise ``ValueError`` on unknown parameters or inconsistent values."""
        for key, value in params.items():
            validator = cls.PARAMS.get(key)
            if validator is None:
                raise ValueError(
                    f"fault model {cls.name!r} has no parameter {key!r}; "
                    f"available: {sorted(cls.PARAMS)}"
                )
            error = validator(value)
            if error:
                raise ValueError(f"fault parameter {key!r} {error} (got {value!r})")

    def param(self, key: str, default):
        return self.params.get(key, default)

    # ----------------------------------------------------------------- planning
    def plan(self, node_ids: Sequence[str], horizon: float, stream: StreamFn) -> FaultPlan:
        """The full fault trajectory for ``node_ids`` over ``[0, horizon]``.

        ``stream(entity)`` returns a named deterministic RNG
        (``faults.<entity>``); models must draw exclusively from these
        streams so the plan never perturbs any other stream's sequence.
        """
        raise NotImplementedError


# ---------------------------------------------------------- shared validators
def positive_number(value) -> Optional[str]:
    if not isinstance(value, (int, float)) or not value > 0:
        return "must be a positive number"
    return None


def non_negative_number(value) -> Optional[str]:
    if not isinstance(value, (int, float)) or not value >= 0:
        return "must be a non-negative number"
    return None


def probability(value) -> Optional[str]:
    if not isinstance(value, (int, float)) or not 0.0 <= value <= 1.0:
        return "must be a probability in [0, 1]"
    return None


def severity_value(value) -> Optional[str]:
    if not isinstance(value, (int, float)) or not 0.0 < value <= 1.0:
        return "must be a severity in (0, 1]"
    return None


def pair_key(a: str, b: str) -> Tuple[str, str]:
    """The canonical (sorted) key for an undirected node pair."""
    return (a, b) if a <= b else (b, a)


# ================================================================== registry
_FAULTS: Dict[str, Type[FaultModel]] = {}


def register_fault(name: str):
    """Class decorator: make a :class:`FaultModel` available under ``name``."""

    def decorator(cls: Type[FaultModel]) -> Type[FaultModel]:
        if name in _FAULTS:
            raise ValueError(f"fault model {name!r} is already registered")
        cls.name = name
        _FAULTS[name] = cls
        return cls

    return decorator


def available_fault_models() -> List[str]:
    """Names of all registered fault models."""
    return sorted(_FAULTS)


def fault_model_class(name: str) -> Type[FaultModel]:
    """Resolve a registered fault model class by name."""
    try:
        return _FAULTS[name]
    except KeyError:
        raise ValueError(
            f"unknown fault model {name!r}; available: {available_fault_models()}"
        ) from None


def validate_faults(name: str, params: Mapping[str, object]) -> None:
    """Raise ``ValueError`` on an unknown model or inconsistent parameters."""
    fault_model_class(name).validate_params(params)


def build_fault_model(name: str, params: Optional[Mapping[str, object]] = None) -> FaultModel:
    """Instantiate the fault model registered under ``name``."""
    return fault_model_class(name)(params)


@register_fault("none")
class NoFaults(FaultModel):
    """The null model: the network never degrades.

    Registered for registry completeness (``repro-experiments list
    --registries``); the scenario builders special-case ``faults="none"``
    and never instantiate a manager for it, so a zero-fault run is
    byte-identical to one built before the fault subsystem existed.
    """

    def plan(self, node_ids: Sequence[str], horizon: float, stream: StreamFn) -> FaultPlan:
        return FaultPlan()
