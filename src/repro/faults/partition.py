"""Partition faults: the network splits at *t* and heals at *t + d*.

The disaster-scenario headline fault: a group of nodes is cut off from the
rest — every link crossing the boundary is blocked — for ``duration``
seconds starting at ``at``, optionally repeating every ``repeat_every``
seconds.  Two membership modes:

* ``membership`` (default) — the group is a seeded random sample of
  ``fraction`` of the nodes, drawn once from the ``faults.partition``
  stream, so the same seed always isolates the same group;
* ``spatial``    — the group is resolved *when the split begins* from node
  positions (the westmost ``fraction`` by x coordinate): a physical barrier
  appearing across the area.  Position lookups at a fixed simulated time
  are deterministic, so this stays reproducible across backends.
* ``shard``      — the group is region shard ``shard`` of the medium's
  :class:`~repro.wireless.sharded.RegionPartition`, resolved when the split
  begins: the "one shard goes dark" rehearsal for the region-sharded
  medium.  Works against unsharded media too (the partition geometry is
  derived from the channel config), so the rehearsal can A/B both.

Healing is the interesting part: the lifecycle manager records the heal
time and measures time-to-recover — the delay until the first delivery
crossing the old boundary — which the ``partition`` spec reports as
``recovery.*`` extras.
"""

from __future__ import annotations

import math
from typing import List, Sequence

from repro.faults.base import (
    PARTITION,
    SHARD,
    SPATIAL,
    FaultEpisode,
    FaultModel,
    FaultPlan,
    StreamFn,
    non_negative_number,
    positive_number,
    register_fault,
)


def _fraction(value):
    if not isinstance(value, (int, float)) or not 0.0 < value < 1.0:
        return "must be a fraction in (0, 1)"
    return None


def _mode(value):
    if value not in ("membership", SPATIAL, SHARD):
        return f"must be 'membership', {SPATIAL!r} or {SHARD!r}"
    return None


def _shard_index(value):
    if not isinstance(value, int) or value < 0:
        return "must be a non-negative integer shard index"
    return None


def _shard_count(value):
    if not isinstance(value, int) or value < 1:
        return "must be a positive integer shard count"
    return None


@register_fault("partition")
class Partition(FaultModel):
    """A membership or spatial split at ``at``, healed ``duration`` later."""

    PARAMS = {
        "at": non_negative_number,
        "duration": positive_number,
        "mode": _mode,
        "fraction": _fraction,
        "shard": _shard_index,
        "shards": _shard_count,
        "region_width": positive_number,
        "repeat_every": positive_number,
    }

    def plan(self, node_ids: Sequence[str], horizon: float, stream: StreamFn) -> FaultPlan:
        at = float(self.param("at", 60.0))
        duration = float(self.param("duration", 30.0))
        mode = self.param("mode", "membership")
        fraction = float(self.param("fraction", 0.5))
        repeat_every = self.param("repeat_every", None)

        if mode == SPATIAL:
            # The manager resolves membership from positions at begin time.
            subject = (SPATIAL, fraction)
        elif mode == SHARD:
            # Shard-dark rehearsal: the group is whatever region shard
            # ``shard`` owns when the split begins — resolved by the manager
            # through the medium's RegionPartition, so the fault cuts exactly
            # the nodes the sharded index assigns to that region.  Optional
            # ``shards``/``region_width`` pin the geometry explicitly, so an
            # unsharded A/B run of the same rehearsal cuts the same group.
            subject = (SHARD, int(self.param("shard", 0)))
            shards = self.param("shards", None)
            width = self.param("region_width", None)
            if shards is not None or width is not None:
                subject = subject + (shards, width)
        else:
            ordered = sorted(node_ids)
            size = max(1, min(len(ordered) - 1, math.ceil(fraction * len(ordered))))
            rng = stream("partition")
            subject = tuple(sorted(rng.sample(ordered, size)))

        episodes: List[FaultEpisode] = []
        start = at
        while start < horizon:
            episodes.append(
                FaultEpisode(
                    kind=PARTITION,
                    start=start,
                    end=start + duration,
                    subject=subject,
                )
            )
            if repeat_every is None:
                break
            start += float(repeat_every)
        return FaultPlan(episodes=tuple(episodes))
