"""Runtime invariant monitors: safety and liveness under any run.

The monitor is *pure observation*: it draws from no RNG stream, schedules
no events and mutates no simulation state, so enabling it
(``ExperimentConfig.invariants``) leaves every result byte-identical to a
monitor-free run — the property the equivalence tests assert.  What it
checks:

* **safety** — no frame is ever delivered to a detached or stalled node
  (hooked into the medium's delivery path, immediately before
  ``radio.deliver``);
* **liveness** — PIT entries expire: after a final sweep, no forwarder
  retains an entry past its expiry;
* **accounting** — every measured download either completed (store full,
  completion time recorded, download time reported — all three agree) or
  is accounted as starved (none of the three present).  A partition that
  never heals starves downloads; it must never *miscount* them.

Violations collect as human-readable strings; the trial runner raises
:class:`InvariantViolationError` when any survive :meth:`finalize`.
"""

from __future__ import annotations

from typing import List, Optional


class InvariantViolationError(RuntimeError):
    """One or more runtime invariants were violated during a trial."""

    def __init__(self, violations: List[str]):
        self.violations = list(violations)
        summary = "; ".join(self.violations[:5])
        if len(self.violations) > 5:
            summary += f" (+{len(self.violations) - 5} more)"
        super().__init__(f"{len(self.violations)} invariant violation(s): {summary}")


class InvariantMonitor:
    """Observes one trial and records safety/liveness violations."""

    def __init__(self, sim, medium, faults=None):
        self.sim = sim
        self.medium = medium
        self.faults = faults
        self.violations: List[str] = []
        self.deliveries_checked = 0
        self.pits_checked = 0
        self.downloads_checked = 0

    # ------------------------------------------------------------ installation
    def install(self) -> None:
        """Hook the delivery-path safety check into the medium."""
        self.medium.set_delivery_monitor(self._on_deliver)

    def _on_deliver(self, receiver_id: str, frame) -> None:
        self.deliveries_checked += 1
        if receiver_id not in getattr(self.medium, "_radios", {}):
            self.violations.append(
                f"safety: delivery to detached node {receiver_id!r} "
                f"at t={self.sim.now:.6f}"
            )
        faults = self.faults
        if faults is not None and faults.node_stalled(receiver_id):
            self.violations.append(
                f"safety: delivery to stalled node {receiver_id!r} "
                f"at t={self.sim.now:.6f}"
            )

    # --------------------------------------------------------------- finalize
    def finalize(self, scenario) -> List[str]:
        """End-of-run liveness/accounting sweep; returns all violations."""
        self._check_pits(scenario)
        self._check_downloads(scenario)
        return list(self.violations)

    def _check_pits(self, scenario) -> None:
        now = self.sim.now
        holders = list(getattr(scenario, "nodes", {}).values()) + list(
            getattr(scenario, "pure_forwarders", {}).values()
        )
        for holder in holders:
            pit = getattr(getattr(holder, "forwarder", None), "pit", None)
            if pit is None:
                continue
            self.pits_checked += 1
            pit.expire(now)
            for entry in pit.entries():
                if entry.expiry <= now:
                    self.violations.append(
                        f"liveness: PIT entry {entry.name} on "
                        f"{getattr(holder, 'node_id', '?')!r} survived its expiry "
                        f"({entry.expiry:.6f} <= {now:.6f})"
                    )

    def _check_downloads(self, scenario) -> None:
        nodes = getattr(scenario, "nodes", None)
        collection_id = getattr(scenario, "collection_id", "")
        for node_id in scenario.downloader_ids:
            self.downloads_checked += 1
            elapsed = scenario.download_time(node_id)
            if elapsed is not None and elapsed < 0:
                self.violations.append(
                    f"accounting: negative download time {elapsed!r} for {node_id!r}"
                )
            if nodes is None:
                continue
            session = nodes[node_id].peer.sessions.get(collection_id)
            if session is None or session.store is None:
                if elapsed is not None:
                    self.violations.append(
                        f"accounting: {node_id!r} reports a download time "
                        f"without a session store"
                    )
                continue
            store_complete = session.is_complete
            has_time = session.completion_time is not None
            if store_complete != has_time:
                self.violations.append(
                    f"accounting: {node_id!r} store complete={store_complete} but "
                    f"completion_time recorded={has_time} — a download must "
                    f"either complete or be accounted as starved"
                )
            if (elapsed is not None) != has_time:
                self.violations.append(
                    f"accounting: {node_id!r} download_time reported="
                    f"{elapsed is not None} disagrees with completion_time "
                    f"recorded={has_time}"
                )


def build_invariant_monitor(config, sim, medium, faults=None) -> Optional[InvariantMonitor]:
    """An installed monitor when ``config.invariants`` is set, else ``None``."""
    if not bool(getattr(config, "invariants", False)):
        return None
    monitor = InvariantMonitor(sim, medium, faults=faults)
    monitor.install()
    return monitor
