"""Fig. 9g — download time for single-hop vs multi-hop forwarding probabilities."""

from conftest import report, run_sweep

from repro.experiments.fig9_multihop import SPEC_FIG9GH, probability_variants


def test_fig9g_forwarding_probability_download_time(benchmark, bench_config):
    spec = SPEC_FIG9GH.with_variants(probability_variants((None, 0.2, 0.4)))
    result = run_sweep(benchmark, spec, bench_config, axes={"wifi_range": (60.0,)})
    report(result, benchmark)

    assert result.points
    labels = {point.label for point in result.points}
    assert "Single-hop" in labels
    assert any("20%" in label for label in labels)
    # Paper claim (Fig. 9g): multi-hop forwarding reduces the download time
    # compared to the single-hop design (12-23 % in the paper).
    single = [p.download_time for p in result.points if p.label == "Single-hop"]
    multi = [p.download_time for p in result.points if p.label != "Single-hop"]
    assert min(multi) <= max(single) * 1.10
