"""Fig. 9g — download time for single-hop vs multi-hop forwarding probabilities."""

from conftest import report

from repro.experiments import ForwardingProbabilityExperiment


def test_fig9g_forwarding_probability_download_time(benchmark, bench_config):
    experiment = ForwardingProbabilityExperiment(
        config=bench_config, wifi_ranges=(60.0,), probabilities=(None, 0.2, 0.4)
    )
    result = benchmark.pedantic(experiment.run, rounds=1, iterations=1)
    report(result, benchmark)

    assert result.points
    labels = {point.label for point in result.points}
    assert "Single-hop" in labels
    assert any("20%" in label for label in labels)
    # Paper claim (Fig. 9g): multi-hop forwarding reduces the download time
    # compared to the single-hop design (12-23 % in the paper).
    single = [p.download_time for p in result.points if p.label == "Single-hop"]
    multi = [p.download_time for p in result.points if p.label != "Single-hop"]
    assert min(multi) <= max(single) * 1.10
