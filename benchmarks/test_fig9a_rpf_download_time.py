"""Fig. 9a — file-collection download time for the RPF strategy variants."""

from conftest import BENCH_WIFI_RANGES, report, run_sweep

from repro.experiments import ResultSet


def test_fig9a_rpf_download_time(benchmark, bench_config):
    result = run_sweep(benchmark, "fig9a", bench_config, axes={"wifi_range": BENCH_WIFI_RANGES})
    report(result, benchmark)

    assert result.points, "the sweep must produce data points"
    # Every variant must actually distribute the collection.
    assert all(point.completion_ratio > 0.5 for point in result.points)
    # Paper claim (Fig. 9a): local-neighborhood RPF beats encounter-based RPF
    # on average across the sweep.
    series = ResultSet.from_sweep(result).series("download_time")
    local = [v for label, values in series.items() if "local" in label.lower() for v in values]
    encounter = [v for label, values in series.items() if "encounter" in label.lower() for v in values]
    assert sum(local) / len(local) <= sum(encounter) / len(encounter) * 1.15
