"""Fig. 9d — download time when bitmap exchanges are interleaved with data."""

from conftest import BENCH_WIFI_RANGES, report

from repro.experiments import BitmapsBeforeDataExperiment, BitmapsInterleavedExperiment


def test_fig9d_bitmaps_interleaved(benchmark, bench_config):
    experiment = BitmapsInterleavedExperiment(
        config=bench_config,
        wifi_ranges=BENCH_WIFI_RANGES,
        bitmap_budgets=(1, 2, 4, None),
    )
    result = benchmark.pedantic(experiment.run, rounds=1, iterations=1)
    report(result, benchmark)

    assert result.points
    assert all(point.completion_ratio > 0.5 for point in result.points)


def test_fig9d_interleaving_beats_bitmaps_first(benchmark, quick_config):
    """Paper claim: interleaved exchange yields 16-23 % shorter downloads.

    At reduced scale we require that interleaving is not slower on average
    than exchanging every bitmap up front.
    """
    wifi_ranges = (60.0,)
    interleaved = BitmapsInterleavedExperiment(
        config=quick_config, wifi_ranges=wifi_ranges, bitmap_budgets=(None,)
    )
    before = BitmapsBeforeDataExperiment(
        config=quick_config, wifi_ranges=wifi_ranges, bitmap_budgets=(None,)
    )

    def _run_both():
        return interleaved.run(), before.run()

    result_interleaved, result_before = benchmark.pedantic(_run_both, rounds=1, iterations=1)
    # Not archived via report(): these single-budget runs would overwrite the
    # full Fig. 9c / Fig. 9d sweeps recorded by the tests above.
    print(result_interleaved.summary())
    print(result_before.summary())
    mean_interleaved = sum(p.download_time for p in result_interleaved.points) / len(result_interleaved.points)
    mean_before = sum(p.download_time for p in result_before.points) / len(result_before.points)
    assert mean_interleaved <= mean_before * 1.15
