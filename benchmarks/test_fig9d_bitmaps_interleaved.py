"""Fig. 9d — download time when bitmap exchanges are interleaved with data."""

from conftest import BENCH_WIFI_RANGES, report, run_sweep

from repro.experiments.fig9_bitmaps import SPEC_FIG9C, SPEC_FIG9D, budget_variants


def test_fig9d_bitmaps_interleaved(benchmark, bench_config):
    spec = SPEC_FIG9D.with_variants(budget_variants((1, 2, 4, None)))
    result = run_sweep(benchmark, spec, bench_config, axes={"wifi_range": BENCH_WIFI_RANGES})
    report(result, benchmark)

    assert result.points
    assert all(point.completion_ratio > 0.5 for point in result.points)


def test_fig9d_interleaving_beats_bitmaps_first(benchmark, quick_config):
    """Paper claim: interleaved exchange yields 16-23 % shorter downloads.

    At reduced scale we require that interleaving is not slower on average
    than exchanging every bitmap up front.
    """
    from repro.experiments import run_experiment, to_text

    axes = {"wifi_range": (60.0,)}
    interleaved_spec = SPEC_FIG9D.with_variants(budget_variants((None,)))
    before_spec = SPEC_FIG9C.with_variants(budget_variants((None,)))

    def _run_both():
        return (
            run_experiment(interleaved_spec, quick_config, axes=axes),
            run_experiment(before_spec, quick_config, axes=axes),
        )

    result_interleaved, result_before = benchmark.pedantic(_run_both, rounds=1, iterations=1)
    # Not archived via report(): these single-budget runs would overwrite the
    # full Fig. 9c / Fig. 9d sweeps recorded by the tests above.
    print(to_text(result_interleaved))
    print(to_text(result_before))
    mean_interleaved = sum(p.download_time for p in result_interleaved.points) / len(result_interleaved.points)
    mean_before = sum(p.download_time for p in result_before.points) / len(result_before.points)
    assert mean_interleaved <= mean_before * 1.15
