"""Fig. 10a — download time: DAPES vs Bithoc vs Ekta."""

from conftest import report

from repro.experiments import ComparisonExperiment


def test_fig10a_comparison_download_time(benchmark, bench_config):
    experiment = ComparisonExperiment(config=bench_config, wifi_ranges=(60.0,))
    result = benchmark.pedantic(experiment.run, rounds=1, iterations=1)
    report(result, benchmark)

    labels = {point.label for point in result.points}
    assert {"DAPES", "Bithoc", "Ekta"} <= labels
    # Paper claim (Fig. 10a): DAPES achieves 15-27 % / 19-33 % lower download
    # times than Bithoc / Ekta.  At reduced scale we require DAPES not to be
    # slower than either baseline.
    series = result.series("download_time")
    dapes = sum(series["DAPES"]) / len(series["DAPES"])
    bithoc = sum(series["Bithoc"]) / len(series["Bithoc"])
    ekta = sum(series["Ekta"]) / len(series["Ekta"])
    assert dapes <= bithoc * 1.10
    assert dapes <= ekta * 1.10
