"""Fig. 10a — download time: DAPES vs Bithoc vs Ekta."""

from conftest import report, run_sweep

from repro.experiments import ResultSet


def test_fig10a_comparison_download_time(benchmark, bench_config):
    result = run_sweep(benchmark, "fig10", bench_config, axes={"wifi_range": (60.0,)})
    report(result, benchmark)

    labels = {point.label for point in result.points}
    assert {"DAPES", "Bithoc", "Ekta"} <= labels
    # Paper claim (Fig. 10a): DAPES achieves 15-27 % / 19-33 % lower download
    # times than Bithoc / Ekta.  At reduced scale we require DAPES not to be
    # slower than either baseline.
    series = ResultSet.from_sweep(result).series("download_time")
    dapes = sum(series["DAPES"]) / len(series["DAPES"])
    bithoc = sum(series["Bithoc"]) / len(series["Bithoc"])
    ekta = sum(series["Ekta"]) / len(series["Ekta"])
    assert dapes <= bithoc * 1.10
    assert dapes <= ekta * 1.10
