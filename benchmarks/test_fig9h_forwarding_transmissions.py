"""Fig. 9h — transmissions for single-hop vs multi-hop forwarding probabilities."""

from conftest import report, run_sweep

from repro.experiments.fig9_multihop import SPEC_FIG9GH, probability_variants


def test_fig9h_forwarding_probability_transmissions(benchmark, bench_config):
    spec = SPEC_FIG9GH.with_variants(probability_variants((None, 0.2, 0.6)))
    result = run_sweep(benchmark, spec, bench_config, axes={"wifi_range": (60.0,)})
    report(result, benchmark)

    assert result.points
    # Paper claim (Fig. 9h): forwarding more Interests increases the overhead.
    single = [p.transmissions for p in result.points if p.label == "Single-hop"]
    heavy = [p.transmissions for p in result.points if "60%" in p.label]
    assert max(heavy) >= min(single)
