"""Fig. 9h — transmissions for single-hop vs multi-hop forwarding probabilities."""

from conftest import report

from repro.experiments import ForwardingProbabilityExperiment


def test_fig9h_forwarding_probability_transmissions(benchmark, bench_config):
    experiment = ForwardingProbabilityExperiment(
        config=bench_config, wifi_ranges=(60.0,), probabilities=(None, 0.2, 0.6)
    )
    result = benchmark.pedantic(experiment.run, rounds=1, iterations=1)
    report(result, benchmark)

    assert result.points
    # Paper claim (Fig. 9h): forwarding more Interests increases the overhead.
    single = [p.transmissions for p in result.points if p.label == "Single-hop"]
    heavy = [p.transmissions for p in result.points if "60%" in p.label]
    assert max(heavy) >= min(single)
