"""Fig. 9e — download time for a varying number of files per collection."""

from conftest import report

from repro.experiments import FileCountExperiment


def test_fig9e_varying_number_of_files(benchmark, quick_config):
    experiment = FileCountExperiment(
        config=quick_config, wifi_ranges=(60.0,), count_factors=(1, 3)
    )
    result = benchmark.pedantic(experiment.run, rounds=1, iterations=1)
    report(result, benchmark)

    assert result.points
    # Paper claim (Fig. 9e): the download time grows with the amount of data.
    by_files = sorted(result.points, key=lambda point: point.parameters["num_files"])
    assert by_files[0].download_time <= by_files[-1].download_time
