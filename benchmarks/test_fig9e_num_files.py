"""Fig. 9e — download time for a varying number of files per collection."""

from conftest import report, run_sweep


def test_fig9e_varying_number_of_files(benchmark, quick_config):
    result = run_sweep(
        benchmark, "fig9e", quick_config,
        axes={"wifi_range": (60.0,), "num_files_factor": (1, 3)},
    )
    report(result, benchmark)

    assert result.points
    # Paper claim (Fig. 9e): the download time grows with the amount of data.
    by_files = sorted(result.points, key=lambda point: point.parameters["num_files"])
    assert by_files[0].download_time <= by_files[-1].download_time
