"""Fig. 9f — download time for a varying file size."""

from conftest import report, run_sweep


def test_fig9f_varying_file_size(benchmark, quick_config):
    result = run_sweep(
        benchmark, "fig9f", quick_config,
        axes={"wifi_range": (60.0,), "file_size_factor": (1, 5)},
    )
    report(result, benchmark)

    assert result.points
    # Paper claim (Fig. 9f): the download time grows with the file size.
    by_size = sorted(result.points, key=lambda point: point.parameters["file_size"])
    assert by_size[0].download_time <= by_size[-1].download_time
