"""Fig. 9f — download time for a varying file size."""

from conftest import report

from repro.experiments import FileSizeExperiment


def test_fig9f_varying_file_size(benchmark, quick_config):
    experiment = FileSizeExperiment(
        config=quick_config, wifi_ranges=(60.0,), size_factors=(1, 5)
    )
    result = benchmark.pedantic(experiment.run, rounds=1, iterations=1)
    report(result, benchmark)

    assert result.points
    # Paper claim (Fig. 9f): the download time grows with the file size.
    by_size = sorted(result.points, key=lambda point: point.parameters["file_size"])
    assert by_size[0].download_time <= by_size[-1].download_time
