"""Large-population throughput: the region-sharded medium A/B artifacts.

Not a paper figure — the perf counterpart to the figure benchmarks.  Each
parametrized run sweeps the ``scaling`` spec at one large ``node_factor``
(4x and 8x the small preset's mobile-downloader population) on the
array-native ``grid_array`` backend, which runs *both* registered variants —
unsharded and sharded K=4 — interleaved in one process.  The archived
``BENCH_scaling-node-factor-<k>.json`` records per-variant events/sec
(computed from per-trial profiles, so the A/B shares identical machine
state) plus the sharded/unsharded speedup, giving the ROADMAP perf
trajectory its measured sharded numbers.

The two variants must also agree on every simulation outcome — the sharded
medium's byte-identity contract, asserted here at benchmark scale on top of
the dedicated tests in tests/test_sharded_medium.py.
"""

from __future__ import annotations

import pytest
from conftest import report, run_sweep

#: Large-population factors over the small preset (6 mobile downloaders, so
#: 24 and 48); factors 1-2 are covered by the default sweep's CI smoke.
LARGE_NODE_FACTORS = (4, 8)


def _series_throughput(result, sharded: bool) -> float:
    """Aggregate events/sec of one variant series from per-trial profiles."""
    events = wall = 0.0
    for point in result.points:
        if bool(point.parameters.get("sharded")) != sharded:
            continue
        for trial in point.trial_results:
            events += trial.profile.get("engine.events", 0.0)
            wall += trial.profile.get("wall_clock_s", 0.0)
    return events / wall if wall else 0.0


def _outcome(point) -> tuple:
    """The simulation outcome of a point, independent of medium sharding."""
    return (
        point.download_time,
        point.transmissions,
        point.completion_ratio,
        point.extras.get("events"),
    )


@pytest.mark.parametrize("node_factor", LARGE_NODE_FACTORS)
def test_scaling_large_population_sharded_ab(benchmark, bench_config, node_factor):
    config = bench_config.with_overrides(neighbor_index="grid_array")
    result = run_sweep(
        benchmark, "scaling", config, axes={"node_factor": (node_factor,)}
    )

    unsharded = _series_throughput(result, sharded=False)
    sharded = _series_throughput(result, sharded=True)
    report(
        result,
        benchmark,
        slug=f"scaling-node-factor-{node_factor}",
        metadata={
            "sharded_ab": {
                "node_factor": node_factor,
                "shards": 4,
                "shard_workers": 4,
                "unsharded_events_per_sec": round(unsharded, 1),
                "sharded_events_per_sec": round(sharded, 1),
                # Honest A/B: the ROADMAP perf trajectory quotes this ratio
                # directly, above or below the 2x intra-trial target.
                "sharded_speedup": round(sharded / unsharded, 3) if unsharded else None,
                "target_speedup": 2.0,
            }
        },
    )

    assert unsharded > 0 and sharded > 0
    # Byte-identity at benchmark scale: the sharded series reproduces the
    # unsharded outcomes exactly, so the throughput A/B compares pure
    # medium overhead/speedup and nothing else.
    plain = [p for p in result.points if not p.parameters.get("sharded")]
    mirror = [p for p in result.points if p.parameters.get("sharded")]
    assert len(plain) == len(mirror) == 1
    assert _outcome(plain[0]) == _outcome(mirror[0])
