"""Shared configuration for the benchmark harness.

Each benchmark regenerates one of the paper's figures or tables at a reduced
scale (see EXPERIMENTS.md for the scaling rationale and for paper-scale
instructions).  The reduced scale keeps the whole harness runnable in a few
minutes on a laptop while preserving the qualitative shape of every result:
who wins, how curves move with WiFi range, and where the trade-offs sit.
"""

from __future__ import annotations

import json
import pathlib
import re

import pytest

from repro.arrays import numpy_version, resolve_array_backend
from repro.experiments import ExperimentConfig, run_experiment, to_text

# WiFi ranges swept by the reduced-scale harness (paper: 20-100 m).
BENCH_WIFI_RANGES = (40.0, 80.0)


def run_sweep(benchmark, experiment, config, axes=None):
    """Run a registered experiment (or ad-hoc spec) under the benchmark fixture.

    Every figure benchmark goes through the declarative sweep scheduler —
    the same path as ``python -m repro.experiments run`` — so the archived
    numbers and the CLI agree by construction.
    """
    return benchmark.pedantic(
        lambda: run_experiment(experiment, config, axes=axes), rounds=1, iterations=1
    )


@pytest.fixture(scope="session")
def bench_config() -> ExperimentConfig:
    """Reduced-scale configuration shared by every figure benchmark."""
    return ExperimentConfig.small().with_overrides(trials=2, max_duration=400.0)


@pytest.fixture(scope="session")
def quick_config() -> ExperimentConfig:
    """Single-trial configuration for the heavier sweeps (9e/9f, comparisons)."""
    return ExperimentConfig.small().with_overrides(trials=1, max_duration=400.0)


def _wall_clock_seconds(benchmark) -> float | None:
    """Total measured wall-clock of a pytest-benchmark fixture, if available."""
    try:
        return float(sum(benchmark.stats.stats.data))
    except (AttributeError, TypeError):
        return None


def report(result, benchmark=None, slug=None, metadata=None) -> None:
    """Print an experiment's rows and archive them under benchmark_results/.

    The archived ``<slug>.txt`` tables are what EXPERIMENTS.md's measured
    numbers come from; printing as well means ``pytest -s`` shows them
    inline.  When the pytest-benchmark fixture is passed along, a
    machine-readable ``BENCH_<slug>.json`` is written next to the table with
    the wall-clock and simulation-event throughput, giving future PRs a perf
    trajectory to compare against.  ``slug`` overrides the filename stem
    (default: slugified ``result.name``); ``metadata`` merges extra keys
    into the JSON payload (e.g. an A/B throughput breakdown).
    """
    table = to_text(result)
    print()
    print(table)
    results_dir = pathlib.Path(__file__).resolve().parent.parent / "benchmark_results"
    results_dir.mkdir(exist_ok=True)
    if slug is None:
        slug = re.sub(r"[^a-z0-9]+", "-", result.name.lower()).strip("-")[:60]
    (results_dir / f"{slug}.txt").write_text(table + "\n", encoding="utf-8")

    wall_s = _wall_clock_seconds(benchmark) if benchmark is not None else None
    events = sum(int(point.extras.get("events", 0)) for point in result.points)
    backend = resolve_array_backend()
    payload = {
        "name": result.name,
        "wall_clock_s": round(wall_s, 4) if wall_s is not None else None,
        "events": events,
        "events_per_sec": round(events / wall_s, 1) if wall_s else None,
        # Which hot path produced the wall-clock numbers: throughput across
        # different array backends is not comparable (diff flags it).
        "array_backend": backend,
        "numpy_version": numpy_version() if backend == "numpy" else None,
        "points": result.rows(),
    }
    if metadata:
        payload.update(metadata)
    (results_dir / f"BENCH_{slug}.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True, allow_nan=False) + "\n",
        encoding="utf-8",
    )
