"""Shared configuration for the benchmark harness.

Each benchmark regenerates one of the paper's figures or tables at a reduced
scale (see EXPERIMENTS.md for the scaling rationale and for paper-scale
instructions).  The reduced scale keeps the whole harness runnable in a few
minutes on a laptop while preserving the qualitative shape of every result:
who wins, how curves move with WiFi range, and where the trade-offs sit.
"""

from __future__ import annotations

import pathlib
import re

import pytest

from repro.experiments import ExperimentConfig

# WiFi ranges swept by the reduced-scale harness (paper: 20-100 m).
BENCH_WIFI_RANGES = (40.0, 80.0)


@pytest.fixture(scope="session")
def bench_config() -> ExperimentConfig:
    """Reduced-scale configuration shared by every figure benchmark."""
    return ExperimentConfig.small().with_overrides(trials=2, max_duration=400.0)


@pytest.fixture(scope="session")
def quick_config() -> ExperimentConfig:
    """Single-trial configuration for the heavier sweeps (9e/9f, comparisons)."""
    return ExperimentConfig.small().with_overrides(trials=1, max_duration=400.0)


def report(result) -> None:
    """Print an experiment's rows and archive them under benchmark_results/.

    The archived files are what EXPERIMENTS.md's measured numbers come from;
    printing as well means ``pytest -s`` shows the tables inline.
    """
    print()
    print(result.summary())
    results_dir = pathlib.Path(__file__).resolve().parent.parent / "benchmark_results"
    results_dir.mkdir(exist_ok=True)
    slug = re.sub(r"[^a-z0-9]+", "-", result.name.lower()).strip("-")[:60]
    (results_dir / f"{slug}.txt").write_text(result.summary() + "\n", encoding="utf-8")
