"""Fig. 10b — transmissions (overhead): DAPES vs Bithoc vs Ekta."""

from conftest import report, run_sweep

from repro.experiments import ResultSet


def test_fig10b_comparison_transmissions(benchmark, bench_config):
    result = run_sweep(benchmark, "fig10", bench_config, axes={"wifi_range": (60.0,)})
    report(result, benchmark)

    series = ResultSet.from_sweep(result).series("transmissions")
    dapes = sum(series["DAPES"]) / len(series["DAPES"])
    bithoc = sum(series["Bithoc"]) / len(series["Bithoc"])
    ekta = sum(series["Ekta"]) / len(series["Ekta"])
    # Paper claim (Fig. 10b): DAPES has 62-71 % lower overhead than Bithoc
    # and 50-59 % lower overhead than Ekta.  At reduced scale we require a
    # clear ordering: DAPES < Ekta and DAPES < Bithoc, with Bithoc the most
    # expensive of the three (proactive routing + flooding + TCP).
    assert dapes < ekta
    assert dapes < bithoc
    assert dapes <= bithoc * 0.6, "DAPES should cut Bithoc's overhead by a large margin"
