"""Fig. 9c — download time when bitmaps are exchanged before data download."""

from conftest import BENCH_WIFI_RANGES, report

from repro.experiments import BitmapsBeforeDataExperiment


def test_fig9c_bitmaps_before_data(benchmark, bench_config):
    experiment = BitmapsBeforeDataExperiment(
        config=bench_config,
        wifi_ranges=BENCH_WIFI_RANGES,
        bitmap_budgets=(1, 2, 4, None),
    )
    result = benchmark.pedantic(experiment.run, rounds=1, iterations=1)
    report(result, benchmark)

    assert result.points
    labels = {point.label for point in result.points}
    assert "1 bitmap" in labels and "All bitmaps" in labels
    assert all(point.completion_ratio > 0.5 for point in result.points)
