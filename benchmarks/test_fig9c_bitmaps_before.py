"""Fig. 9c — download time when bitmaps are exchanged before data download."""

from conftest import BENCH_WIFI_RANGES, report, run_sweep

from repro.experiments.fig9_bitmaps import SPEC_FIG9C, budget_variants


def test_fig9c_bitmaps_before_data(benchmark, bench_config):
    spec = SPEC_FIG9C.with_variants(budget_variants((1, 2, 4, None)))
    result = run_sweep(benchmark, spec, bench_config, axes={"wifi_range": BENCH_WIFI_RANGES})
    report(result, benchmark)

    assert result.points
    labels = {point.label for point in result.points}
    assert "1 bitmap" in labels and "All bitmaps" in labels
    assert all(point.completion_ratio > 0.5 for point in result.points)
