"""Fig. 9b — transmissions for both RPF flavours, with and without PEBA."""

from conftest import BENCH_WIFI_RANGES, report, run_sweep

from repro.experiments import ResultSet


def test_fig9b_peba_transmissions(benchmark, bench_config):
    result = run_sweep(benchmark, "fig9b", bench_config, axes={"wifi_range": BENCH_WIFI_RANGES})
    report(result, benchmark)

    assert result.points
    assert all(point.transmissions > 0 for point in result.points)
    # Paper claim (Fig. 9b): PEBA reduces the number of transmissions
    # (22-28 % in the paper); at reduced scale we only require that enabling
    # PEBA does not increase the overhead on average.
    series = ResultSet.from_sweep(result).series("transmissions")
    with_peba = [v for label, values in series.items() if "(PEBA)" in label for v in values]
    without_peba = [v for label, values in series.items() if "w/o PEBA" in label for v in values]
    assert sum(with_peba) / len(with_peba) <= sum(without_peba) / len(without_peba) * 1.10
