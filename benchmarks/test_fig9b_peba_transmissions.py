"""Fig. 9b — transmissions for both RPF flavours, with and without PEBA."""

from conftest import BENCH_WIFI_RANGES, report

from repro.experiments import PebaExperiment


def test_fig9b_peba_transmissions(benchmark, bench_config):
    experiment = PebaExperiment(config=bench_config, wifi_ranges=BENCH_WIFI_RANGES)
    result = benchmark.pedantic(experiment.run, rounds=1, iterations=1)
    report(result, benchmark)

    assert result.points
    assert all(point.transmissions > 0 for point in result.points)
    # Paper claim (Fig. 9b): PEBA reduces the number of transmissions
    # (22-28 % in the paper); at reduced scale we only require that enabling
    # PEBA does not increase the overhead on average.
    series = result.series("transmissions")
    with_peba = [v for label, values in series.items() if "(PEBA)" in label for v in values]
    without_peba = [v for label, values in series.items() if "w/o PEBA" in label for v in values]
    assert sum(with_peba) / len(with_peba) <= sum(without_peba) / len(without_peba) * 1.10
