"""Table I — the real-world feasibility study scenarios."""

from conftest import report, run_sweep

from repro.experiments import ExperimentConfig


def test_table1_feasibility_study(benchmark):
    config = ExperimentConfig.small().with_overrides(
        trials=1, max_duration=400.0, base_seed=7
    )
    result = run_sweep(benchmark, "table1", config)
    report(result, benchmark)

    rows = {point.parameters["scenario"]: point for point in result.points}
    assert set(rows) == {1, 2, 3}
    assert all(point.completion_ratio == 1.0 for point in rows.values()), "every scenario must finish"
    # Paper claims (Table I): scenario 1 (carrier) needs the most time and
    # transmissions; scenario 3 (moving nodes, multi-hop) needs the least of
    # both.
    assert rows[1].download_time >= rows[2].download_time >= rows[3].download_time
    assert rows[1].transmissions >= rows[3].transmissions
