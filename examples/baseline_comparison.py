#!/usr/bin/env python3
"""DAPES versus the IP-based baselines (a miniature Fig. 10).

Runs the paper's comparison — DAPES, Bithoc (DSDV + scoped flooding + TCP)
and Ekta (DSR-integrated DHT + UDP) — on a reduced version of the Fig. 7
topology through the declarative sweep registry, and prints the download
time and overhead of each protocol.

The same sweep is available from the command line::

    python -m repro.experiments run fig10 --preset small --trials 1 --axis wifi_range=60

Run this example with::

    python examples/baseline_comparison.py
"""

from repro.experiments import ExperimentConfig, improvements, run_experiment, to_text


def main() -> None:
    config = ExperimentConfig.small().with_overrides(trials=1, max_duration=400.0)
    result = run_experiment("fig10", config, axes={"wifi_range": (60.0,)})

    print(to_text(result))
    print()
    for metric, description in (
        ("download_time", "download time"),
        ("transmissions", "overhead (transmissions)"),
    ):
        for baseline, values in improvements(result, metric=metric).items():
            average = sum(values) / len(values)
            print(f"DAPES {metric == 'download_time' and 'is' or 'uses'} "
                  f"{average:.0%} lower {description} than {baseline}")


if __name__ == "__main__":
    main()
