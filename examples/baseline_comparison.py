#!/usr/bin/env python3
"""DAPES versus the IP-based baselines (a miniature Fig. 10).

Runs the paper's comparison — DAPES, Bithoc (DSDV + scoped flooding + TCP)
and Ekta (DSR-integrated DHT + UDP) — on a reduced version of the Fig. 7
topology and prints the download time and overhead of each protocol.

Run it with::

    python examples/baseline_comparison.py
"""

from repro.experiments import ComparisonExperiment, ExperimentConfig


def main() -> None:
    config = ExperimentConfig.small().with_overrides(trials=1, max_duration=400.0)
    experiment = ComparisonExperiment(config=config, wifi_ranges=(60.0,))
    result = experiment.run()

    print(result.summary())
    print()
    for metric, description in (
        ("download_time", "download time"),
        ("transmissions", "overhead (transmissions)"),
    ):
        improvements = ComparisonExperiment.improvements(result, metric=metric)
        for baseline, values in improvements.items():
            average = sum(values) / len(values)
            print(f"DAPES {metric == 'download_time' and 'is' or 'uses'} "
                  f"{average:.0%} lower {description} than {baseline}")


if __name__ == "__main__":
    main()
