#!/usr/bin/env python3
"""Data sharing through a carrier (Fig. 8a of the paper).

Peer A produces a collection in one network segment.  Peer D acts as a data
carrier: it downloads the collection from A, physically walks to another
segment where B is, serves it to B, then continues to C's segment.  The
three segments are far beyond WiFi range of each other, so the data can only
travel by being carried.

Run it with::

    python examples/carrier_relay_scenario.py
"""

from repro.crypto import KeyPair, TrustAnchorStore
from repro.core import CollectionBuilder, DapesConfig, build_dapes_peer
from repro.mobility import ScriptedMobility
from repro.simulation import Simulator
from repro.wireless import ChannelConfig, WirelessMedium


def main() -> None:
    sim = Simulator(seed=11)

    mobility = ScriptedMobility()
    mobility.add_static_node("A", 0.0, 0.0)        # producer's segment
    mobility.add_static_node("B", 150.0, 0.0)      # second segment
    mobility.add_static_node("C", 150.0, 150.0)    # third segment
    mobility.add_node(
        "D",
        [
            (0.0, 15.0, 0.0),      # with A, downloading
            (60.0, 15.0, 0.0),
            (100.0, 140.0, 0.0),   # walks to B
            (160.0, 140.0, 0.0),
            (200.0, 140.0, 140.0), # walks to C
            (420.0, 140.0, 140.0),
        ],
    )

    medium = WirelessMedium(sim, mobility, ChannelConfig(wifi_range=50.0, loss_rate=0.10))

    producer_key = KeyPair.generate("/residents/A", seed=b"carrier-producer")
    trust = TrustAnchorStore()
    trust.add_anchor_key(producer_key)
    config = DapesConfig()

    nodes = {
        node_id: build_dapes_peer(
            sim, medium, node_id, config=config, trust=trust,
            key=producer_key if node_id == "A" else None,
        )
        for node_id in ("A", "B", "C", "D")
    }

    collection = (
        CollectionBuilder("road-damage-report", 1533790000, packet_size=1024, producer="/residents/A")
        .add_file("report", size_bytes=30 * 1024)
        .build()
    )
    metadata = nodes["A"].peer.publish_collection(collection)
    for node_id in ("B", "C", "D"):
        nodes[node_id].peer.join(metadata.collection)

    milestones = []
    for node_id in ("B", "C", "D"):
        nodes[node_id].peer.on_collection_complete(
            lambda peer, cid, when: milestones.append((when, peer.node_id))
        )

    for node in nodes.values():
        node.start()
    sim.run(until=420.0)

    print("Timeline of completed downloads:")
    for when, node_id in sorted(milestones):
        print(f"  t={when:6.1f} s  {node_id} finished downloading")
    for node_id in ("D", "B", "C"):
        progress = nodes[node_id].peer.progress(metadata.collection)
        print(f"{node_id}: progress {progress:.0%}")
    print(f"Total frames transmitted: {medium.stats.frames_transmitted}")


if __name__ == "__main__":
    main()
