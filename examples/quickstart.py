#!/usr/bin/env python3
"""Quickstart: share a file collection between two DAPES peers.

This example builds the smallest possible DAPES deployment — a producer and
a downloader within WiFi range of each other — and walks through the whole
protocol: discovery, signed-metadata retrieval, bitmap advertisement and
rarest-piece-first data fetching.

Run it with::

    python examples/quickstart.py
"""

from repro.crypto import KeyPair, TrustAnchorStore
from repro.core import CollectionBuilder, DapesConfig, build_dapes_peer
from repro.mobility import StaticPlacement
from repro.simulation import Simulator
from repro.wireless import ChannelConfig, WirelessMedium


def main() -> None:
    # 1. A deterministic simulation world: two static nodes 20 m apart.
    sim = Simulator(seed=42)
    mobility = StaticPlacement({"alice": (0.0, 0.0), "bob": (20.0, 0.0)})
    medium = WirelessMedium(sim, mobility, ChannelConfig(wifi_range=60.0, loss_rate=0.10))

    # 2. Trust: both residents trust Alice's key (the collection producer).
    alice_key = KeyPair.generate("/residents/alice", seed=b"alice")
    trust = TrustAnchorStore()
    trust.add_anchor_key(alice_key)

    # 3. Build the nodes (radio + NDN forwarder + DAPES application).
    config = DapesConfig()
    alice = build_dapes_peer(sim, medium, "alice", config=config, trust=trust, key=alice_key)
    bob = build_dapes_peer(sim, medium, "bob", config=config, trust=trust)

    # 4. Alice photographs a damaged bridge and publishes a collection.
    collection = (
        CollectionBuilder("damaged-bridge", 1533783192, packet_size=1024, producer="/residents/alice")
        .add_file("bridge-picture", size_bytes=100 * 1024)
        .add_file("bridge-location", size_bytes=2 * 1024)
        .build()
    )
    metadata = alice.peer.publish_collection(collection)
    print(f"Published collection {metadata.collection_name} "
          f"({metadata.total_packets} packets across {len(metadata.files)} files)")

    # 5. Bob wants it.
    bob.peer.join(metadata.collection)

    # 6. Run the world.
    alice.start()
    bob.start()
    sim.run(until=120.0)

    # 7. Results.
    elapsed = bob.peer.download_time(metadata.collection)
    print(f"Bob's download progress : {bob.peer.progress(metadata.collection):.0%}")
    print(f"Bob's download time     : {elapsed:.1f} s" if elapsed else "Bob did not finish")
    print(f"Frames on the air       : {medium.stats.frames_transmitted}")
    print("Breakdown by frame kind :")
    for kind, count in sorted(medium.stats.transmitted_by_kind.items()):
        print(f"  {kind:<18} {count}")


if __name__ == "__main__":
    main()
