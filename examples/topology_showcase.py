#!/usr/bin/env python3
"""Run DAPES over every registered topology with the builder registry.

The scenario layer separates *where nodes are* (the topology registry:
``quadrant`` is the paper's Fig. 7 layout, ``clusters`` models partitioned
disaster zones, ``corridor`` a sparse relay chain) from *what runs on them*
(the protocol registry: ``dapes``, ``bithoc``, ``ekta``).  This example
sweeps one protocol across all topologies — the same pattern works for any
protocol/topology pair, and `ExperimentConfig(workers=N)` fans repeated
trials out over N processes.

Run it with::

    python examples/topology_showcase.py
"""

from repro.experiments import (
    ExperimentConfig,
    available_protocols,
    available_topologies,
    run_trials,
)


def main() -> None:
    print(f"registered protocols : {', '.join(available_protocols())}")
    print(f"registered topologies: {', '.join(available_topologies())}")
    print()

    config = ExperimentConfig.tiny().with_overrides(
        trials=2,
        max_duration=180.0,
        workers=2,  # trials run on a process pool; results match workers=1 exactly
    )

    print(f"{'topology':>10} | {'download time':>13} | {'transmissions':>13} | {'completion':>10}")
    print("-" * 58)
    for topology in available_topologies():
        point = run_trials(
            "dapes",
            config.with_overrides(topology=topology),
            label=f"DAPES/{topology}",
            parameters={"topology": topology},
        )
        print(
            f"{topology:>10} | {point.download_time:>12.1f}s | {point.transmissions:>13.0f} "
            f"| {point.completion_ratio:>9.0%}"
        )

    print()
    print("The clustered and corridor layouts stress multi-hop forwarding and")
    print("data carriers far harder than the paper's quadrant topology: expect")
    print("longer download times at equal workload.")


if __name__ == "__main__":
    main()
