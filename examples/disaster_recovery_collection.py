#!/usr/bin/env python3
"""Disaster-recovery file sharing in a rural area (the paper's use case).

A resident documents a damaged bridge (a picture plus a location note) and
shares the collection with other residents while everyone moves around an
area with no network infrastructure.  A stationary repository at a rest area
collects and re-serves the data, and two additional residents run DAPES but
are not interested in this collection — they act as intermediate nodes that
forward for others.

Run it with::

    python examples/disaster_recovery_collection.py
"""

from repro.crypto import KeyPair, TrustAnchorStore
from repro.core import CollectionBuilder, DapesConfig, build_dapes_peer, build_repository
from repro.mobility import CompositeMobility, RandomDirectionMobility, StaticPlacement
from repro.simulation import Simulator
from repro.wireless import ChannelConfig, WirelessMedium

RESIDENTS = ["resident-A", "resident-B", "resident-C", "resident-D", "resident-E"]
RELAYS = ["relay-F", "relay-G"]


def main() -> None:
    sim = Simulator(seed=7)

    # The rural area: 250 m x 250 m, residents walking 1-3 m/s, a repository
    # deployed at a rest area in the middle.
    mobility = CompositeMobility()
    walkers = RandomDirectionMobility(width=250, height=250, min_speed=1.0, max_speed=3.0,
                                      rng=sim.rng("mobility"))
    for node_id in RESIDENTS + RELAYS:
        walkers.add_node(node_id)
        mobility.assign(node_id, walkers)
    rest_area = StaticPlacement({"rest-area-repo": (125.0, 125.0)})
    mobility.assign("rest-area-repo", rest_area)

    medium = WirelessMedium(sim, mobility, ChannelConfig(wifi_range=70.0, loss_rate=0.10))

    # Residents share local trust anchors; resident A produces the collection.
    producer_key = KeyPair.generate("/rural/resident-A", seed=b"resident-a")
    trust = TrustAnchorStore()
    trust.add_anchor_key(producer_key)

    config = DapesConfig(rpf_strategy="local", bitmap_exchange="interleaved")
    nodes = {}
    for node_id in RESIDENTS:
        key = producer_key if node_id == "resident-A" else None
        nodes[node_id] = build_dapes_peer(sim, medium, node_id, config=config, trust=trust, key=key)
    for node_id in RELAYS:
        nodes[node_id] = build_dapes_peer(sim, medium, node_id, config=config, trust=trust)
    nodes["rest-area-repo"] = build_repository(sim, medium, "rest-area-repo", config=config, trust=trust)

    collection = (
        CollectionBuilder("damaged-bridge", 1533783192, packet_size=1024, producer="/rural/resident-A")
        .add_file("bridge-picture", size_bytes=60 * 1024)
        .add_file("bridge-location", size_bytes=2 * 1024)
        .build()
    )
    metadata = nodes["resident-A"].peer.publish_collection(collection)
    for node_id in RESIDENTS[1:]:
        nodes[node_id].peer.join(metadata.collection)

    for node in nodes.values():
        node.start()
    sim.run(until=600.0)

    print(f"Collection: {metadata.collection_name} — {metadata.total_packets} packets")
    print(f"{'node':<16} {'progress':>9} {'download time':>14} {'overheard':>10}")
    for node_id in RESIDENTS[1:] + ["rest-area-repo"]:
        peer = nodes[node_id].peer
        progress = peer.progress(metadata.collection)
        elapsed = peer.download_time(metadata.collection)
        overheard = peer.load.packets_overheard
        elapsed_text = f"{elapsed:.1f} s" if elapsed is not None else "—"
        print(f"{node_id:<16} {progress:>8.0%} {elapsed_text:>14} {overheard:>10}")

    print(f"\nTotal frames transmitted: {medium.stats.frames_transmitted}")
    print(f"Collisions on the air   : {medium.stats.collisions}")
    relay_forwards = sum(nodes[r].strategy.interests_rebroadcast for r in RELAYS)
    print(f"Interests re-broadcast by the two relays: {relay_forwards}")


if __name__ == "__main__":
    main()
