#!/usr/bin/env python3
"""Declarative sweeps: register a custom experiment, run a suite on one pool.

This example shows the three layers of the sweep API:

1. **Registry** — every paper artefact is a registered ``ExperimentSpec``
   (``available_experiments()`` lists them; ``run_experiment("fig9a")``
   runs one).
2. **Custom specs** — a new experiment is just data: axes x variants plus
   config overrides.  Here we sweep DAPES across every registered topology
   (quadrant / clusters / corridor) at two WiFi ranges.
3. **Suite scheduling + persistence** — ``run_suite`` flattens several
   experiments into one task grid over a single process pool, and with
   ``out_dir`` set every finished task is persisted so an interrupted run
   resumes where it stopped.

Run it with::

    python examples/declarative_sweeps.py
"""

import tempfile
from pathlib import Path

from repro.experiments import (
    Axis,
    ExperimentConfig,
    ExperimentSpec,
    SweepRequest,
    Variant,
    available_experiments,
    available_topologies,
    get_experiment,
    register_experiment,
    run_suite,
    to_text,
)

# A brand-new experiment, declared rather than coded: one labelled variant
# per topology, swept over two WiFi ranges.
TOPOLOGY_SWEEP = register_experiment(
    ExperimentSpec(
        name="topology-sweep",
        title="DAPES across every registered topology",
        description="The paper's protocol on quadrant, clusters and corridor layouts.",
        axes=(Axis(name="wifi_range", values=(60.0, 80.0), config_key="wifi_range"),),
        variants=tuple(
            Variant(
                label=f"DAPES @ {topology}",
                overrides={"topology": topology},
                parameters={"topology": topology},
            )
            for topology in available_topologies()
        ),
    )
)


def main() -> None:
    print("registered experiments:", ", ".join(available_experiments()))

    config = ExperimentConfig.tiny().with_overrides(trials=2, workers=4)
    out_dir = Path(tempfile.mkdtemp(prefix="sweeps-"))

    # One task grid: the custom topology sweep plus the paper's Fig. 10
    # comparison, fanned out together over a single persistent pool.
    requests = [
        SweepRequest(spec=TOPOLOGY_SWEEP, config=config),
        SweepRequest(
            spec=get_experiment("fig10"), config=config, axes={"wifi_range": (80.0,)}
        ),
    ]
    topology_result, comparison_result = run_suite(requests, out_dir=out_dir)

    print()
    print(to_text(topology_result))
    print()
    print(to_text(comparison_result))

    cached = len(list(out_dir.glob("*/task-*.json")))
    print(f"\n{cached} per-task results persisted under {out_dir}")
    print("re-running the same suite now costs nothing:")
    run_suite(requests, out_dir=out_dir)  # every task resumes from cache
    print("done (all tasks came from the cache)")


if __name__ == "__main__":
    main()
