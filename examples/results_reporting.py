#!/usr/bin/env python3
"""The first-class results API: store, query, diff and export sweep runs.

Runs a miniature Fig. 9a sweep twice — once as a tagged baseline, once as a
"candidate" with a different seed — then walks the whole results layer:

* ``ResultStore`` — content-addressed persistence with metadata headers;
* ``ResultSet`` — typed metric queries (any scalar field, ``extras`` or
  ``profile`` key, down to per-trial rows);
* ``report.diff`` — field-by-field three-way verdicts between runs;
* exporters — Markdown, CSV and gnuplot-ready columns.

Everything here is also available from the command line::

    python -m repro.experiments run fig9a --store results-store --tag baseline
    python -m repro.experiments report fig9a@baseline --store results-store
    python -m repro.experiments diff fig9a@baseline fig9a@latest --tolerance 0.2
    python -m repro.experiments export fig9a --format gnuplot --axis wifi_range

Run this example with::

    python examples/results_reporting.py
"""

import tempfile
from pathlib import Path

from repro.experiments import ExperimentConfig, ResultSet, ResultStore, run_experiment
from repro.experiments.report import diff, to_gnuplot, to_markdown


def main() -> None:
    store = ResultStore(Path(tempfile.mkdtemp(prefix="results-store-")))
    config = ExperimentConfig.tiny().with_overrides(trials=2, max_duration=240.0)
    axes = {"wifi_range": (60.0, 80.0)}

    # Two stored runs: a tagged baseline and a candidate with another seed.
    baseline = run_experiment("fig9a", config, axes=axes, store=store, tag="baseline")
    candidate = run_experiment(
        "fig9a", config.with_overrides(base_seed=99), axes=axes, store=store
    )

    print("stored runs:")
    for record in store.list():
        tags = ",".join(record.tags) or "-"
        print(f"  {record.spec}@{record.key}  tags={tags}  created={record.created}")

    # Typed queries: any metric, any level.
    results = ResultSet.from_sweep(baseline)
    print("\ndownload time pivot (label x wifi_range):")
    for label, cells in results.pivot("wifi_range").items():
        print(f"  {label}: { {k: round(v, 2) for k, v in cells.items()} }")
    print("p90 transmissions:", results.p90("transmissions"))
    print("per-trial event counts:", results.trials().select("events"))

    # Cross-run diffing: the same plan with another seed differs, loudly.
    report = diff(store.load("fig9a@baseline"), candidate, tolerance=0.25)
    print(
        f"\nbaseline vs candidate: verdict={report.verdict} "
        f"({len(report.regressions)} regressed of {report.fields_compared} fields)"
    )

    # Exporters: Markdown for docs, gnuplot columns for plots.
    print("\n" + to_markdown(baseline).splitlines()[0])
    print(to_gnuplot(baseline, axis="wifi_range").splitlines()[1])


if __name__ == "__main__":
    main()
