#!/usr/bin/env python3
"""Obstacle-aware urban scenarios: the pluggable propagation layer at work.

The ``urban_grid`` topology builds a Manhattan city — square blocks
separated by streets — and emits the buildings as an ``Environment``.
Mobile nodes random-walk the street graph; the ``obstacle`` propagation
model ray-tests every radio link against the buildings, so two nodes one
block apart cannot talk through a wall even when they are geometrically in
range.  This example runs the same workload, on the same seed, under the
paper's open-field ``unit_disk`` physics and under ``obstacle`` occlusion
at rising city density, then prints the resulting download-time gap plus
the occlusion-cache profile.

Run it with::

    python examples/urban_showcase.py
"""

from repro.experiments import ExperimentConfig, get_topology
from repro.experiments.sweep import run_experiment
from repro.profiling import merge_profiles
from repro.wireless import available_propagation_models


def main() -> None:
    config = ExperimentConfig.tiny().with_overrides(
        trials=1, max_duration=180.0, profile=True
    )
    topology = get_topology("urban_grid")
    environment = topology.build_environment(config)
    lines, street_width = topology.geometry(config)

    print(f"registered propagation models: {', '.join(available_propagation_models())}")
    print(
        f"urban grid: {topology.BLOCKS}x{topology.BLOCKS} blocks, "
        f"{len(lines)} streets per direction ({street_width:.1f} m wide), "
        f"{environment.describe()}"
    )
    print()

    densities = (0.0, 0.5, 1.0)
    result = run_experiment("urban", config, axes={"obstacle_density": densities})

    print(f"{'density':>8} | {'variant':>18} | {'download time':>13} | {'transmissions':>13}")
    print("-" * 64)
    for point in result.points:
        print(
            f"{point.parameters['obstacle_density']:>8} | {point.label:>18} "
            f"| {point.download_time:>12.1f}s | {point.transmissions:>13.0f}"
        )

    profiles = [
        trial.profile
        for point in result.points
        for trial in point.trial_results
        if trial.profile and trial.profile.get("propagation.occlusion_checks")
    ]
    if profiles:
        merged = merge_profiles(profiles)
        checks = merged.get("propagation.occlusion_checks", 0)
        hits = merged.get("propagation.occlusion_cache_hits", 0)
        total = checks + hits
        print()
        print(
            f"occlusion work across obstacle runs: {checks:,.0f} ray tests, "
            f"{hits:,.0f} cache hits ({hits / total:.0%} of lookups cached)"
            if total
            else "no occlusion lookups recorded"
        )

    print()
    print("At density 0 both physics agree exactly; as blocks fill in, the")
    print("open-field unit disk increasingly over-estimates delivery — walls")
    print("turn one dense cell into street-level partitions bridged only at")
    print("intersections and by nodes carrying data around corners.")


if __name__ == "__main__":
    main()
