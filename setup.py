"""Setuptools shim.

The environment this reproduction targets may lack the ``wheel`` package, in
which case PEP 517 editable installs fail with ``invalid command
'bdist_wheel'``.  Keeping a ``setup.py`` allows the legacy editable install
path (``pip install -e . --no-use-pep517 --no-build-isolation``) as well as
the modern one.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
